//! Minimal offline stand-in for the `twox-hash` 2.x crate: the XXH64
//! hash, nothing else.
//!
//! The persistence layer (`classilink-linking`'s `persist` module)
//! checksums every snapshot section with XXH64 because it is fast,
//! seedable, and has a fixed 8-byte digest that detects the torn
//! writes and bit flips the chaos suite injects. This shim implements
//! the real XXH64 algorithm (Yann Collet's specification) so digests
//! written today remain verifiable byte-for-byte after swapping in the
//! upstream crate — the API mirrors `twox_hash::XxHash64` from
//! twox-hash 2.x: [`XxHash64::with_seed`], the [`std::hash::Hasher`]
//! impl for streaming use, and the [`XxHash64::oneshot`] convenience.
//!
//! Pinned against the reference test vectors (empty input, short
//! tails, multi-stripe input) in the tests below.

/// Streaming XXH64 hasher.
///
/// Construct with [`XxHash64::with_seed`], feed bytes through
/// [`std::hash::Hasher::write`], read the digest with
/// [`std::hash::Hasher::finish`] (which does not consume the hasher —
/// more bytes may follow). `Default` is seed 0.
#[derive(Debug, Clone)]
pub struct XxHash64 {
    seed: u64,
    acc: [u64; 4],
    buffer: [u8; 32],
    buffered: usize,
    total: u64,
}

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

impl XxHash64 {
    /// A hasher whose digest is `XXH64(bytes, seed)`.
    pub fn with_seed(seed: u64) -> Self {
        XxHash64 {
            seed,
            acc: [
                seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2),
                seed.wrapping_add(PRIME_2),
                seed,
                seed.wrapping_sub(PRIME_1),
            ],
            buffer: [0; 32],
            buffered: 0,
            total: 0,
        }
    }

    /// `XXH64(data, seed)` in one call — the common non-streaming case.
    pub fn oneshot(seed: u64, data: &[u8]) -> u64 {
        use std::hash::Hasher;
        let mut hasher = Self::with_seed(seed);
        hasher.write(data);
        hasher.finish()
    }

    #[inline]
    fn consume_stripe(acc: &mut [u64; 4], stripe: &[u8]) {
        debug_assert_eq!(stripe.len(), 32);
        for (lane, chunk) in acc.iter_mut().zip(stripe.chunks_exact(8)) {
            *lane = round(*lane, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
    }
}

impl Default for XxHash64 {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl std::hash::Hasher for XxHash64 {
    fn write(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        // Top up a partially filled buffer first.
        if self.buffered > 0 {
            let take = (32 - self.buffered).min(bytes.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered < 32 {
                return;
            }
            let stripe = self.buffer;
            Self::consume_stripe(&mut self.acc, &stripe);
            self.buffered = 0;
        }
        // Whole stripes straight from the input; the tail waits in the
        // buffer for the next write (or for `finish`).
        let mut stripes = bytes.chunks_exact(32);
        for stripe in &mut stripes {
            Self::consume_stripe(&mut self.acc, stripe);
        }
        let tail = stripes.remainder();
        self.buffer[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    fn finish(&self) -> u64 {
        let mut hash = if self.total >= 32 {
            let [v1, v2, v3, v4] = self.acc;
            let mut h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            merge_round(h, v4)
        } else {
            self.seed.wrapping_add(PRIME_5)
        };
        hash = hash.wrapping_add(self.total);
        let mut rest = &self.buffer[..self.buffered];
        while let Some(chunk) = rest.first_chunk::<8>() {
            hash = (hash ^ round(0, u64::from_le_bytes(*chunk)))
                .rotate_left(27)
                .wrapping_mul(PRIME_1)
                .wrapping_add(PRIME_4);
            rest = &rest[8..];
        }
        if let Some(chunk) = rest.first_chunk::<4>() {
            hash = (hash ^ u64::from(u32::from_le_bytes(*chunk)).wrapping_mul(PRIME_1))
                .rotate_left(23)
                .wrapping_mul(PRIME_2)
                .wrapping_add(PRIME_3);
            rest = &rest[4..];
        }
        for &byte in rest {
            hash = (hash ^ u64::from(byte).wrapping_mul(PRIME_5))
                .rotate_left(11)
                .wrapping_mul(PRIME_1);
        }
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(PRIME_2);
        hash ^= hash >> 29;
        hash = hash.wrapping_mul(PRIME_3);
        hash ^ (hash >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::XxHash64;
    use std::hash::Hasher;

    #[test]
    fn reference_vectors() {
        // Published XXH64 vectors (xxhash sanity suite and ports).
        assert_eq!(XxHash64::oneshot(0, b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(XxHash64::oneshot(0, b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(XxHash64::oneshot(0, b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            XxHash64::oneshot(0, b"The quick brown fox jumps over the lazy dog"),
            0x0B24_2D36_1FDA_71BC,
        );
    }

    #[test]
    fn seed_changes_the_digest() {
        assert_ne!(XxHash64::oneshot(0, b"abc"), XxHash64::oneshot(1, b"abc"));
        assert_ne!(XxHash64::oneshot(0, b""), XxHash64::oneshot(7, b""));
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        // 67 bytes: exercises the 32-byte stripe path, the 8/4/1-byte
        // tails, and buffer top-up across every split point.
        let data: Vec<u8> = (0u8..67)
            .map(|i| i.wrapping_mul(31).wrapping_add(7))
            .collect();
        let expected = XxHash64::oneshot(0x9E37, &data);
        for split in 0..=data.len() {
            let mut hasher = XxHash64::with_seed(0x9E37);
            hasher.write(&data[..split]);
            hasher.write(&data[split..]);
            assert_eq!(hasher.finish(), expected, "split at {split}");
        }
        // Byte-at-a-time.
        let mut hasher = XxHash64::with_seed(0x9E37);
        for &b in &data {
            hasher.write(&[b]);
        }
        assert_eq!(hasher.finish(), expected);
    }

    #[test]
    fn finish_does_not_consume() {
        let mut hasher = XxHash64::with_seed(0);
        hasher.write(b"abc");
        assert_eq!(hasher.finish(), XxHash64::oneshot(0, b"abc"));
        hasher.write(b"def");
        assert_eq!(hasher.finish(), XxHash64::oneshot(0, b"abcdef"));
    }
}
