//! Minimal wall-clock stand-in for `criterion` 0.5 (see
//! `shims/README.md`).
//!
//! Provides the API surface the workspace's bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is plain `std::time::Instant`: each
//! benchmark warms up briefly, then runs enough iterations to fill a
//! small measurement window and prints one summary line. No statistics,
//! no plots — the goal is that `cargo bench` runs the real pipelines
//! end-to-end and reports a usable per-iteration time.
//!
//! Two environment variables hook the shim into CI and snapshots:
//!
//! * `CLASSILINK_BENCH_QUICK=1` — smoke mode: run every benchmark for a
//!   single iteration (no measurement window). CI uses this to assert
//!   bench code still compiles and runs without paying full bench time.
//! * `CLASSILINK_BENCH_JSON=<path>` — append one JSON line per
//!   benchmark (`label`, `mean_ns`, iterations, optional throughput
//!   rate) to `<path>`, so runs can be committed as snapshots (e.g. the
//!   `BENCH_pr*.json` series in the repository root).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` works as upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(None, &id.render(), None, 10, f);
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples (the shim folds this into the
    /// measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under an id.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            Some(&self.group),
            &id.render(),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream consumes `self`; the shim keeps the
    /// signature).
    pub fn finish(self) {}
}

/// Work-per-iteration declaration, used to print a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `true` when `CLASSILINK_BENCH_QUICK` requests single-iteration smoke
/// runs.
fn quick_mode() -> bool {
    std::env::var("CLASSILINK_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Append one JSON result line to the `CLASSILINK_BENCH_JSON` file, if
/// requested. Failures to write are reported but never fail the bench.
fn append_json(label: &str, mean: Duration, iterations: u64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(
            ",\"elements\":{n},\"elements_per_sec\":{:.1}",
            n as f64 / mean.as_secs_f64()
        ),
        Some(Throughput::Bytes(n)) => format!(
            ",\"bytes\":{n},\"bytes_per_sec\":{:.1}",
            n as f64 / mean.as_secs_f64()
        ),
        None => String::new(),
    };
    let line = format!(
        "{{\"label\":{label:?},\"mean_ns\":{},\"iterations\":{iterations}{rate}}}\n",
        mean.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("criterion shim: cannot append to {path}: {error}");
    }
}

fn run_benchmark(
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // One calibration pass: how long does a single iteration take?
    let mut calibration = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibration);
    let per_iter = calibration.elapsed.max(Duration::from_nanos(1));

    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if quick_mode() {
        // Smoke mode: the calibration pass already proved the bench
        // runs; report it and move on.
        println!("{label:<50} time: {per_iter:>12.3?}/iter  [1 iter, quick]");
        append_json(&label, per_iter, 1, throughput);
        return;
    }

    // Aim for a measurement window proportional to the requested sample
    // count, capped so slow pipeline benches stay responsive.
    let window = Duration::from_millis((20 * sample_size as u64).clamp(50, 1_000));
    let iterations = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed / iterations.max(1) as u32;

    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.1} Kelem/s)", n as f64 / mean.as_secs_f64() / 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
        })
        .unwrap_or_default();
    println!("{label:<50} time: {mean:>12.3?}/iter  [{iterations} iters]{rate}");
    append_json(&label, mean, iterations, throughput);
}

/// Mirror of `criterion_group!`: builds a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(1);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_renders_all_forms() {
        assert_eq!(BenchmarkId::new("f", "x").render(), "f/x");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
