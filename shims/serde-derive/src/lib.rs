//! No-op derive macros standing in for `serde_derive` (see
//! `shims/README.md`). The derives accept the `#[serde(...)]` helper
//! attribute and expand to nothing: the workspace keeps its
//! `#[derive(Serialize, Deserialize)]` annotations compiling without a
//! registry, and the real serde can be swapped back in without touching
//! any annotated type.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
