//! Minimal deterministic stand-in for `rand` 0.8 (see `shims/README.md`).
//!
//! Implements the exact API surface the workspace's data generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over integer and `f64` ranges.
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic under a seed, which is the
//! property every caller relies on. The stream differs from upstream
//! rand's `StdRng` (ChaCha12), so the same seed produces different (but
//! equally reproducible) data.

use std::ops::Range;

/// Core source of 64-bit randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, `start < end` required).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (callers clamp `p` into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → the full double mantissa, uniform on [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift: uniform up to a negligible
                // span/2^64 bias, no modulo in the hot path.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let left: Vec<usize> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let right: Vec<usize> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(left, right);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let b = rng.gen_range(0..26u8);
            assert!(b < 26);
        }
    }

    #[test]
    fn gen_bool_respects_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 hit rate off: {hits}");
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
