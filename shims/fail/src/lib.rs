//! Minimal offline stand-in for the `fail` crate (failpoints), API-compatible
//! with the subset this workspace uses (see `shims/README.md`).
//!
//! A *failpoint* is a named no-op marker compiled into cold spots of the
//! code under test. With the `failpoints` cargo feature enabled, tests can
//! arm a site at runtime with a deterministic *action sequence* and make it
//! panic or return an injected error on an exact hit number; without the
//! feature, `fail_point!` expands to nothing and the instrumented code is
//! byte-for-byte the uninstrumented code.
//!
//! # Action grammar
//!
//! An action string is a `->`-separated sequence of steps, each
//! `[N*]task[(arg)]`:
//!
//! | task        | effect on a hit                                        |
//! |-------------|--------------------------------------------------------|
//! | `off`       | do nothing                                             |
//! | `panic`     | `panic!` with the optional argument as the message     |
//! | `return`    | hand the optional argument to the macro's closure form |
//!
//! A `N*` prefix consumes the step for exactly `N` hits; a step without a
//! count is terminal and handles every remaining hit. Hits past the end of
//! a fully consumed sequence do nothing. Examples:
//!
//! * `"panic"` — panic on every hit;
//! * `"2*off->panic"` — hits 1–2 pass, hit 3 onward panics;
//! * `"3*off->1*return(disk full)->off"` — inject an error on exactly the
//!   4th hit, pass otherwise.
//!
//! Evaluation is serialised through one global registry lock, so hit
//! counting is exact even when many worker threads cross the same site.
//! The decision (panic / return / pass) is computed under the lock but
//! *executed after releasing it* — an injected panic can never poison the
//! registry itself.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One step of an action sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Task {
    Off,
    Panic(Option<String>),
    Return(Option<String>),
}

#[derive(Debug, Clone)]
struct Step {
    /// `Some(n)`: the step consumes `n` hits; `None`: terminal.
    remaining: Option<u64>,
    task: Task,
}

#[derive(Debug, Clone, Default)]
struct FailPoint {
    steps: Vec<Step>,
    /// Total hits since the site was configured (diagnostics only).
    hits: u64,
}

/// What a site evaluation asks the macro expansion to do.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Run the closure form with the optional argument and return its value.
    Return(Option<String>),
}

static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();

fn registry() -> MutexGuard<'static, HashMap<String, FailPoint>> {
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        // A panic while holding the lock is impossible by construction
        // (injected panics fire after the guard is dropped); recover anyway
        // so a chaos harness bug cannot cascade into every later test.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn parse_step(spec: &str) -> Result<Step, String> {
    let spec = spec.trim();
    let (remaining, task_spec) = match spec.split_once('*') {
        Some((count, rest)) => {
            let count: u64 = count
                .trim()
                .parse()
                .map_err(|_| format!("invalid hit count in failpoint step '{spec}'"))?;
            (Some(count), rest.trim())
        }
        None => (None, spec),
    };
    let (name, arg) = match task_spec.split_once('(') {
        Some((name, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed argument in failpoint step '{spec}'"))?;
            (name.trim(), Some(arg.to_string()))
        }
        None => (task_spec, None),
    };
    let task = match name {
        "off" => Task::Off,
        "panic" => Task::Panic(arg),
        "return" => Task::Return(arg),
        other => return Err(format!("unknown failpoint task '{other}' in '{spec}'")),
    };
    Ok(Step { remaining, task })
}

fn parse_actions(actions: &str) -> Result<Vec<Step>, String> {
    actions.split("->").map(parse_step).collect()
}

/// Arm (or re-arm) the failpoint `name` with an action sequence.
///
/// Re-arming replaces the previous sequence and resets the hit counter.
pub fn cfg<N: Into<String>>(name: N, actions: &str) -> Result<(), String> {
    let steps = parse_actions(actions)?;
    registry().insert(name.into(), FailPoint { steps, hits: 0 });
    Ok(())
}

/// Disarm the failpoint `name`; unknown names are a no-op.
pub fn remove(name: &str) {
    registry().remove(name);
}

/// Disarm every failpoint.
pub fn teardown() {
    registry().clear();
}

/// Disarm everything, then arm sites from the `FAILPOINTS` environment
/// variable (`site=actions;site=actions;…`), matching the upstream crate.
/// Malformed entries panic: an env-driven chaos run must never silently
/// drop an injection.
pub fn setup() {
    teardown();
    let Ok(spec) = std::env::var("FAILPOINTS") else {
        return;
    };
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, actions) = entry
            .split_once('=')
            .unwrap_or_else(|| panic!("FAILPOINTS entry '{entry}' is not 'site=actions'"));
        cfg(name.trim(), actions).unwrap_or_else(|e| panic!("FAILPOINTS entry '{entry}': {e}"));
    }
}

/// The armed failpoints as `(name, "<hits> hits")` diagnostics pairs.
pub fn list() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = registry()
        .iter()
        .map(|(name, point)| (name.clone(), format!("{} hits", point.hits)))
        .collect();
    out.sort();
    out
}

/// Evaluate one hit of `name`. Called by the `fail_point!` expansion; not
/// public API. Returns `Some(Action::Return(..))` when the closure form
/// must fire; panics when a `panic` step is due; `None` otherwise.
#[doc(hidden)]
pub fn eval(name: &str) -> Option<Action> {
    // Decide under the lock, act after dropping it: a panic must not
    // poison (or hold!) the registry while unwinding through caller code.
    let decision = {
        let mut points = registry();
        let point = points.get_mut(name)?;
        point.hits += 1;
        let mut decided = None;
        for step in &mut point.steps {
            match step.remaining {
                Some(0) => continue,
                Some(ref mut n) => {
                    *n -= 1;
                    decided = Some(step.task.clone());
                    break;
                }
                None => {
                    decided = Some(step.task.clone());
                    break;
                }
            }
        }
        decided
    };
    match decision {
        None | Some(Task::Off) => None,
        Some(Task::Panic(message)) => {
            let message = message.unwrap_or_default();
            panic!("failpoint '{name}' panic: {message}")
        }
        Some(Task::Return(arg)) => Some(Action::Return(arg)),
    }
}

/// The instrumentation macro.
///
/// * `fail_point!("site")` — a site that can pass or panic; `return`
///   actions are ignored here (there is nothing to return into).
/// * `fail_point!("site", |arg: Option<String>| expr)` — additionally
///   supports `return` actions: the closure's value becomes the enclosing
///   function's return value (the expansion contains a `return`).
///
/// Without the `failpoints` feature both forms expand to nothing: the
/// feature check is on the macro *definition*, so it resolves against this
/// crate's features, not the caller's.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        let _ = $crate::eval($name);
    }};
    ($name:expr, $body:expr) => {{
        if let Some($crate::Action::Return(arg)) = $crate::eval($name) {
            #[allow(clippy::redundant_closure_call)]
            return ($body)(arg);
        }
    }};
}

/// Feature-off definition: both forms expand to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{}};
    ($name:expr, $body:expr) => {{}};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; serialise the tests that touch it.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_actions("explode").is_err());
        assert!(parse_actions("x*panic").is_err());
        assert!(parse_actions("return(unclosed").is_err());
        assert!(parse_actions("2*off->panic(boom)").is_ok());
    }

    #[test]
    fn unregistered_site_is_a_pass() {
        let _guard = serial();
        teardown();
        assert_eq!(eval("tests::nowhere"), None);
    }

    #[test]
    fn counted_steps_fire_on_exact_hits() {
        let _guard = serial();
        teardown();
        cfg("tests::nth", "2*off->1*return(now)->off").unwrap();
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(
            eval("tests::nth"),
            Some(Action::Return(Some("now".to_string())))
        );
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(eval("tests::nth"), None);
        remove("tests::nth");
    }

    #[test]
    fn terminal_step_handles_every_remaining_hit() {
        let _guard = serial();
        teardown();
        cfg("tests::term", "1*off->return").unwrap();
        assert_eq!(eval("tests::term"), None);
        for _ in 0..3 {
            assert_eq!(eval("tests::term"), Some(Action::Return(None)));
        }
        remove("tests::term");
    }

    #[test]
    fn panic_step_panics_with_the_message_and_does_not_poison() {
        let _guard = serial();
        teardown();
        cfg("tests::boom", "1*panic(chaos test)->off").unwrap();
        let err = catch_unwind(AssertUnwindSafe(|| eval("tests::boom"))).unwrap_err();
        let message = err.downcast_ref::<String>().unwrap();
        assert!(message.contains("tests::boom"));
        assert!(message.contains("chaos test"));
        // The registry survived and the sequence advanced past the panic.
        assert_eq!(eval("tests::boom"), None);
        assert_eq!(
            list(),
            vec![("tests::boom".to_string(), "2 hits".to_string())]
        );
        remove("tests::boom");
    }

    #[test]
    fn setup_arms_sites_from_the_env_spec() {
        let _guard = serial();
        teardown();
        std::env::set_var(
            "FAILPOINTS",
            "tests::env_a=1*return(from env)->off; tests::env_b=off",
        );
        setup();
        assert_eq!(
            eval("tests::env_a"),
            Some(Action::Return(Some("from env".to_string())))
        );
        assert_eq!(eval("tests::env_a"), None);
        assert_eq!(eval("tests::env_b"), None);
        std::env::remove_var("FAILPOINTS");
        // Without the variable, setup() is a plain teardown.
        setup();
        assert_eq!(eval("tests::env_a"), None);
    }

    #[test]
    fn rearming_resets_the_sequence() {
        let _guard = serial();
        teardown();
        cfg("tests::rearm", "1*return->off").unwrap();
        assert_eq!(eval("tests::rearm"), Some(Action::Return(None)));
        assert_eq!(eval("tests::rearm"), None);
        cfg("tests::rearm", "1*return->off").unwrap();
        assert_eq!(eval("tests::rearm"), Some(Action::Return(None)));
        teardown();
        assert_eq!(eval("tests::rearm"), None);
    }

    #[cfg(feature = "failpoints")]
    mod macro_forms {
        use super::*;

        fn guarded() -> Result<u32, String> {
            fail_point!("tests::macro_return", |arg: Option<String>| Err(
                arg.unwrap_or_default()
            ));
            fail_point!("tests::macro_plain");
            Ok(7)
        }

        #[test]
        fn closure_form_returns_and_plain_form_panics() {
            let _guard = serial();
            teardown();
            assert_eq!(guarded(), Ok(7));
            cfg("tests::macro_return", "return(injected)").unwrap();
            assert_eq!(guarded(), Err("injected".to_string()));
            remove("tests::macro_return");
            cfg("tests::macro_plain", "panic(chaos macro)").unwrap();
            assert!(catch_unwind(AssertUnwindSafe(guarded)).is_err());
            teardown();
            assert_eq!(guarded(), Ok(7));
        }
    }
}
