//! Marker-only stand-in for `serde` (see `shims/README.md`).
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives and declares
//! the two traits as empty markers so that trait bounds written against
//! them still parse. Nothing in the workspace serialises at runtime; the
//! real serde drops back in by swapping the path override in the root
//! `Cargo.toml` for a registry version.

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker mirroring `serde::Serialize`.
pub trait Serialize {}

/// Empty marker mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Empty marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

pub mod de {
    pub use super::DeserializeOwned;
}
