//! Minimal deterministic stand-in for `proptest` 1.x (see
//! `shims/README.md`).
//!
//! Supports the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn `name in strategy`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` (mapped to the
//!   panicking `assert*` family — equivalent under this runner),
//! * string strategies given as regex literals restricted to sequences of
//!   `[class]{m,n}` atoms (ranges, literals, trailing `-`) plus `\PC`
//!   (any printable char), e.g. `"[a-zA-Z0-9 -]{0,20}"` or `"\\PC{0,60}"`,
//! * numeric `Range` strategies such as `1usize..5` or `0.0f64..1.0`.
//!
//! Each test runs [`CASES`] deterministic cases seeded from the test's
//! name, so failures reproduce exactly across runs and machines.

use std::ops::Range;

/// Number of cases each property test runs.
pub const CASES: usize = 128;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name so every test has its own stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut state: u64 = 0x5851_F42D_4C95_7F2D;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

/// Something that can generate a value for one test case.
pub trait Strategy {
    /// The generated value's type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min_reps + rng.below(atom.max_reps - atom.min_reps + 1);
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy generating vectors of `element` values with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size.clone(), rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One pattern atom: a character alphabet and a repetition range.
struct Atom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

/// The alphabet `\PC` draws from: printable ASCII plus a few multi-byte
/// characters so Unicode-safety bugs surface.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (' '..='~').collect();
    chars.extend(['é', 'Ü', 'ß', 'ç', 'λ', 'Ω', '–', '漢', '日', '€']);
    chars
}

/// Parse the supported regex subset into atoms. Panics on anything
/// outside the subset — extend this parser rather than silently
/// misgenerating.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed char class in {pattern:?}"))
                    + i;
                let alphabet = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                alphabet
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                printable_alphabet()
            }
            other => panic!("unsupported pattern atom {other:?} in {pattern:?}"),
        };
        let (min_reps, max_reps) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min_reps <= max_reps, "bad repetition in {pattern:?}");
        assert!(!alphabet.is_empty(), "empty alphabet in {pattern:?}");
        atoms.push(Atom {
            chars: alphabet,
            min_reps,
            max_reps,
        });
    }
    atoms
}

/// Parse the body of a `[...]` class: `x-y` ranges and literal chars; a
/// `-` that does not sit between two range endpoints is literal.
fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(body[i]);
            i += 1;
        }
    }
    alphabet
}

/// The macros and traits tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Run each wrapped `#[test]` function over [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("shim-self-test")
    }

    #[test]
    fn string_strategies_respect_alphabet_and_length() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9 -]{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' ' || c == '-'));
        }
    }

    #[test]
    fn concatenated_atoms_generate_in_order() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn ascii_printable_range_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,40}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn pc_class_produces_printables_and_non_ascii_eventually() {
        let mut rng = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = Strategy::generate(&"\\PC{0,60}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "\\PC never generated a multi-byte char");
    }

    #[test]
    fn numeric_ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let n = Strategy::generate(&(1usize..5), &mut rng);
            assert!((1..5).contains(&n));
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&"[a-z]{0,12}", &mut a),
                Strategy::generate(&"[a-z]{0,12}", &mut b)
            );
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(a in "[a-z]{0,5}", n in 1usize..4) {
            prop_assert!(a.len() <= 5);
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(a.len(), a.chars().count());
            prop_assert_ne!(n, 0);
        }
    }
}
