//! Generality beyond part numbers: learn classification rules for toponyms,
//! where the class-revealing segment is a word of the `rdfs:label`
//! ("Dresden Elbe Valley", "Place de la Concorde", "Copacabana Beach" — the
//! examples of the paper's introduction).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example geo_toponyms
//! ```

use classilink::core::{LearnerConfig, RuleClassifier, RuleLearner};
use classilink::datagen::geo::geo_scenario;
use classilink::eval::ClassificationOutcome;

fn main() {
    // 40 labelled places per type for training, 10 held out per type.
    let geo = geo_scenario(40, 10, 42);
    println!(
        "Toponym scenario: {} place types, {} training labels, {} held-out labels\n",
        geo.ontology.leaves().len(),
        geo.training.len(),
        geo.heldout.len()
    );

    let config = LearnerConfig::default().with_support_threshold(0.01);
    let outcome = RuleLearner::new(config.clone())
        .learn(&geo.training, &geo.ontology)
        .expect("learning succeeds");

    println!(
        "Learnt {} rules; the confidence-1 rules capture the place-type words:",
        outcome.rules.len()
    );
    for rule in outcome.rules_with_confidence(1.0).iter().take(10) {
        println!("  {rule}");
    }

    // Classify the held-out toponyms.
    let classifier = RuleClassifier::from_outcome(&outcome, &config);
    let mut tally = ClassificationOutcome::new(geo.heldout.len());
    let mut examples = Vec::new();
    for (item, facts, gold) in &geo.heldout {
        let prediction = classifier.decide(facts);
        if examples.len() < 5 {
            let label = &facts[0].1;
            let predicted = prediction
                .as_ref()
                .map(|p| p.class_iri.rsplit('#').next().unwrap_or("").to_string())
                .unwrap_or_else(|| "(no rule fired)".to_string());
            examples.push(format!("  {label:<30} → {predicted}"));
        }
        tally.record(prediction.map(|p| p.class), Some(*gold));
        let _ = item;
    }

    println!("\nSample of held-out classifications:");
    for line in &examples {
        println!("{line}");
    }
    println!(
        "\nHeld-out results: {} decisions, precision {:.1}%, recall {:.1}%, F1 {:.2}",
        tally.decisions,
        tally.precision() * 100.0,
        tally.recall() * 100.0,
        tally.f1()
    );
}
