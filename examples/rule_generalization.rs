//! The paper's future-work extension: generalise rules through the class
//! hierarchy ("infer more general rules by exploiting the semantics of the
//! subsumption between classes of the ontology").
//!
//! A segment such as `uF` is not discriminative for any single capacitor
//! subclass, but it is perfectly discriminative for the `Capacitor`
//! superclass. Generalised rules trade a somewhat larger linking subspace for
//! higher confidence and recall.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example rule_generalization
//! ```

use classilink::core::{
    generalize, GeneralizeConfig, LearnerConfig, PropertySelection, RuleLearner,
};
use classilink::datagen::scenario::{generate, ScenarioConfig};
use classilink::datagen::vocab;
use classilink::eval::sweeps::generalization_ablation;
use classilink::eval::table1::EvaluationItem;

fn main() {
    let scenario = generate(&ScenarioConfig::small());
    let config = LearnerConfig::default()
        .with_support_threshold(0.002)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));

    // Base rules (leaf-level conclusions, as in the paper's evaluation).
    let base = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("learning succeeds");
    println!(
        "Base outcome: {} rules over {} leaf classes",
        base.rules.len(),
        base.stats.classes_with_rules
    );

    // Generalised rules: conclusions lifted to superclasses when that
    // improves confidence.
    let gen = generalize(
        &scenario.training,
        &scenario.ontology,
        &config,
        &base,
        &GeneralizeConfig::default(),
    )
    .expect("generalisation succeeds");
    println!(
        "Generalisation added {} rules on non-leaf classes ({} premises improved).\n",
        gen.generalized_rules.len(),
        gen.improved_premises
    );
    println!("Examples of generalised rules:");
    for rule in gen.generalized_rules.iter().take(8) {
        println!("  {rule}");
    }

    // Quantify the effect on coverage (ablation A3 of DESIGN.md).
    let items: Vec<EvaluationItem> = scenario
        .training
        .examples()
        .iter()
        .map(|e| (e.classes.first().copied(), e.facts.clone()))
        .collect();
    let point = generalization_ablation(
        &scenario.training,
        &scenario.ontology,
        &items,
        &config,
        &GeneralizeConfig::default(),
    )
    .expect("ablation runs");

    let (base_dec, base_prec, base_rec) = point.base;
    let (gen_dec, gen_prec, gen_rec) = point.generalized;
    println!("\nEffect on the training items ({} items):", items.len());
    println!(
        "  leaf rules only:        {base_dec} decisions, precision {:.1}%, recall {:.1}%",
        base_prec * 100.0,
        base_rec * 100.0
    );
    println!(
        "  with generalised rules: {gen_dec} decisions, precision {:.1}%, recall {:.1}% (ancestor predictions count as correct)",
        gen_prec * 100.0,
        gen_rec * 100.0
    );
}
