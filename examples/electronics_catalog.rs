//! The paper's evaluation, end to end: generate a Thales-scale synthetic
//! electronic-products catalog, learn classification rules with `th = 0.002`,
//! and regenerate Table 1 plus the dataset statistics the paper reports.
//!
//! Run with (the paper-scale run takes a little while in debug mode):
//!
//! ```bash
//! cargo run --release --example electronics_catalog            # paper scale
//! cargo run --release --example electronics_catalog -- small   # quicker run
//! ```

use classilink::core::{
    LearnerConfig, PropertySelection, RuleClassifier, RuleLearner, SubspaceBuilder,
};
use classilink::datagen::scenario::{generate, ScenarioConfig};
use classilink::datagen::vocab;
use classilink::eval::table1::Table1Experiment;
use classilink::ontology::OntologyStats;
use classilink::rdf::Term;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "paper".to_string());
    let config = match scale.as_str() {
        "small" => ScenarioConfig::small(),
        "tiny" => ScenarioConfig::tiny(),
        _ => ScenarioConfig::paper(),
    };

    println!("Generating the synthetic catalog ({scale} scale)…");
    let scenario = generate(&config);
    let onto_stats = OntologyStats::compute(&scenario.ontology);
    println!(
        "  ontology: {} classes, {} leaves (paper: 566 classes, 226 leaves)",
        onto_stats.class_count, onto_stats.leaf_count
    );
    println!(
        "  catalog |SL| = {} products, training set |TS| = {} expert links",
        scenario.catalog_size(),
        scenario.training.len()
    );
    println!(
        "  naive linking space |SE|×|SL| = {} pairs\n",
        scenario.dataset.naive_linking_space()
    );

    // The expert's choices, as in the paper: the part-number property only,
    // separator segmentation, th = 0.002.
    let learner = LearnerConfig::paper()
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));

    println!(
        "Learning classification rules (th = {})…",
        learner.support_threshold
    );
    let experiment = Table1Experiment::with_learner(learner.clone());
    let (outcome, report) = experiment
        .run_on_training(&scenario.training, &scenario.ontology)
        .expect("learning succeeds");

    println!(
        "  distinct segments:            {} (paper: 7842)",
        report.distinct_segments
    );
    println!(
        "  segment occurrences:          {} (paper: 26077)",
        report.segment_occurrences
    );
    println!(
        "  selected segment occurrences: {} (paper: 7058)",
        report.selected_segment_occurrences
    );
    println!(
        "  frequent classes:             {} (paper: 68)",
        report.frequent_classes
    );
    println!(
        "  classification rules:         {} (paper: 144)",
        report.total_rules
    );
    println!(
        "  classes with rules:           {} (paper: 16 leaf classes)\n",
        report.classes_with_rules
    );

    println!("{}", report.to_table().to_ascii());

    // A few of the most confident rules, to show they are "concise and easy
    // to understand by an expert".
    println!("Examples of learnt rules (highest confidence first):");
    for rule in outcome.rules.iter().take(8) {
        println!("  {rule}");
    }

    // Linking-space reduction: how many catalog products an external item is
    // compared with once it has been classified.
    let classifier = RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(1.0);
    let builder = SubspaceBuilder::new(&classifier, &scenario.instances, &scenario.ontology);
    let sample: Vec<(Term, Vec<(String, String)>)> = scenario
        .training
        .examples()
        .iter()
        .take(500)
        .map(|e| (e.external_item.clone(), e.facts.clone()))
        .collect();
    let stats = builder.reduction_stats(&sample, scenario.catalog_size());
    println!(
        "\nLinking-space reduction with confidence-1 rules (sample of {} items):",
        sample.len()
    );
    println!(
        "  classified items: {} / {}",
        stats.classified_items, stats.external_items
    );
    println!(
        "  mean reduction factor for classified items: ÷{:.1} (paper: ≥ 5 even for a class holding 20% of the catalog)",
        stats.mean_reduction_factor
    );
    println!(
        "  overall space: {} of {} naive pairs remain ({:.1}% reduction)",
        stats.reduced_pairs,
        stats.naive_pairs,
        stats.reduction_ratio * 100.0
    );

    // Re-learn with `th` swept, as a quick sanity check of the threshold the
    // paper chose.
    println!("\nRules at other support thresholds:");
    for th in [0.0005, 0.002, 0.01] {
        let cfg = learner.clone().with_support_threshold(th);
        let o = RuleLearner::new(cfg)
            .learn(&scenario.training, &scenario.ontology)
            .unwrap();
        println!("  th = {th:<7} → {} rules", o.rules.len());
    }
}
