//! Quickstart: learn classification rules from a handful of linked products
//! and use them to classify a new provider item.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use classilink::core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink::core::{TrainingExample, TrainingSet};
use classilink::ontology::OntologyBuilder;
use classilink::rdf::Term;

const PART_NUMBER: &str = "http://provider.example.com/vocab#reference";

fn main() {
    // ------------------------------------------------------------------
    // 1. The local ontology OL: a tiny electronic-components hierarchy.
    // ------------------------------------------------------------------
    let mut builder = OntologyBuilder::new("http://classilink.example.org/catalog/classes#");
    let component = builder.class("Electronic component", None);
    let resistor = builder.class("Fixed film resistance", Some(component));
    let capacitor = builder.class("Tantalum capacitor", Some(component));
    let ontology = builder.build();

    // ------------------------------------------------------------------
    // 2. The training set TS: expert-validated same-as links. Each example
    //    carries the provider item's property facts and the catalog item's
    //    class. Segments such as "ohm", "63V" or "T83" reveal the class.
    // ------------------------------------------------------------------
    let mut training = TrainingSet::new();
    let resistor_pns = [
        "CRCW0805-10K-ohm-63V",
        "CRCW0603-22K-ohm",
        "ERJ6-47K-ohm-63V",
        "WSL2512-1R0-ohm",
        "CPF0805-100K-ohm-63V",
    ];
    let capacitor_pns = [
        "T83-A225-25V",
        "T83-B106-35V",
        "TAJ-C476-16V",
        "T83-D336-25V",
        "TAJ-E157-10V",
    ];
    for (i, pn) in resistor_pns.iter().enumerate() {
        training.push(TrainingExample::new(
            Term::iri(format!("http://provider.example.com/item/r{i}")),
            Term::iri(format!(
                "http://classilink.example.org/catalog/product/r{i}"
            )),
            vec![(PART_NUMBER.to_string(), pn.to_string())],
            vec![resistor],
        ));
    }
    for (i, pn) in capacitor_pns.iter().enumerate() {
        training.push(TrainingExample::new(
            Term::iri(format!("http://provider.example.com/item/c{i}")),
            Term::iri(format!(
                "http://classilink.example.org/catalog/product/c{i}"
            )),
            vec![(PART_NUMBER.to_string(), pn.to_string())],
            vec![capacitor],
        ));
    }

    // ------------------------------------------------------------------
    // 3. Learn the classification rules (Algorithm 1).
    // ------------------------------------------------------------------
    let config = LearnerConfig::default()
        .with_support_threshold(0.1)
        .with_properties(PropertySelection::single(PART_NUMBER));
    let outcome = RuleLearner::new(config.clone())
        .learn(&training, &ontology)
        .expect("learning succeeds on a non-empty training set");

    println!("Learnt {} classification rules:\n", outcome.rules.len());
    for rule in &outcome.rules {
        println!("  {rule}");
    }

    // ------------------------------------------------------------------
    // 4. Classify new provider items: the rules tell the linker which class
    //    of the catalog each item should be compared with.
    // ------------------------------------------------------------------
    let classifier = RuleClassifier::from_outcome(&outcome, &config);
    println!("\nClassifying new provider items:");
    for pn in ["CRCW1206-330R-ohm", "T83-F686-50V", "LM317-TO220"] {
        let facts = vec![(PART_NUMBER.to_string(), pn.to_string())];
        match classifier.decide(&facts) {
            Some(prediction) => println!(
                "  {pn:<22} → {} (confidence {:.2}, lift {:.1})",
                prediction.class_iri.rsplit('#').next().unwrap_or(""),
                prediction.confidence,
                prediction.lift
            ),
            None => println!("  {pn:<22} → no rule fired (compare with the whole catalog)"),
        }
    }
}
