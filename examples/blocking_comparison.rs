//! Compare the paper's rule-based linking-space reduction with the classic
//! blocking baselines from the related-work section (standard blocking,
//! sorted neighbourhood, bi-gram indexing), and run the full linkage pipeline
//! on top of the best candidates.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example blocking_comparison
//! ```

use classilink::core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink::datagen::scenario::{generate, ScenarioConfig};
use classilink::datagen::vocab;
use classilink::eval::blocking_eval::{compare_blockers, render, stores_and_truth};
use classilink::linking::blocking::{Blocker, RuleBasedBlocker};
use classilink::linking::{LinkagePipeline, RecordComparator, SimilarityMeasure};

fn main() {
    let scenario = generate(&ScenarioConfig::small());
    println!(
        "Scenario: |SL| = {} products, |SE| = {} provider items, {} expert links\n",
        scenario.catalog_size(),
        scenario
            .dataset
            .item_count(classilink::rdf::Source::External),
        scenario.dataset.link_count()
    );

    let learner = LearnerConfig::default()
        .with_support_threshold(0.002)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));

    // ------------------------------------------------------------------
    // 1. Candidate-pair generation: every strategy on the same data.
    // ------------------------------------------------------------------
    let rows = compare_blockers(&scenario, &learner, 0.4, 7, 0.7).expect("comparison runs");
    println!("{}", render(&rows).to_ascii());

    // ------------------------------------------------------------------
    // 2. Full linkage on top of the rule-based reduction: blocking by the
    //    learnt rules, then Jaro-Winkler comparison of part numbers.
    // ------------------------------------------------------------------
    let outcome = RuleLearner::new(learner.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("learning succeeds");
    let classifier = RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(0.4);
    let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
        .with_fallback(true);
    let comparator = RecordComparator::single(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);

    // Columnarise both sides once; blocking, comparison and the naive
    // baseline below all run on the same interned stores.
    let (external, local, truth) = stores_and_truth(&scenario);
    let result = LinkagePipeline::new(&blocker, &comparator)
        .with_threads(4)
        .run_stores(&external, &local);

    // How many of the expert links did the end-to-end pipeline recover?
    let truth_terms: std::collections::HashSet<_> = truth
        .iter()
        .map(|(e, l)| (external.id(*e).clone(), local.id(*l).clone()))
        .collect();
    let found = result
        .matched_pairs()
        .into_iter()
        .filter(|pair| truth_terms.contains(pair))
        .count();

    println!("End-to-end linkage through the rule-based reduction:");
    println!(
        "  comparisons performed: {} of {} naive pairs ({:.1}% reduction)",
        result.comparisons,
        result.naive_pairs,
        result.reduction_ratio * 100.0
    );
    println!(
        "  matches found: {} ({} true links recovered out of {})",
        result.matches.len(),
        found,
        truth_terms.len()
    );
    println!(
        "  possible matches for clerical review: {}",
        result.possible.len()
    );

    // For contrast: the same comparator over the naive cartesian space.
    let cartesian = classilink::linking::CartesianBlocker;
    let naive_comparisons = cartesian.candidate_pairs(&external, &local).len();
    println!("\nWithout any reduction the linker would perform {naive_comparisons} comparisons.");
}
