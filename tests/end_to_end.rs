//! Cross-crate integration tests: generate a scenario, learn rules, classify,
//! reduce the linking space, and link — the whole workflow of the paper.

use classilink::core::{
    LearnerConfig, PropertySelection, RuleClassifier, RuleLearner, SubspaceBuilder,
};
use classilink::datagen::scenario::{generate, ScenarioConfig};
use classilink::datagen::vocab;
use classilink::eval::blocking_eval::{compare_blockers, stores_and_truth};
use classilink::eval::table1::Table1Experiment;
use classilink::linking::blocking::RuleBasedBlocker;
use classilink::linking::{LinkagePipeline, RecordComparator, SimilarityMeasure};
use classilink::rdf::Term;

fn learner_config() -> LearnerConfig {
    LearnerConfig::default()
        .with_support_threshold(0.002)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER))
}

#[test]
fn learn_classify_and_reduce_on_a_small_scenario() {
    let scenario = generate(&ScenarioConfig::small());
    let config = learner_config();
    let outcome = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("learning succeeds");
    assert!(outcome.rules.len() > 30, "expected a sizeable rule set");
    assert!(outcome.stats.frequent_classes > 10);

    // Confidence-1 rules are perfectly precise on the training data by
    // construction of the quality measures.
    for rule in outcome.rules_with_confidence(1.0) {
        assert_eq!(rule.quality.counts.both, rule.quality.counts.premise);
    }

    // Classify held-out external items and check accuracy against the gold
    // classes recorded by the generator.
    let classifier = RuleClassifier::from_outcome(&outcome, &config);
    let mut decided = 0usize;
    let mut correct = 0usize;
    for (item, facts) in &scenario.heldout {
        if let Some(prediction) = classifier.decide(facts) {
            decided += 1;
            if scenario.gold_class(item) == Some(prediction.class) {
                correct += 1;
            }
        }
    }
    assert!(
        decided > scenario.heldout.len() / 3,
        "too few held-out decisions"
    );
    assert!(
        correct as f64 / decided as f64 > 0.5,
        "held-out precision too low: {correct}/{decided}"
    );

    // The linking subspace of classified items is much smaller than the
    // catalog.
    let strict = classifier.with_min_confidence(1.0);
    let builder = SubspaceBuilder::new(&strict, &scenario.instances, &scenario.ontology);
    let batch: Vec<(Term, Vec<(String, String)>)> = scenario
        .training
        .examples()
        .iter()
        .take(200)
        .map(|e| (e.external_item.clone(), e.facts.clone()))
        .collect();
    let stats = builder.reduction_stats(&batch, scenario.catalog_size());
    assert!(stats.classified_items > 0);
    assert!(
        stats.mean_reduction_factor > 5.0,
        "confidence-1 rules should shrink the space by a large factor, got {}",
        stats.mean_reduction_factor
    );
}

#[test]
fn table1_report_has_the_paper_shape() {
    let scenario = generate(&ScenarioConfig::small());
    let experiment = Table1Experiment::with_learner(learner_config());
    let (outcome, report) = experiment
        .run_on_training(&scenario.training, &scenario.ontology)
        .expect("experiment runs");

    assert_eq!(report.rows.len(), 4);
    assert_eq!(report.evaluated_items, scenario.training.len());
    assert!(report.total_rules > 50);
    assert_eq!(report.total_rules, outcome.rules.len());

    // Shape of Table 1: the confidence-1 row is perfectly precise; precision
    // never increases and recall never decreases as the threshold drops.
    assert!((report.rows[0].precision - 1.0).abs() < 1e-9);
    assert!(report.rows[0].recall > 0.15);
    for pair in report.rows.windows(2) {
        assert!(pair[0].precision + 1e-9 >= pair[1].precision);
        assert!(pair[0].recall <= pair[1].recall + 1e-9);
    }
    // The last row classifies strictly more items than the first.
    assert!(report.rows[3].decisions > report.rows[0].decisions);
    // Average lift stays well above 1 in every row (the paper reports > 20).
    for row in &report.rows {
        assert!(row.avg_lift > 5.0, "lift too low in row {row:?}");
    }
}

#[test]
fn rule_based_blocking_beats_cartesian_and_feeds_the_linker() {
    let scenario = generate(&ScenarioConfig::tiny());
    let config = learner_config().with_support_threshold(0.01);

    let rows = compare_blockers(&scenario, &config, 0.4, 5, 0.7).expect("comparison runs");
    let cartesian = rows.iter().find(|r| r.method == "cartesian").unwrap();
    let rules = rows
        .iter()
        .find(|r| r.method == "classification-rules+fallback")
        .unwrap();
    assert!(rules.stats.candidate_pairs < cartesian.stats.candidate_pairs);
    assert!(rules.stats.pairs_completeness > 0.8);

    // Run the linkage pipeline over the rule-based candidates and check it
    // recovers most of the expert links.
    let outcome = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .unwrap();
    let classifier = RuleClassifier::from_outcome(&outcome, &config);
    let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
        .with_fallback(true);
    let comparator = RecordComparator::single(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);
    let (external, local, truth) = stores_and_truth(&scenario);
    let result = LinkagePipeline::new(&blocker, &comparator).run_stores(&external, &local);
    assert!(result.comparisons < result.naive_pairs);

    let truth_terms: std::collections::HashSet<_> = truth
        .iter()
        .map(|(e, l)| (external.id(*e).clone(), local.id(*l).clone()))
        .collect();
    let recovered = result
        .matched_pairs()
        .into_iter()
        .filter(|p| truth_terms.contains(p))
        .count();
    assert!(
        recovered as f64 / truth_terms.len() as f64 > 0.5,
        "only {recovered} of {} links recovered",
        truth_terms.len()
    );
}

#[test]
fn scenario_determinism_extends_to_learning() {
    let a = generate(&ScenarioConfig::tiny());
    let b = generate(&ScenarioConfig::tiny());
    let config = learner_config().with_support_threshold(0.01);
    let oa = RuleLearner::new(config.clone())
        .learn(&a.training, &a.ontology)
        .unwrap();
    let ob = RuleLearner::new(config)
        .learn(&b.training, &b.ontology)
        .unwrap();
    assert_eq!(oa, ob);
}
