//! Namespace / prefix management and well-known vocabularies.

use crate::error::{RdfError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The RDF namespace.
pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// The RDF Schema namespace.
pub const RDFS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// The OWL namespace.
pub const OWL: &str = "http://www.w3.org/2002/07/owl#";
/// The XML Schema datatypes namespace.
pub const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// Well-known term IRIs used across the workspace.
pub mod vocab {
    /// `rdf:type`.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdfs:label`.
    pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:subClassOf`.
    pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:domain`.
    pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    /// `rdfs:range`.
    pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    /// `owl:Class`.
    pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    /// `owl:DatatypeProperty`.
    pub const OWL_DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    /// `owl:ObjectProperty`.
    pub const OWL_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    /// `owl:disjointWith`.
    pub const OWL_DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
    /// `owl:sameAs` — the link predicate the paper's training set is made of.
    pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
    /// `owl:Thing`, the implicit root of every ontology.
    pub const OWL_THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    /// `xsd:string`.
    pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
}

/// A prefix → namespace-IRI table with CURIE expansion and IRI shrinking.
///
/// ```
/// use classilink_rdf::Namespaces;
/// let mut ns = Namespaces::common();
/// ns.declare("ex", "http://example.org/vocab#");
/// assert_eq!(ns.expand("ex:partNumber").unwrap(), "http://example.org/vocab#partNumber");
/// assert_eq!(ns.shrink("http://example.org/vocab#partNumber"), Some("ex:partNumber".to_string()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Namespaces {
    prefixes: BTreeMap<String, String>,
}

impl Namespaces {
    /// An empty prefix table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table pre-populated with `rdf`, `rdfs`, `owl` and `xsd`.
    pub fn common() -> Self {
        let mut ns = Self::new();
        ns.declare("rdf", RDF);
        ns.declare("rdfs", RDFS);
        ns.declare("owl", OWL);
        ns.declare("xsd", XSD);
        ns
    }

    /// Declare (or overwrite) a prefix.
    pub fn declare(&mut self, prefix: impl Into<String>, iri: impl Into<String>) {
        self.prefixes.insert(prefix.into(), iri.into());
    }

    /// Look up the namespace IRI bound to `prefix`.
    pub fn get(&self, prefix: &str) -> Option<&str> {
        self.prefixes.get(prefix).map(String::as_str)
    }

    /// Number of declared prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// `true` when no prefix is declared.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Iterate over `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Expand a CURIE (`prefix:local`) into a full IRI. Full IRIs (detected by
    /// the presence of `://` or a leading `urn:`) are returned unchanged.
    pub fn expand(&self, curie_or_iri: &str) -> Result<String> {
        if curie_or_iri.contains("://") || curie_or_iri.starts_with("urn:") {
            return Ok(curie_or_iri.to_string());
        }
        match curie_or_iri.split_once(':') {
            Some((prefix, local)) => match self.prefixes.get(prefix) {
                Some(ns) => Ok(format!("{ns}{local}")),
                None => Err(RdfError::UnknownPrefix(prefix.to_string())),
            },
            None => Ok(curie_or_iri.to_string()),
        }
    }

    /// Shrink a full IRI into a CURIE if a declared namespace is its prefix.
    /// The longest matching namespace wins.
    pub fn shrink(&self, iri: &str) -> Option<String> {
        let mut best: Option<(&str, &str)> = None;
        for (prefix, ns) in &self.prefixes {
            if iri.starts_with(ns.as_str()) {
                match best {
                    Some((_, best_ns)) if best_ns.len() >= ns.len() => {}
                    _ => best = Some((prefix, ns)),
                }
            }
        }
        best.map(|(prefix, ns)| format!("{prefix}:{}", &iri[ns.len()..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_has_four_prefixes() {
        let ns = Namespaces::common();
        assert_eq!(ns.len(), 4);
        assert!(!ns.is_empty());
        assert_eq!(ns.get("rdf"), Some(RDF));
        assert_eq!(ns.get("nope"), None);
    }

    #[test]
    fn expand_curie() {
        let mut ns = Namespaces::common();
        ns.declare("ex", "http://example.org/");
        assert_eq!(ns.expand("ex:thing").unwrap(), "http://example.org/thing");
        assert_eq!(
            ns.expand("rdf:type").unwrap(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
    }

    #[test]
    fn expand_full_iri_passthrough() {
        let ns = Namespaces::common();
        assert_eq!(
            ns.expand("http://example.org/a").unwrap(),
            "http://example.org/a"
        );
        assert_eq!(ns.expand("urn:isbn:123").unwrap(), "urn:isbn:123");
        assert_eq!(ns.expand("plainword").unwrap(), "plainword");
    }

    #[test]
    fn expand_unknown_prefix_errors() {
        let ns = Namespaces::new();
        assert!(matches!(
            ns.expand("ex:thing"),
            Err(RdfError::UnknownPrefix(p)) if p == "ex"
        ));
    }

    #[test]
    fn shrink_prefers_longest_namespace() {
        let mut ns = Namespaces::new();
        ns.declare("a", "http://example.org/");
        ns.declare("b", "http://example.org/vocab#");
        assert_eq!(
            ns.shrink("http://example.org/vocab#partNumber"),
            Some("b:partNumber".to_string())
        );
        assert_eq!(
            ns.shrink("http://example.org/item/1"),
            Some("a:item/1".to_string())
        );
        assert_eq!(ns.shrink("http://other.org/x"), None);
    }

    #[test]
    fn declare_overwrites() {
        let mut ns = Namespaces::new();
        ns.declare("ex", "http://one.org/");
        ns.declare("ex", "http://two.org/");
        assert_eq!(ns.get("ex"), Some("http://two.org/"));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let mut ns = Namespaces::new();
        ns.declare("b", "http://b.org/");
        ns.declare("a", "http://a.org/");
        let pairs: Vec<_> = ns.iter().collect();
        assert_eq!(pairs[0].0, "a");
        assert_eq!(pairs[1].0, "b");
    }
}
