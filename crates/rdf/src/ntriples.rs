//! N-Triples parsing and serialisation.
//!
//! N-Triples is the line-oriented RDF exchange syntax: one triple per line,
//! terms written in full. It is the format the synthetic catalog generator
//! emits and the format examples read back, so round-tripping must be exact.
//!
//! Two reading modes share one code path: [`NTriplesStreamer`] consumes the
//! input as byte chunks (a multi-GB feed is parsed with memory bounded by
//! one line plus one chunk), and the batch [`parse`] is a thin wrapper that
//! feeds the whole document through the same streamer.

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::term::{escape_literal, unescape_literal, Literal, Term};
use crate::triple::Triple;

/// Parse a complete N-Triples document into a [`Graph`].
///
/// Thin wrapper over [`NTriplesStreamer`]: the whole input is fed as one
/// chunk and the emitted triples are collected into a graph.
pub fn parse(input: &str) -> Result<Graph> {
    let mut streamer = NTriplesStreamer::new();
    streamer.feed(input.as_bytes());
    streamer.finish();
    let mut graph = Graph::new();
    while let Some(triple) = streamer.next_triple() {
        graph.insert(triple?);
    }
    Ok(graph)
}

/// An incremental N-Triples reader: push byte chunks in, pull [`Triple`]s out.
///
/// Chunks may split the input anywhere — mid-line, mid-token, even inside a
/// multi-byte UTF-8 sequence — because a line is only decoded once its
/// terminating `\n` (a byte that never occurs inside a UTF-8 continuation)
/// has arrived. Internal buffering is bounded by the longest input line plus
/// the last fed chunk; completed lines are drained as soon as they are
/// emitted, so a feed of any size parses in O(line) memory.
///
/// ```
/// use classilink_rdf::NTriplesStreamer;
///
/// let mut streamer = NTriplesStreamer::new();
/// // Chunk boundaries need not align with lines (or even characters).
/// streamer.feed(b"<http://e.org/a> <http://e.org/p> \"v1\" .\n<http://e.org");
/// streamer.feed(b"/b> <http://e.org/p> \"v2\" .");
/// streamer.finish();
/// let mut n = 0;
/// while let Some(triple) = streamer.next_triple() {
///     triple.unwrap();
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// ```
#[derive(Debug, Default)]
pub struct NTriplesStreamer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline (avoids rescans when a
    /// long line arrives across many chunks).
    scanned: usize,
    line_no: usize,
    finished: bool,
    failed: bool,
}

impl NTriplesStreamer {
    /// A streamer with no input yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a chunk of input bytes. Call [`next_triple`](Self::next_triple)
    /// between feeds to keep the internal buffer bounded.
    pub fn feed(&mut self, chunk: &[u8]) {
        debug_assert!(!self.finished, "feed after finish");
        self.buf.extend_from_slice(chunk);
    }

    /// Signal end of input: a final line without a trailing newline becomes
    /// available to [`next_triple`](Self::next_triple).
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Bytes currently buffered (at most one incomplete line once drained).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next parsed triple.
    ///
    /// Returns `None` when every complete line fed so far has been consumed
    /// (feed more chunks, or [`finish`](Self::finish) to flush the tail).
    /// After the first `Err` the streamer is poisoned and yields `None`.
    pub fn next_triple(&mut self) -> Option<Result<Triple>> {
        if self.failed {
            return None;
        }
        loop {
            let newline = self.buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| self.scanned + i);
            let line_bytes: Vec<u8> = match newline {
                Some(end) => {
                    let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                    line.pop();
                    self.scanned = 0;
                    line
                }
                None if self.finished && !self.buf.is_empty() => {
                    self.scanned = 0;
                    std::mem::take(&mut self.buf)
                }
                None => {
                    self.scanned = self.buf.len();
                    return None;
                }
            };
            self.line_no += 1;
            let line = match std::str::from_utf8(&line_bytes) {
                Ok(line) => line,
                Err(_) => {
                    self.failed = true;
                    return Some(Err(RdfError::parse(self.line_no, "invalid UTF-8 in input")));
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let parsed = parse_line(trimmed, self.line_no);
            if parsed.is_err() {
                self.failed = true;
            }
            return Some(parsed);
        }
    }
}

/// Parse a single N-Triples statement (without the trailing newline).
pub fn parse_line(line: &str, line_no: usize) -> Result<Triple> {
    let mut cursor = Cursor::new(line, line_no);
    cursor.skip_ws();
    let subject = cursor.parse_term()?;
    cursor.skip_ws();
    let predicate = cursor.parse_term()?;
    cursor.skip_ws();
    let object = cursor.parse_term()?;
    cursor.skip_ws();
    cursor.expect('.')?;
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(RdfError::parse(
            line_no,
            format!("trailing content after '.': {}", cursor.rest()),
        ));
    }
    Ok(Triple::new(subject, predicate, object))
}

/// Serialise a single triple as an N-Triples line (without trailing newline).
pub fn write_triple(triple: &Triple) -> String {
    format!(
        "{} {} {} .",
        write_term(&triple.subject),
        write_term(&triple.predicate),
        write_term(&triple.object)
    )
}

/// Serialise a term in N-Triples syntax.
pub fn write_term(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("<{iri}>"),
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(lit) => {
            let mut out = format!("\"{}\"", escape_literal(&lit.value));
            if let Some(lang) = &lit.language {
                out.push('@');
                out.push_str(lang);
            } else if let Some(dt) = &lit.datatype {
                out.push_str("^^<");
                out.push_str(dt);
                out.push('>');
            }
            out
        }
    }
}

/// Serialise a whole graph as an N-Triples document (sorted, deterministic).
pub fn write(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph.iter().map(|t| write_triple(&t)).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// A small character cursor over one statement.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line_no: usize,
    raw: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(raw: &'a str, line_no: usize) -> Self {
        Cursor {
            chars: raw.chars().collect(),
            pos: 0,
            line_no,
            raw,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn rest(&self) -> String {
        self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .collect()
    }

    fn expect(&mut self, expected: char) -> Result<()> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(RdfError::parse(
                self.line_no,
                format!("expected '{expected}' but found '{c}' in: {}", self.raw),
            )),
            None => Err(RdfError::parse(
                self.line_no,
                format!(
                    "expected '{expected}' but reached end of line: {}",
                    self.raw
                ),
            )),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            Some(c) => Err(RdfError::parse(
                self.line_no,
                format!(
                    "unexpected character '{c}' at start of term in: {}",
                    self.raw
                ),
            )),
            None => Err(RdfError::parse(
                self.line_no,
                format!("unexpected end of line, expected a term in: {}", self.raw),
            )),
        }
    }

    fn parse_iri(&mut self) -> Result<Term> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some(c) => iri.push(c),
                None => {
                    return Err(RdfError::parse(
                        self.line_no,
                        format!("unterminated IRI in: {}", self.raw),
                    ))
                }
            }
        }
        if iri.is_empty() {
            return Err(RdfError::InvalidIri("<>".to_string()));
        }
        Ok(Term::Iri(iri))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        // Unwrap-free scan: `peek` both guards and yields the char, so
        // EOF mid-token simply ends the loop.
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                break;
            }
            self.bump();
            label.push(c);
        }
        if label.is_empty() {
            return Err(RdfError::parse(
                self.line_no,
                format!("empty blank node label in: {}", self.raw),
            ));
        }
        Ok(Term::Blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        self.expect('"')?;
        let mut raw = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    raw.push('\\');
                    match self.bump() {
                        Some(c) => raw.push(c),
                        None => {
                            return Err(RdfError::InvalidLiteral(format!(
                                "dangling escape in: {}",
                                self.raw
                            )))
                        }
                    }
                }
                Some('"') => break,
                Some(c) => raw.push(c),
                None => {
                    return Err(RdfError::InvalidLiteral(format!(
                        "unterminated literal in: {}",
                        self.raw
                    )))
                }
            }
        }
        let value = unescape_literal(&raw);
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if !(c.is_alphanumeric() || c == '-') {
                        break;
                    }
                    self.bump();
                    lang.push(c);
                }
                if lang.is_empty() {
                    return Err(RdfError::InvalidLiteral(format!(
                        "empty language tag in: {}",
                        self.raw
                    )));
                }
                Ok(Term::Literal(Literal::lang(value, lang)))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let dt = self.parse_iri()?;
                let dt_iri = dt.as_iri().expect("parse_iri returns IRIs").to_string();
                Ok(Term::Literal(Literal::typed(value, dt_iri)))
            }
            _ => Ok(Term::Literal(Literal::plain(value))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_simple_document() {
        let doc = r#"
# a comment
<http://e.org/p1> <http://e.org/v#pn> "CRCW0805-10K" .
<http://e.org/p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e.org/cls#Resistor> .

<http://e.org/p2> <http://e.org/v#label> "10 kΩ resistor"@en .
<http://e.org/p2> <http://e.org/v#value> "10000"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://e.org/v#note> "blank subject" .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn parse_literal_with_escapes() {
        let line = r#"<http://e.org/a> <http://e.org/p> "line1\nline2 \"quoted\"" ."#;
        let t = parse_line(line, 1).unwrap();
        assert_eq!(t.object.value_str(), "line1\nline2 \"quoted\"");
    }

    #[test]
    fn parse_errors_are_reported_with_line() {
        let doc = "<http://e.org/a> <http://e.org/p> \"v\" .\nnot a triple";
        let err = parse(doc).unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(parse_line("<http://a> <http://p> \"v\"", 1).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_line("<http://a> <http://p> \"v\" . junk", 1).is_err());
    }

    #[test]
    fn unterminated_iri_and_literal() {
        assert!(parse_line("<http://a <http://p> \"v\" .", 1).is_err());
        assert!(parse_line("<http://a> <http://p> \"v .", 1).is_err());
        assert!(parse_line("<http://a> <http://p> \"v\"@ .", 1).is_err());
        assert!(parse_line("<> <http://p> \"v\" .", 1).is_err());
        assert!(parse_line("_: <http://p> \"v\" .", 1).is_err());
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let mut g = Graph::new();
        g.insert(Triple::literal("http://e.org/a", "http://e.org/p", "plain"));
        g.insert(Triple::new(
            Term::iri("http://e.org/a"),
            Term::iri("http://e.org/q"),
            Term::lang_literal("étiquette", "fr"),
        ));
        g.insert(Triple::new(
            Term::iri("http://e.org/a"),
            Term::iri("http://e.org/r"),
            Term::typed_literal("3.5", crate::namespace::vocab::XSD_DECIMAL),
        ));
        g.insert(Triple::new(
            Term::blank("b1"),
            Term::iri("http://e.org/p"),
            Term::literal("with \"quotes\" and \\slashes\\"),
        ));
        let doc = write(&g);
        let g2 = parse(&doc).unwrap();
        assert_eq!(g2.len(), g.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing after roundtrip: {t}");
        }
    }

    #[test]
    fn write_is_deterministic_and_sorted() {
        let mut g = Graph::new();
        g.insert(Triple::literal("http://e.org/b", "http://e.org/p", "2"));
        g.insert(Triple::literal("http://e.org/a", "http://e.org/p", "1"));
        let out = write(&g);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0] < lines[1]);
        assert_eq!(out, write(&g));
    }

    #[test]
    fn empty_graph_writes_empty_string() {
        assert_eq!(write(&Graph::new()), "");
        assert_eq!(parse("").unwrap().len(), 0);
    }

    #[test]
    fn streamer_handles_mid_utf8_chunk_splits() {
        let doc = "<http://e.org/a> <http://e.org/p> \"10 kΩ – résistance\" .\n\
                   <http://e.org/b> <http://e.org/p> \"élément\"@fr .\n";
        let bytes = doc.as_bytes();
        // Split inside the multi-byte 'Ω' and inside 'é'.
        for split in 1..bytes.len() {
            let mut streamer = NTriplesStreamer::new();
            streamer.feed(&bytes[..split]);
            streamer.feed(&bytes[split..]);
            streamer.finish();
            let mut triples = Vec::new();
            while let Some(t) = streamer.next_triple() {
                triples.push(t.unwrap());
            }
            assert_eq!(triples.len(), 2, "split at byte {split}");
            assert_eq!(triples[0].object.value_str(), "10 kΩ – résistance");
        }
    }

    #[test]
    fn streamer_buffer_stays_bounded_when_drained() {
        let line = "<http://e.org/a> <http://e.org/p> \"v\" .\n";
        let mut streamer = NTriplesStreamer::new();
        let mut emitted = 0;
        for _ in 0..1000 {
            streamer.feed(line.as_bytes());
            while let Some(t) = streamer.next_triple() {
                t.unwrap();
                emitted += 1;
            }
            assert!(
                streamer.buffered_bytes() < 2 * line.len(),
                "buffer grew past one line: {}",
                streamer.buffered_bytes()
            );
        }
        streamer.finish();
        assert!(streamer.next_triple().is_none());
        assert_eq!(emitted, 1000);
    }

    #[test]
    fn streamer_reports_errors_with_global_line_numbers_and_poisons() {
        let mut streamer = NTriplesStreamer::new();
        streamer.feed(b"<http://e.org/a> <http://e.org/p> \"v\" .\n");
        streamer.feed(b"not a triple\n<http://e.org/b> <http://e.org/p> \"w\" .\n");
        streamer.finish();
        assert!(streamer.next_triple().unwrap().is_ok());
        match streamer.next_triple().unwrap().unwrap_err() {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
        // Poisoned after the first error, like batch parse aborting.
        assert!(streamer.next_triple().is_none());
    }

    proptest! {
        /// Any plain-literal triple with printable content must round-trip
        /// through write → parse unchanged.
        #[test]
        fn prop_literal_roundtrip(value in "[ -~]{0,40}", local in "[a-zA-Z][a-zA-Z0-9]{0,10}") {
            let t = Triple::new(
                Term::iri(format!("http://e.org/{local}")),
                Term::iri("http://e.org/p"),
                Term::literal(value.clone()),
            );
            let line = write_triple(&t);
            let back = parse_line(&line, 1).unwrap();
            prop_assert_eq!(back, t);
        }

        /// Escaping never loses information for arbitrary unicode strings.
        #[test]
        fn prop_escape_roundtrip(value in "\\PC{0,60}") {
            let escaped = escape_literal(&value);
            let back = unescape_literal(&escaped);
            prop_assert_eq!(back, value);
        }
    }
}
