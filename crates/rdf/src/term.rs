//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms are the building blocks of triples. The representation here is
//! deliberately simple (owned `String`s); the [`crate::dictionary`] module is
//! responsible for interning them into compact ids when large graphs are
//! stored.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// A literal value: lexical form plus optional datatype IRI or language tag.
///
/// Following RDF 1.1, a literal has exactly one of:
/// * a plain string value (implicitly `xsd:string`),
/// * a language-tagged string value,
/// * a typed value with an explicit datatype IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Literal {
    /// The lexical form of the literal.
    pub value: String,
    /// Optional language tag (mutually exclusive with `datatype`).
    pub language: Option<String>,
    /// Optional datatype IRI (mutually exclusive with `language`).
    pub datatype: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn plain(value: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            language: None,
            datatype: None,
        }
    }

    /// A language-tagged string literal, e.g. `"Widerstand"@de`.
    pub fn lang(value: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            language: Some(language.into()),
            datatype: None,
        }
    }

    /// A typed literal, e.g. `"42"^^xsd:integer`.
    pub fn typed(value: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            language: None,
            datatype: Some(datatype.into()),
        }
    }

    /// Attempt to interpret the lexical form as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        self.value.trim().parse::<f64>().ok()
    }

    /// Attempt to interpret the lexical form as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        self.value.trim().parse::<i64>().ok()
    }

    /// Attempt to interpret the lexical form as a boolean (`true`/`false`/`1`/`0`).
    pub fn as_bool(&self) -> Option<bool> {
        match self.value.trim() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.value))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// Escape a literal's lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> Cow<'_, str> {
    if !s
        .chars()
        .any(|c| matches!(c, '"' | '\\' | '\n' | '\r' | '\t'))
    {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Unescape a literal's lexical form read from N-Triples/Turtle input.
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Ok(cp) = u32::from_str_radix(&hex, 16) {
                    if let Some(ch) = char::from_u32(cp) {
                        out.push(ch);
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// An RDF term: IRI, blank node or literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// An IRI reference, stored without surrounding angle brackets.
    Iri(String),
    /// A blank node, stored without the leading `_:`.
    Blank(String),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Construct a blank-node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// Construct a plain literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(value))
    }

    /// Construct a typed literal term.
    pub fn typed_literal(value: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal(Literal::typed(value, datatype))
    }

    /// Construct a language-tagged literal term.
    pub fn lang_literal(value: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal(Literal::lang(value, lang))
    }

    /// `true` if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// `true` if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// `true` if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The lexical value for literals, the IRI for IRIs, the label for blanks.
    ///
    /// This is the "value string" used by the segmentation layer: the paper
    /// segments property *values*, and in practice those are literal lexical
    /// forms, but falling back to IRIs keeps the API total.
    pub fn value_str(&self) -> &str {
        match self {
            Term::Iri(s) => s,
            Term::Blank(s) => s,
            Term::Literal(l) => &l.value,
        }
    }

    /// The local name of an IRI (substring after the last `#` or `/`).
    /// Returns the full string for non-IRI terms.
    pub fn local_name(&self) -> &str {
        match self {
            Term::Iri(s) => s
                .rsplit_once('#')
                .map(|(_, l)| l)
                .or_else(|| s.rsplit_once('/').map(|(_, l)| l))
                .unwrap_or(s),
            Term::Blank(s) => s,
            Term::Literal(l) => &l.value,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literal_display() {
        let l = Literal::plain("ohm");
        assert_eq!(l.to_string(), "\"ohm\"");
    }

    #[test]
    fn lang_literal_display() {
        let l = Literal::lang("resistance", "en");
        assert_eq!(l.to_string(), "\"resistance\"@en");
    }

    #[test]
    fn typed_literal_display() {
        let l = Literal::typed("42", "http://www.w3.org/2001/XMLSchema#integer");
        assert_eq!(
            l.to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn literal_numeric_conversions() {
        assert_eq!(Literal::plain("42").as_i64(), Some(42));
        assert_eq!(Literal::plain(" 3.5 ").as_f64(), Some(3.5));
        assert_eq!(Literal::plain("abc").as_i64(), None);
        assert_eq!(Literal::plain("true").as_bool(), Some(true));
        assert_eq!(Literal::plain("0").as_bool(), Some(false));
        assert_eq!(Literal::plain("maybe").as_bool(), None);
    }

    #[test]
    fn escape_and_unescape_roundtrip() {
        let original = "a \"quoted\"\nvalue with \\ and\ttab";
        let escaped = escape_literal(original);
        assert!(!escaped.contains('\n'));
        let back = unescape_literal(&escaped);
        assert_eq!(back, original);
    }

    #[test]
    fn escape_borrows_when_clean() {
        match escape_literal("nothing special") {
            Cow::Borrowed(_) => {}
            Cow::Owned(_) => panic!("expected borrowed"),
        }
    }

    #[test]
    fn unescape_unicode_escape() {
        assert_eq!(unescape_literal("caf\\u00e9"), "café");
    }

    #[test]
    fn unescape_trailing_backslash_is_kept() {
        assert_eq!(unescape_literal("x\\"), "x\\");
    }

    #[test]
    fn term_constructors_and_predicates() {
        let iri = Term::iri("http://example.org/a");
        let blank = Term::blank("b0");
        let lit = Term::literal("v");
        assert!(iri.is_iri() && !iri.is_blank() && !iri.is_literal());
        assert!(blank.is_blank());
        assert!(lit.is_literal());
        assert_eq!(iri.as_iri(), Some("http://example.org/a"));
        assert_eq!(blank.as_iri(), None);
        assert_eq!(lit.as_literal().unwrap().value, "v");
    }

    #[test]
    fn term_display_forms() {
        assert_eq!(Term::iri("http://e.org/x").to_string(), "<http://e.org/x>");
        assert_eq!(Term::blank("n1").to_string(), "_:n1");
        assert_eq!(Term::literal("v").to_string(), "\"v\"");
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(
            Term::iri("http://e.org/vocab#partNumber").local_name(),
            "partNumber"
        );
        assert_eq!(Term::iri("http://e.org/prod/42").local_name(), "42");
        assert_eq!(Term::iri("urn:isbn:123").local_name(), "urn:isbn:123");
        assert_eq!(Term::literal("CRCW0805").local_name(), "CRCW0805");
    }

    #[test]
    fn value_str_for_each_variant() {
        assert_eq!(Term::iri("http://e.org/x").value_str(), "http://e.org/x");
        assert_eq!(Term::blank("b").value_str(), "b");
        assert_eq!(Term::literal("63V").value_str(), "63V");
    }

    #[test]
    fn term_ordering_is_total() {
        let mut terms = vec![
            Term::literal("b"),
            Term::iri("http://a"),
            Term::blank("z"),
            Term::literal("a"),
        ];
        terms.sort();
        // Sorting must not panic and must be stable w.r.t. equality.
        let mut again = terms.clone();
        again.sort();
        assert_eq!(terms, again);
    }
}
