//! Basic graph pattern (BGP) matching with variable bindings.
//!
//! The rule premises of the paper (`p(X, Y) ∧ subsegment(Y, a)`) need only a
//! tiny query capability over RDF data: conjunctive triple patterns with
//! shared variables. [`Query`] evaluates such patterns against a [`Graph`]
//! with a straightforward nested-loop join, iterating patterns in the order
//! given and substituting bindings as it goes.

use crate::graph::Graph;
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A query variable, identified by name (without the leading `?`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable(pub String);

impl Variable {
    /// Create a variable from a name; a leading `?` is stripped if present.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Variable(name.strip_prefix('?').unwrap_or(&name).to_string())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// One position of a triple pattern: either a constant term or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternTerm {
    /// A constant RDF term that must match exactly.
    Const(Term),
    /// A variable to be bound by matching.
    Var(Variable),
}

impl PatternTerm {
    /// A constant pattern term.
    pub fn term(t: Term) -> Self {
        PatternTerm::Const(t)
    }

    /// A variable pattern term.
    pub fn var(name: impl Into<String>) -> Self {
        PatternTerm::Var(Variable::new(name))
    }

    fn resolve<'a>(&'a self, binding: &'a Binding) -> Option<&'a Term> {
        match self {
            PatternTerm::Const(t) => Some(t),
            PatternTerm::Var(v) => binding.get(v),
        }
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Const(t) => write!(f, "{t}"),
            PatternTerm::Var(v) => write!(f, "{v}"),
        }
    }
}

/// A triple pattern `(s, p, o)` whose positions may be variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// Subject position.
    pub subject: PatternTerm,
    /// Predicate position.
    pub predicate: PatternTerm,
    /// Object position.
    pub object: PatternTerm,
}

impl Pattern {
    /// Create a pattern from three pattern terms.
    pub fn new(subject: PatternTerm, predicate: PatternTerm, object: PatternTerm) -> Self {
        Pattern {
            subject,
            predicate,
            object,
        }
    }

    /// Shorthand: `?s <predicate> ?o` with a constant predicate IRI.
    pub fn property(subject_var: &str, predicate_iri: &str, object_var: &str) -> Self {
        Pattern::new(
            PatternTerm::var(subject_var),
            PatternTerm::term(Term::iri(predicate_iri)),
            PatternTerm::var(object_var),
        )
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// A set of variable bindings produced by query evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    map: BTreeMap<Variable, Term>,
}

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &Variable) -> Option<&Term> {
        self.map.get(var)
    }

    /// The term bound to the variable with this name, if any.
    pub fn get_name(&self, name: &str) -> Option<&Term> {
        self.map.get(&Variable::new(name))
    }

    /// Bind `var` to `term`, returning `false` (and leaving the binding
    /// unchanged) if `var` is already bound to a different term.
    pub fn bind(&mut self, var: Variable, term: Term) -> bool {
        match self.map.get(&var) {
            Some(existing) => *existing == term,
            None => {
                self.map.insert(var, term);
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Term)> {
        self.map.iter()
    }
}

/// A conjunctive query: an ordered list of triple patterns.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    patterns: Vec<Pattern>,
}

impl Query {
    /// An empty query (matches exactly one empty binding).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pattern to the conjunction (builder style).
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.patterns.push(pattern);
        self
    }

    /// The patterns of this query.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Evaluate the query against `graph`, returning all bindings.
    ///
    /// Evaluation is a nested-loop join in pattern order: for each partial
    /// binding, the next pattern is instantiated (bound variables become
    /// constants) and matched against the graph indexes.
    pub fn execute(&self, graph: &Graph) -> Vec<Binding> {
        let mut bindings = vec![Binding::new()];
        for pattern in &self.patterns {
            let mut next = Vec::new();
            for binding in &bindings {
                let s = pattern.subject.resolve(binding).cloned();
                let p = pattern.predicate.resolve(binding).cloned();
                let o = pattern.object.resolve(binding).cloned();
                for triple in graph.triples_matching(s.as_ref(), p.as_ref(), o.as_ref()) {
                    let mut extended = binding.clone();
                    let ok_s = match &pattern.subject {
                        PatternTerm::Var(v) => extended.bind(v.clone(), triple.subject.clone()),
                        PatternTerm::Const(_) => true,
                    };
                    let ok_p = match &pattern.predicate {
                        PatternTerm::Var(v) => extended.bind(v.clone(), triple.predicate.clone()),
                        PatternTerm::Const(_) => true,
                    };
                    let ok_o = match &pattern.object {
                        PatternTerm::Var(v) => extended.bind(v.clone(), triple.object.clone()),
                        PatternTerm::Const(_) => true,
                    };
                    if ok_s && ok_p && ok_o {
                        next.push(extended);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        bindings
    }

    /// Evaluate and return only the distinct terms bound to `var`.
    pub fn select(&self, graph: &Graph, var: &str) -> Vec<Term> {
        let v = Variable::new(var);
        let mut out: Vec<Term> = self
            .execute(graph)
            .into_iter()
            .filter_map(|b| b.get(&v).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::vocab;
    use crate::triple::Triple;

    fn sample() -> Graph {
        let mut g = Graph::new();
        for (item, pn, class) in [
            ("http://e.org/p1", "CRCW0805-10K", "http://e.org/c#Resistor"),
            ("http://e.org/p2", "CRCW0805-22K", "http://e.org/c#Resistor"),
            (
                "http://e.org/p3",
                "T83A225K",
                "http://e.org/c#TantalumCapacitor",
            ),
        ] {
            g.insert(Triple::literal(item, "http://e.org/v#pn", pn));
            g.insert(Triple::iris(item, vocab::RDF_TYPE, class));
        }
        g
    }

    #[test]
    fn variable_name_strips_question_mark() {
        assert_eq!(Variable::new("?x"), Variable::new("x"));
        assert_eq!(Variable::new("x").to_string(), "?x");
    }

    #[test]
    fn empty_query_yields_one_empty_binding() {
        let g = sample();
        let results = Query::new().execute(&g);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_empty());
    }

    #[test]
    fn single_pattern_all_variables() {
        let g = sample();
        let q = Query::new().pattern(Pattern::new(
            PatternTerm::var("s"),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        ));
        assert_eq!(q.execute(&g).len(), 6);
    }

    #[test]
    fn property_pattern_binds_subject_and_value() {
        let g = sample();
        let q = Query::new().pattern(Pattern::property("x", "http://e.org/v#pn", "y"));
        let results = q.execute(&g);
        assert_eq!(results.len(), 3);
        for b in &results {
            assert!(b.get_name("x").unwrap().is_iri());
            assert!(b.get_name("y").unwrap().is_literal());
        }
    }

    #[test]
    fn join_on_shared_variable() {
        let g = sample();
        // x has part number AND x is a Resistor.
        let q = Query::new()
            .pattern(Pattern::property("x", "http://e.org/v#pn", "y"))
            .pattern(Pattern::new(
                PatternTerm::var("x"),
                PatternTerm::term(Term::iri(vocab::RDF_TYPE)),
                PatternTerm::term(Term::iri("http://e.org/c#Resistor")),
            ));
        let results = q.execute(&g);
        assert_eq!(results.len(), 2);
        let subjects = q.select(&g, "x");
        assert_eq!(subjects.len(), 2);
        assert!(subjects
            .iter()
            .all(|s| s.as_iri().unwrap() != "http://e.org/p3"));
    }

    #[test]
    fn join_with_no_result_short_circuits() {
        let g = sample();
        let q = Query::new()
            .pattern(Pattern::property("x", "http://e.org/v#unknown", "y"))
            .pattern(Pattern::property("x", "http://e.org/v#pn", "z"));
        assert!(q.execute(&g).is_empty());
    }

    #[test]
    fn repeated_variable_must_agree() {
        let mut g = Graph::new();
        g.insert(Triple::iris(
            "http://e.org/a",
            "http://e.org/p",
            "http://e.org/a",
        ));
        g.insert(Triple::iris(
            "http://e.org/a",
            "http://e.org/p",
            "http://e.org/b",
        ));
        // ?x p ?x — only the self-loop matches.
        let q = Query::new().pattern(Pattern::new(
            PatternTerm::var("x"),
            PatternTerm::term(Term::iri("http://e.org/p")),
            PatternTerm::var("x"),
        ));
        let results = q.execute(&g);
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get_name("x").unwrap().as_iri(),
            Some("http://e.org/a")
        );
    }

    #[test]
    fn select_deduplicates() {
        let g = sample();
        let q = Query::new().pattern(Pattern::new(
            PatternTerm::var("s"),
            PatternTerm::term(Term::iri(vocab::RDF_TYPE)),
            PatternTerm::var("class"),
        ));
        let classes = q.select(&g, "class");
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn binding_rejects_conflicting_rebind() {
        let mut b = Binding::new();
        assert!(b.bind(Variable::new("x"), Term::literal("a")));
        assert!(b.bind(Variable::new("x"), Term::literal("a")));
        assert!(!b.bind(Variable::new("x"), Term::literal("b")));
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().count(), 1);
    }

    #[test]
    fn display_forms() {
        let p = Pattern::property("x", "http://e.org/v#pn", "y");
        assert_eq!(p.to_string(), "?x <http://e.org/v#pn> ?y");
    }
}
