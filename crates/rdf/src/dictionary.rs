//! Term interning.
//!
//! Large RDF graphs repeat the same IRIs and literals many times. The
//! [`Dictionary`] maps each distinct [`Term`] to a compact [`TermId`] so the
//! graph indexes can store and compare 8-byte ids instead of whole terms.

use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compact identifier for an interned [`Term`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u64);

impl TermId {
    /// The raw integer value of the id.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A bidirectional map between [`Term`]s and [`TermId`]s.
///
/// Ids are assigned densely starting from 0, so they can double as vector
/// indexes (`id.0 as usize`).
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    term_to_id: HashMap<Term, TermId>,
    id_to_term: Vec<Term>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id. Repeated calls with an equal term
    /// return the same id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(id) = self.term_to_id.get(term) {
            return *id;
        }
        let id = TermId(self.id_to_term.len() as u64);
        self.term_to_id.insert(term.clone(), id);
        self.id_to_term.push(term.clone());
        id
    }

    /// Intern an owned term without cloning when it is new.
    pub fn intern_owned(&mut self, term: Term) -> TermId {
        if let Some(id) = self.term_to_id.get(&term) {
            return *id;
        }
        let id = TermId(self.id_to_term.len() as u64);
        self.term_to_id.insert(term.clone(), id);
        self.id_to_term.push(term);
        id
    }

    /// Look up the id of a term without interning it.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.term_to_id.get(term).copied()
    }

    /// Resolve an id back into its term.
    pub fn resolve(&self, id: TermId) -> Option<&Term> {
        self.id_to_term.get(id.0 as usize)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.id_to_term.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.id_to_term.is_empty()
    }

    /// Iterate over all interned terms in id order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.id_to_term
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = Term::iri("http://e.org/a");
        let id1 = d.intern(&a);
        let id2 = d.intern(&a);
        assert_eq!(id1, id2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = (0..10)
            .map(|i| d.intern(&Term::literal(format!("v{i}"))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.value(), i as u64);
            assert_eq!(d.resolve(*id).unwrap().value_str(), format!("v{i}"));
        }
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn get_does_not_intern() {
        let mut d = Dictionary::new();
        let t = Term::literal("x");
        assert_eq!(d.get(&t), None);
        assert!(d.is_empty());
        let id = d.intern(&t);
        assert_eq!(d.get(&t), Some(id));
    }

    #[test]
    fn resolve_unknown_id_is_none() {
        let d = Dictionary::new();
        assert!(d.resolve(TermId(99)).is_none());
    }

    #[test]
    fn intern_owned_matches_intern() {
        let mut d = Dictionary::new();
        let id1 = d.intern(&Term::literal("same"));
        let id2 = d.intern_owned(Term::literal("same"));
        let id3 = d.intern_owned(Term::literal("other"));
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
    }

    #[test]
    fn distinct_literal_forms_get_distinct_ids() {
        let mut d = Dictionary::new();
        let plain = d.intern(&Term::literal("42"));
        let typed = d.intern(&Term::typed_literal(
            "42",
            crate::namespace::vocab::XSD_INTEGER,
        ));
        let iri = d.intern(&Term::iri("42"));
        assert_ne!(plain, typed);
        assert_ne!(plain, iri);
        assert_ne!(typed, iri);
    }

    #[test]
    fn terms_iterator_is_in_id_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::literal("a"));
        d.intern(&Term::literal("b"));
        let collected: Vec<_> = d
            .terms()
            .map(|(id, t)| (id.value(), t.value_str().to_string()))
            .collect();
        assert_eq!(collected, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
