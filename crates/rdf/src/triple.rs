//! Triples: the atomic statements of an RDF graph.

use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An RDF triple `(subject, predicate, object)`.
///
/// The crate does not enforce the RDF restriction that predicates must be
/// IRIs or that literals may only appear in object position — the data the
/// paper works with never violates these, and keeping `Term` uniform makes
/// pattern matching simpler — but [`Triple::is_strictly_valid`] lets callers
/// check.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// The subject of the statement.
    pub subject: Term,
    /// The predicate (property) of the statement.
    pub predicate: Term,
    /// The object (value) of the statement.
    pub object: Term,
}

impl Triple {
    /// Create a new triple.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// Convenience constructor from IRI strings and a plain literal object.
    pub fn literal(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        Triple::new(
            Term::iri(subject),
            Term::iri(predicate),
            Term::literal(value),
        )
    }

    /// Convenience constructor from three IRI strings.
    pub fn iris(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Self {
        Triple::new(Term::iri(subject), Term::iri(predicate), Term::iri(object))
    }

    /// `true` when the triple respects the RDF 1.1 positional constraints:
    /// subject is IRI or blank, predicate is an IRI, object is anything.
    pub fn is_strictly_valid(&self) -> bool {
        (self.subject.is_iri() || self.subject.is_blank()) && self.predicate.is_iri()
    }

    /// Borrow the three components as a tuple.
    pub fn as_tuple(&self) -> (&Term, &Term, &Term) {
        (&self.subject, &self.predicate, &self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_display_is_ntriples_like() {
        let t = Triple::literal("http://e.org/p1", "http://e.org/vocab#pn", "T83-22uF");
        assert_eq!(
            t.to_string(),
            "<http://e.org/p1> <http://e.org/vocab#pn> \"T83-22uF\" ."
        );
    }

    #[test]
    fn strict_validity() {
        let ok = Triple::iris("http://e.org/a", "http://e.org/p", "http://e.org/b");
        assert!(ok.is_strictly_valid());
        let blank_subject = Triple::new(
            Term::blank("b0"),
            Term::iri("http://e.org/p"),
            Term::literal("x"),
        );
        assert!(blank_subject.is_strictly_valid());
        let literal_subject = Triple::new(
            Term::literal("oops"),
            Term::iri("http://e.org/p"),
            Term::literal("x"),
        );
        assert!(!literal_subject.is_strictly_valid());
        let literal_predicate = Triple::new(
            Term::iri("http://e.org/a"),
            Term::literal("oops"),
            Term::literal("x"),
        );
        assert!(!literal_predicate.is_strictly_valid());
    }

    #[test]
    fn as_tuple_borrows_components() {
        let t = Triple::iris("http://e.org/a", "http://e.org/p", "http://e.org/b");
        let (s, p, o) = t.as_tuple();
        assert_eq!(s.as_iri(), Some("http://e.org/a"));
        assert_eq!(p.as_iri(), Some("http://e.org/p"));
        assert_eq!(o.as_iri(), Some("http://e.org/b"));
    }

    #[test]
    fn triples_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = Triple::literal("http://e.org/1", "http://e.org/p", "a");
        let b = Triple::literal("http://e.org/1", "http://e.org/p", "b");
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
        assert!(a < b);
    }
}
