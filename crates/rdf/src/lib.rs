//! # classilink-rdf
//!
//! A minimal, dependency-light, in-memory RDF substrate used by the
//! `classilink` workspace (a reproduction of *"Classification Rule Learning
//! for Data Linking"*, Pernelle & Saïs, LWDM @ EDBT 2012).
//!
//! The paper operates on two RDF data sources: a **local** source `SL`
//! described by an OWL ontology, and an **external** source `SE` whose schema
//! is unknown. This crate provides everything the rest of the workspace needs
//! to represent and query such sources:
//!
//! * [`term`] — IRIs, blank nodes, plain/typed/language-tagged literals.
//! * [`dictionary`] — string interning so that triples are stored as compact
//!   integer ids.
//! * [`graph`] — an indexed in-memory triple store with SPO/POS/OSP indexes
//!   and triple-pattern iteration.
//! * [`dataset`] — a provenance-aware collection of graphs (the paper stores
//!   linked pairs "with their provenance information (external or local)").
//! * [`ntriples`] / [`turtle`] — parsers and serialisers for N-Triples and a
//!   pragmatic Turtle subset.
//! * [`query`] — basic-graph-pattern matching with variable bindings, enough
//!   to evaluate rule premises such as `p(X, Y)`.
//!
//! ## Quick example
//!
//! ```
//! use classilink_rdf::{Graph, Term, Triple};
//!
//! let mut g = Graph::new();
//! let s = Term::iri("http://example.org/prod/1");
//! let p = Term::iri("http://example.org/vocab#partNumber");
//! let o = Term::literal("CRCW0805-10K");
//! g.insert(Triple::new(s.clone(), p.clone(), o.clone()));
//!
//! assert_eq!(g.len(), 1);
//! let found: Vec<_> = g.triples_matching(Some(&s), None, None).collect();
//! assert_eq!(found.len(), 1);
//! ```

pub mod dataset;
pub mod dictionary;
pub mod error;
pub mod graph;
pub mod namespace;
pub mod ntriples;
pub mod query;
pub mod term;
pub mod triple;
pub mod turtle;

pub use dataset::{Dataset, Source};
pub use dictionary::{Dictionary, TermId};
pub use error::{RdfError, Result};
pub use graph::Graph;
pub use namespace::{Namespaces, OWL, RDF, RDFS, XSD};
pub use ntriples::NTriplesStreamer;
pub use query::{Binding, Pattern, PatternTerm, Query, Variable};
pub use term::{Literal, Term};
pub use triple::Triple;
pub use turtle::TurtleStreamer;
