//! Error types for the RDF substrate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RdfError>;

/// Errors raised while parsing, building or querying RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error encountered while parsing a serialisation format.
    Parse {
        /// 1-based line number where the error was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An IRI did not have the expected shape (e.g. empty, unbalanced angle
    /// brackets).
    InvalidIri(String),
    /// A literal was malformed (e.g. missing closing quote).
    InvalidLiteral(String),
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// A term id was not present in the dictionary it was resolved against.
    UnknownTermId(u64),
    /// A query used a variable in a position where it is not supported.
    InvalidQuery(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RdfError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            RdfError::InvalidLiteral(lit) => write!(f, "invalid literal: {lit}"),
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            RdfError::UnknownTermId(id) => write!(f, "unknown term id: {id}"),
            RdfError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl RdfError {
    /// Helper for constructing a [`RdfError::Parse`] error.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            line,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = RdfError::parse(3, "unexpected end of line");
        assert_eq!(
            e.to_string(),
            "parse error at line 3: unexpected end of line"
        );
    }

    #[test]
    fn display_other_variants() {
        assert!(RdfError::InvalidIri("x".into())
            .to_string()
            .contains("invalid IRI"));
        assert!(RdfError::InvalidLiteral("x".into())
            .to_string()
            .contains("invalid literal"));
        assert!(RdfError::UnknownPrefix("ex".into())
            .to_string()
            .contains("unknown prefix"));
        assert!(RdfError::UnknownTermId(7).to_string().contains("7"));
        assert!(RdfError::InvalidQuery("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RdfError::InvalidIri("x".into()));
    }
}
