//! Provenance-aware datasets.
//!
//! The paper assumes two RDF sources: the **local** catalog `SL` (described by
//! the ontology `OL`) and an **external** provider document `SE` whose schema
//! is unknown. The training set of `same-as` links is stored "with their
//! provenance information (external or local)". [`Dataset`] models exactly
//! this: one graph per [`Source`], plus a dedicated link graph.

use crate::graph::Graph;
use crate::namespace::vocab;
use crate::term::Term;
use crate::triple::Triple;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The provenance of a data item: the local catalog or an external provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// The local data source `SL`, conforming to the local ontology `OL`.
    Local,
    /// The external data source `SE`, whose schema is unknown.
    External,
}

impl Source {
    /// The other source.
    pub fn other(self) -> Source {
        match self {
            Source::Local => Source::External,
            Source::External => Source::Local,
        }
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Local => write!(f, "local"),
            Source::External => write!(f, "external"),
        }
    }
}

/// A pair of provenance-tagged graphs plus the `same-as` link graph between
/// them.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    local: Graph,
    external: Graph,
    links: Graph,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a dataset from pre-existing graphs.
    pub fn from_graphs(local: Graph, external: Graph) -> Self {
        Dataset {
            local,
            external,
            links: Graph::new(),
        }
    }

    /// The graph holding data of the given source.
    pub fn graph(&self, source: Source) -> &Graph {
        match source {
            Source::Local => &self.local,
            Source::External => &self.external,
        }
    }

    /// Mutable access to the graph holding data of the given source.
    pub fn graph_mut(&mut self, source: Source) -> &mut Graph {
        match source {
            Source::Local => &mut self.local,
            Source::External => &mut self.external,
        }
    }

    /// The local graph `SL`.
    pub fn local(&self) -> &Graph {
        &self.local
    }

    /// The external graph `SE`.
    pub fn external(&self) -> &Graph {
        &self.external
    }

    /// The graph of `owl:sameAs` links between external and local items.
    pub fn links(&self) -> &Graph {
        &self.links
    }

    /// Insert a triple into the graph of the given source. Returns `true` if
    /// it was new.
    pub fn insert(&mut self, source: Source, triple: Triple) -> bool {
        self.graph_mut(source).insert(triple)
    }

    /// Declare a `same-as` link between an external item and a local item.
    ///
    /// The convention throughout the workspace is `external owl:sameAs local`.
    pub fn link(&mut self, external_item: &Term, local_item: &Term) -> bool {
        self.links.insert(Triple::new(
            external_item.clone(),
            Term::iri(vocab::OWL_SAME_AS),
            local_item.clone(),
        ))
    }

    /// Iterate over `(external, local)` pairs of declared links.
    pub fn link_pairs(&self) -> impl Iterator<Item = (Term, Term)> + '_ {
        self.links
            .triples_matching(None, Some(&Term::iri(vocab::OWL_SAME_AS)), None)
            .map(|t| (t.subject, t.object))
    }

    /// Number of declared links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The local item linked to `external_item`, if any.
    pub fn linked_local(&self, external_item: &Term) -> Option<Term> {
        self.links
            .object_of(external_item, &Term::iri(vocab::OWL_SAME_AS))
    }

    /// Total number of triples across the local and external graphs
    /// (links excluded).
    pub fn triple_count(&self) -> usize {
        self.local.len() + self.external.len()
    }

    /// Number of distinct subjects (data items) in the given source.
    pub fn item_count(&self, source: Source) -> usize {
        self.graph(source).subjects().len()
    }

    /// The size of the naive linking space `|SE| × |SL|` — the quantity the
    /// paper's classification rules are designed to shrink.
    pub fn naive_linking_space(&self) -> u64 {
        self.item_count(Source::External) as u64 * self.item_count(Source::Local) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(n: u32, src: Source) -> Term {
        match src {
            Source::Local => Term::iri(format!("http://local.example.org/prod/{n}")),
            Source::External => Term::iri(format!("http://provider.example.org/item/{n}")),
        }
    }

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        for n in 0..3 {
            ds.insert(
                Source::Local,
                Triple::new(
                    item(n, Source::Local),
                    Term::iri("http://local.example.org/v#pn"),
                    Term::literal(format!("PN-{n}")),
                ),
            );
        }
        for n in 0..2 {
            ds.insert(
                Source::External,
                Triple::new(
                    item(n, Source::External),
                    Term::iri("http://provider.example.org/v#ref"),
                    Term::literal(format!("PN-{n}")),
                ),
            );
        }
        ds.link(&item(0, Source::External), &item(0, Source::Local));
        ds.link(&item(1, Source::External), &item(1, Source::Local));
        ds
    }

    #[test]
    fn source_other_and_display() {
        assert_eq!(Source::Local.other(), Source::External);
        assert_eq!(Source::External.other(), Source::Local);
        assert_eq!(Source::Local.to_string(), "local");
        assert_eq!(Source::External.to_string(), "external");
    }

    #[test]
    fn graphs_are_separate() {
        let ds = sample();
        assert_eq!(ds.local().len(), 3);
        assert_eq!(ds.external().len(), 2);
        assert_eq!(ds.triple_count(), 5);
    }

    #[test]
    fn item_counts_and_naive_space() {
        let ds = sample();
        assert_eq!(ds.item_count(Source::Local), 3);
        assert_eq!(ds.item_count(Source::External), 2);
        assert_eq!(ds.naive_linking_space(), 6);
    }

    #[test]
    fn links_are_recorded_with_direction() {
        let ds = sample();
        assert_eq!(ds.link_count(), 2);
        let pairs: Vec<_> = ds.link_pairs().collect();
        assert_eq!(pairs.len(), 2);
        for (ext, loc) in pairs {
            assert!(ext.as_iri().unwrap().contains("provider"));
            assert!(loc.as_iri().unwrap().contains("local"));
        }
        assert_eq!(
            ds.linked_local(&item(0, Source::External)),
            Some(item(0, Source::Local))
        );
        assert_eq!(ds.linked_local(&item(2, Source::External)), None);
    }

    #[test]
    fn duplicate_links_are_ignored() {
        let mut ds = sample();
        assert!(!ds.link(&item(0, Source::External), &item(0, Source::Local)));
        assert_eq!(ds.link_count(), 2);
    }

    #[test]
    fn from_graphs_starts_with_no_links() {
        let ds = Dataset::from_graphs(Graph::new(), Graph::new());
        assert_eq!(ds.link_count(), 0);
        assert_eq!(ds.naive_linking_space(), 0);
    }

    #[test]
    fn graph_mut_allows_insertion() {
        let mut ds = Dataset::new();
        ds.graph_mut(Source::External).insert(Triple::literal(
            "http://provider.example.org/item/9",
            "http://provider.example.org/v#ref",
            "X-1",
        ));
        assert_eq!(ds.external().len(), 1);
        assert_eq!(ds.local().len(), 0);
    }
}
