//! An indexed in-memory triple store.
//!
//! [`Graph`] interns terms through a [`Dictionary`] and maintains three
//! B-tree indexes (SPO, POS, OSP) so that any triple pattern with a bound
//! prefix can be answered with a range scan:
//!
//! * `(s, ?, ?)`, `(s, p, ?)`, `(s, p, o)` → SPO index,
//! * `(?, p, ?)`, `(?, p, o)` → POS index,
//! * `(?, ?, o)`, `(s, ?, o)` → OSP index (with a post-filter for `s`).
//!
//! This is the storage substrate for both the local catalog `SL` and the
//! external source `SE` of the paper.

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;
use crate::triple::Triple;
use std::collections::BTreeSet;

type Key = (TermId, TermId, TermId);

/// An in-memory RDF graph with SPO / POS / OSP indexes.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    dict: Dictionary,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples stored.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// `true` when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms interned by this graph.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Access the underlying dictionary (read-only).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Insert a triple. Returns `true` if the triple was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.dict.intern_owned(triple.subject);
        let p = self.dict.intern_owned(triple.predicate);
        let o = self.dict.intern_owned(triple.object);
        self.insert_ids(s, p, o)
    }

    /// Insert a triple given by references (clones only when the term is new).
    pub fn insert_ref(&mut self, subject: &Term, predicate: &Term, object: &Term) -> bool {
        let s = self.dict.intern(subject);
        let p = self.dict.intern(predicate);
        let o = self.dict.intern(object);
        self.insert_ids(s, p, o)
    }

    fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let newly = self.spo.insert((s, p, o));
        if newly {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        newly
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.get(&triple.subject),
            self.dict.get(&triple.predicate),
            self.dict.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// `true` if the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.dict.get(&triple.subject),
            self.dict.get(&triple.predicate),
            self.dict.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Remove every triple (the dictionary is kept).
    pub fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
    }

    fn resolve(&self, key: Key, order: IndexOrder) -> Triple {
        let (a, b, c) = key;
        let (s, p, o) = match order {
            IndexOrder::Spo => (a, b, c),
            IndexOrder::Pos => (c, a, b),
            IndexOrder::Osp => (b, c, a),
        };
        Triple::new(
            self.dict.resolve(s).expect("dangling subject id").clone(),
            self.dict.resolve(p).expect("dangling predicate id").clone(),
            self.dict.resolve(o).expect("dangling object id").clone(),
        )
    }

    /// Iterate over every triple in the graph (SPO order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|k| self.resolve(*k, IndexOrder::Spo))
    }

    /// Iterate over triples matching the given pattern. `None` components act
    /// as wildcards.
    ///
    /// Unknown terms (never interned by this graph) simply yield an empty
    /// iterator.
    pub fn triples_matching<'a>(
        &'a self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        // Resolve bound terms to ids; a bound term that is unknown means no match.
        let s = match subject {
            Some(t) => match self.dict.get(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let p = match predicate {
            Some(t) => match self.dict.get(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.dict.get(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        self.triples_matching_ids(s, p, o)
    }

    fn triples_matching_ids<'a>(
        &'a self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        const MIN: TermId = TermId(0);
        const MAX: TermId = TermId(u64::MAX);
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let key = (s, p, o);
                let present = self.spo.contains(&key);
                Box::new(
                    present
                        .then(|| self.resolve(key, IndexOrder::Spo))
                        .into_iter(),
                )
            }
            (Some(s), Some(p), None) => Box::new(
                self.spo
                    .range((s, p, MIN)..=(s, p, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Spo)),
            ),
            (Some(s), None, None) => Box::new(
                self.spo
                    .range((s, MIN, MIN)..=(s, MAX, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Spo)),
            ),
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((p, o, MIN)..=(p, o, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Pos)),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((p, MIN, MIN)..=(p, MAX, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Pos)),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((o, MIN, MIN)..=(o, MAX, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Osp)),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((o, s, MIN)..=(o, s, MAX))
                    .map(move |k| self.resolve(*k, IndexOrder::Osp)),
            ),
            (None, None, None) => Box::new(self.iter()),
        }
    }

    /// All subjects that have `predicate` → `object`.
    pub fn subjects_with(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.triples_matching(None, Some(predicate), Some(object))
            .map(|t| t.subject)
            .collect()
    }

    /// All objects of `subject` → `predicate`.
    pub fn objects_of(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .map(|t| t.object)
            .collect()
    }

    /// The first object of `subject` → `predicate`, if any.
    pub fn object_of(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.triples_matching(Some(subject), Some(predicate), None)
            .map(|t| t.object)
            .next()
    }

    /// The set of distinct subjects in the graph.
    pub fn subjects(&self) -> Vec<Term> {
        let mut last: Option<TermId> = None;
        let mut out = Vec::new();
        for (s, _, _) in self.spo.iter() {
            if last != Some(*s) {
                out.push(self.dict.resolve(*s).expect("dangling subject id").clone());
                last = Some(*s);
            }
        }
        out
    }

    /// The set of distinct predicates in the graph.
    pub fn predicates(&self) -> Vec<Term> {
        let mut seen = BTreeSet::new();
        for (p, _, _) in self.pos.iter() {
            seen.insert(*p);
        }
        seen.iter()
            .map(|p| {
                self.dict
                    .resolve(*p)
                    .expect("dangling predicate id")
                    .clone()
            })
            .collect()
    }

    /// Merge all triples of `other` into `self`, returning how many were new.
    pub fn extend_from(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t) {
                added += 1;
            }
        }
        added
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[derive(Clone, Copy)]
enum IndexOrder {
    Spo,
    Pos,
    Osp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::literal(
            "http://e.org/p1",
            "http://e.org/v#pn",
            "CRCW0805-10K",
        ));
        g.insert(Triple::literal(
            "http://e.org/p1",
            "http://e.org/v#mfr",
            "Vishay",
        ));
        g.insert(Triple::literal(
            "http://e.org/p2",
            "http://e.org/v#pn",
            "T83-22uF",
        ));
        g.insert(Triple::iris(
            "http://e.org/p1",
            crate::namespace::vocab::RDF_TYPE,
            "http://e.org/cls#FixedFilmResistor",
        ));
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        let t = Triple::literal("http://e.org/a", "http://e.org/p", "v");
        assert!(g.insert(t.clone()));
        assert!(!g.insert(t.clone()));
        assert_eq!(g.len(), 1);
        assert!(g.contains(&t));
    }

    #[test]
    fn remove_and_contains() {
        let mut g = sample();
        let t = Triple::literal("http://e.org/p1", "http://e.org/v#mfr", "Vishay");
        assert!(g.contains(&t));
        assert!(g.remove(&t));
        assert!(!g.contains(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn remove_unknown_term_is_noop() {
        let mut g = sample();
        let t = Triple::literal("http://nowhere.org/x", "http://e.org/v#pn", "zzz");
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn pattern_sp_wildcard_object() {
        let g = sample();
        let found: Vec<_> = g
            .triples_matching(
                Some(&Term::iri("http://e.org/p1")),
                Some(&Term::iri("http://e.org/v#pn")),
                None,
            )
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].object.value_str(), "CRCW0805-10K");
    }

    #[test]
    fn pattern_p_only() {
        let g = sample();
        let found: Vec<_> = g
            .triples_matching(None, Some(&Term::iri("http://e.org/v#pn")), None)
            .collect();
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn pattern_object_only() {
        let g = sample();
        let found: Vec<_> = g
            .triples_matching(None, None, Some(&Term::literal("Vishay")))
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].subject.as_iri(), Some("http://e.org/p1"));
    }

    #[test]
    fn pattern_subject_object() {
        let g = sample();
        let found: Vec<_> = g
            .triples_matching(
                Some(&Term::iri("http://e.org/p1")),
                None,
                Some(&Term::literal("Vishay")),
            )
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].predicate.as_iri(), Some("http://e.org/v#mfr"));
    }

    #[test]
    fn pattern_with_unknown_term_is_empty() {
        let g = sample();
        let found: Vec<_> = g
            .triples_matching(Some(&Term::iri("http://unknown.org/x")), None, None)
            .collect();
        assert!(found.is_empty());
    }

    #[test]
    fn fully_bound_pattern() {
        let g = sample();
        let t = Triple::literal("http://e.org/p2", "http://e.org/v#pn", "T83-22uF");
        let found: Vec<_> = g
            .triples_matching(Some(&t.subject), Some(&t.predicate), Some(&t.object))
            .collect();
        assert_eq!(found.len(), 1);
        let missing: Vec<_> = g
            .triples_matching(
                Some(&t.subject),
                Some(&t.predicate),
                Some(&Term::literal("nope")),
            )
            .collect();
        assert!(missing.is_empty());
    }

    #[test]
    fn subjects_and_predicates_are_distinct() {
        let g = sample();
        let subjects = g.subjects();
        assert_eq!(subjects.len(), 2);
        let predicates = g.predicates();
        assert_eq!(predicates.len(), 3);
    }

    #[test]
    fn helper_accessors() {
        let g = sample();
        let subs = g.subjects_with(&Term::iri("http://e.org/v#pn"), &Term::literal("T83-22uF"));
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].as_iri(), Some("http://e.org/p2"));
        let objs = g.objects_of(
            &Term::iri("http://e.org/p1"),
            &Term::iri("http://e.org/v#pn"),
        );
        assert_eq!(objs.len(), 1);
        assert!(g
            .object_of(
                &Term::iri("http://e.org/p1"),
                &Term::iri("http://e.org/v#mfr")
            )
            .is_some());
        assert!(g
            .object_of(
                &Term::iri("http://e.org/p2"),
                &Term::iri("http://e.org/v#mfr")
            )
            .is_none());
    }

    #[test]
    fn clear_keeps_dictionary() {
        let mut g = sample();
        let terms_before = g.term_count();
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.term_count(), terms_before);
    }

    #[test]
    fn extend_and_from_iterator() {
        let triples = vec![
            Triple::literal("http://e.org/a", "http://e.org/p", "1"),
            Triple::literal("http://e.org/b", "http://e.org/p", "2"),
        ];
        let g: Graph = triples.clone().into_iter().collect();
        assert_eq!(g.len(), 2);
        let mut g2 = Graph::new();
        g2.extend(triples);
        assert_eq!(g2.len(), 2);
        let mut g3 = Graph::new();
        assert_eq!(g3.extend_from(&g), 2);
        assert_eq!(g3.extend_from(&g), 0);
    }

    #[test]
    fn iter_returns_all_triples() {
        let g = sample();
        assert_eq!(g.iter().count(), 4);
    }
}
