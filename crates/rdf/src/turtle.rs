//! A pragmatic Turtle subset: enough to read and write the catalogs, provider
//! documents and ontologies used by the workspace.
//!
//! Supported syntax:
//!
//! * `@prefix p: <iri> .` directives,
//! * full IRIs `<...>`, prefixed names `p:local`, the `a` keyword,
//! * blank node labels `_:b0`,
//! * plain, language-tagged and typed string literals (single-line),
//! * predicate lists with `;` and object lists with `,`.
//!
//! Not supported (not needed by the workspace): multi-line literals, nested
//! blank node property lists `[...]`, RDF collections `(...)`, numeric or
//! boolean literal shorthand, `@base`.

use std::collections::VecDeque;

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::namespace::Namespaces;
use crate::term::{escape_literal, unescape_literal, Literal, Term};
use crate::triple::Triple;

/// Parse a Turtle document (subset, see module docs) into a graph.
///
/// Thin wrapper over [`TurtleStreamer`]: the whole input is fed as one chunk
/// and the emitted triples are collected into a graph.
pub fn parse(input: &str) -> Result<(Graph, Namespaces)> {
    let mut streamer = TurtleStreamer::new();
    streamer.feed(input.as_bytes());
    streamer.finish();
    let mut graph = Graph::new();
    while let Some(triple) = streamer.next_triple() {
        graph.insert(triple?);
    }
    Ok((graph, streamer.into_namespaces()))
}

/// An incremental Turtle reader: push byte chunks in, pull [`Triple`]s out.
///
/// Chunks may split the input anywhere, including inside a multi-byte UTF-8
/// sequence. A byte-level scanner tracks just enough syntax (IRI refs,
/// string literals with escapes, comments) to recognise the statement
/// terminator `.`; each complete statement is then parsed by the same
/// parser the batch path uses, carrying `@prefix` declarations across
/// statements. Every boundary-relevant byte (`<>"\\#.\n`) is ASCII and so
/// never occurs inside a UTF-8 continuation, which is what makes byte-wise
/// boundary scanning safe. Internal buffering is bounded by the longest
/// single statement plus the last fed chunk.
///
/// ```
/// use classilink_rdf::TurtleStreamer;
///
/// let mut streamer = TurtleStreamer::new();
/// streamer.feed(b"@prefix ex: <http://e.org/v#> .\n");
/// streamer.feed(b"<http://e.org/p1> ex:partNumber \"CRCW0805\" ; ex:mfr \"Vi");
/// streamer.feed(b"shay\" .");
/// streamer.finish();
/// let mut n = 0;
/// while let Some(triple) = streamer.next_triple() {
///     triple.unwrap();
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// ```
#[derive(Debug, Default)]
pub struct TurtleStreamer {
    buf: Vec<u8>,
    /// Bytes of `buf` already examined by the boundary scanner.
    scanned: usize,
    scan: Scan,
    /// 1-based line of the first unconsumed byte (for error reporting).
    line: usize,
    namespaces: Namespaces,
    pending: VecDeque<Triple>,
    finished: bool,
    drained_tail: bool,
    failed: bool,
}

/// Boundary-scanner state: which syntactic region the scan head is inside.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum Scan {
    #[default]
    Default,
    Iri,
    Literal,
    Escape,
    Comment,
}

impl TurtleStreamer {
    /// A streamer with no input yet.
    pub fn new() -> Self {
        Self {
            line: 1,
            ..Self::default()
        }
    }

    /// Append a chunk of input bytes. Call [`next_triple`](Self::next_triple)
    /// between feeds to keep the internal buffer bounded.
    pub fn feed(&mut self, chunk: &[u8]) {
        debug_assert!(!self.finished, "feed after finish");
        self.buf.extend_from_slice(chunk);
    }

    /// Signal end of input: the final statement (terminated or not) becomes
    /// available to [`next_triple`](Self::next_triple).
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// Bytes currently buffered (at most one incomplete statement once
    /// drained).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The prefix table accumulated from `@prefix` directives seen so far.
    pub fn namespaces(&self) -> &Namespaces {
        &self.namespaces
    }

    /// Consume the streamer, yielding the accumulated prefix table.
    pub fn into_namespaces(self) -> Namespaces {
        self.namespaces
    }

    /// Pull the next parsed triple.
    ///
    /// Returns `None` when every complete statement fed so far has been
    /// consumed (feed more chunks, or [`finish`](Self::finish) to flush the
    /// tail). After the first `Err` the streamer is poisoned and yields
    /// `None`.
    pub fn next_triple(&mut self) -> Option<Result<Triple>> {
        loop {
            if let Some(triple) = self.pending.pop_front() {
                return Some(Ok(triple));
            }
            if self.failed {
                return None;
            }
            let statement: Vec<u8> = if let Some(end) = self.find_boundary() {
                let statement = self.buf.drain(..=end).collect();
                self.scanned = 0;
                self.scan = Scan::Default;
                statement
            } else if self.finished && !self.drained_tail {
                // Leftover without a terminator: whitespace/comments parse
                // to nothing; a truncated statement reports the same
                // "unexpected end of input" the batch path would.
                self.drained_tail = true;
                self.scanned = 0;
                std::mem::take(&mut self.buf)
            } else {
                return None;
            };
            if let Err(error) = self.parse_statement_bytes(&statement) {
                self.failed = true;
                return Some(Err(error));
            }
        }
    }

    /// Scan forward for a statement-terminating `.`: one in default state
    /// whose following byte is whitespace, a comment, or end of input.
    /// Returns its index without consuming it; an undecidable trailing `.`
    /// (no following byte yet) is left unscanned until more input arrives.
    fn find_boundary(&mut self) -> Option<usize> {
        while self.scanned < self.buf.len() {
            let byte = self.buf[self.scanned];
            self.scan = match self.scan {
                Scan::Default => match byte {
                    b'<' => Scan::Iri,
                    b'"' => Scan::Literal,
                    b'#' => Scan::Comment,
                    b'.' => match self.buf.get(self.scanned + 1) {
                        Some(next) if next.is_ascii_whitespace() || *next == b'#' => {
                            return Some(self.scanned);
                        }
                        None if self.finished => return Some(self.scanned),
                        None => return None,
                        // Part of a prefixed name (`ex:a.b`): not a terminator.
                        Some(_) => Scan::Default,
                    },
                    _ => Scan::Default,
                },
                Scan::Iri => {
                    if byte == b'>' {
                        Scan::Default
                    } else {
                        Scan::Iri
                    }
                }
                Scan::Literal => match byte {
                    b'\\' => Scan::Escape,
                    b'"' => Scan::Default,
                    _ => Scan::Literal,
                },
                Scan::Escape => Scan::Literal,
                Scan::Comment => {
                    if byte == b'\n' {
                        Scan::Default
                    } else {
                        Scan::Comment
                    }
                }
            };
            self.scanned += 1;
        }
        None
    }

    /// Run the statement parser over one complete statement, carrying the
    /// prefix table and line counter across statements.
    fn parse_statement_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| RdfError::parse(self.line, "invalid UTF-8 in input"))?;
        let namespaces = std::mem::take(&mut self.namespaces);
        let mut parser = Parser::with_state(text, self.line, namespaces);
        let outcome = parser.parse_single();
        self.line = parser.line;
        self.namespaces = parser.namespaces;
        if outcome.is_ok() {
            self.pending.extend(parser.triples.drain(..));
        }
        outcome
    }
}

/// Serialise a graph as Turtle, grouping triples by subject and shrinking
/// IRIs through the given namespaces. Deterministic output.
pub fn write(graph: &Graph, namespaces: &Namespaces) -> String {
    let mut out = String::new();
    for (prefix, ns) in namespaces.iter() {
        out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
    }
    if !namespaces.is_empty() {
        out.push('\n');
    }

    let mut triples: Vec<Triple> = graph.iter().collect();
    triples.sort();
    let mut current_subject: Option<Term> = None;
    for (i, t) in triples.iter().enumerate() {
        let is_new_subject = current_subject.as_ref() != Some(&t.subject);
        if is_new_subject {
            if current_subject.is_some() {
                out.push_str(" .\n");
            }
            out.push_str(&write_term(&t.subject, namespaces));
            out.push_str("\n    ");
            current_subject = Some(t.subject.clone());
        } else {
            out.push_str(" ;\n    ");
        }
        out.push_str(&write_term(&t.predicate, namespaces));
        out.push(' ');
        out.push_str(&write_term(&t.object, namespaces));
        if i == triples.len() - 1 {
            out.push_str(" .\n");
        }
    }
    out
}

/// Serialise one term in Turtle syntax, shrinking IRIs when possible.
pub fn write_term(term: &Term, namespaces: &Namespaces) -> String {
    match term {
        Term::Iri(iri) => {
            if iri == crate::namespace::vocab::RDF_TYPE {
                "a".to_string()
            } else {
                match namespaces.shrink(iri) {
                    Some(curie) if is_safe_curie(&curie) => curie,
                    _ => format!("<{iri}>"),
                }
            }
        }
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(lit) => {
            let mut s = format!("\"{}\"", escape_literal(&lit.value));
            if let Some(lang) = &lit.language {
                s.push('@');
                s.push_str(lang);
            } else if let Some(dt) = &lit.datatype {
                s.push_str("^^");
                s.push_str(&match namespaces.shrink(dt) {
                    Some(curie) if is_safe_curie(&curie) => curie,
                    _ => format!("<{dt}>"),
                });
            }
            s
        }
    }
}

fn is_safe_curie(curie: &str) -> bool {
    curie
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.'))
        && !curie.ends_with('.')
}

/// The statement-level parser shared by [`TurtleStreamer`] and batch
/// [`parse`]: one instance parses exactly one directive or triple statement,
/// with the prefix table and line counter threaded in and out by the caller.
struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    namespaces: Namespaces,
    triples: Vec<Triple>,
}

impl Parser {
    fn with_state(input: &str, line: usize, namespaces: Namespaces) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line,
            namespaces,
            triples: Vec::new(),
        }
    }

    /// Parse at most one statement (or `@prefix` directive) and require the
    /// input to hold nothing else. Whitespace/comment-only input is fine.
    fn parse_single(&mut self) -> Result<()> {
        self.skip_ws_and_comments();
        if self.at_end() {
            return Ok(());
        }
        if self.peek_str("@prefix") {
            self.parse_prefix()?;
        } else {
            self.parse_statement()?;
        }
        self.skip_ws_and_comments();
        if !self.at_end() {
            return Err(self.err("trailing content after '.'"));
        }
        Ok(())
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        c
    }

    fn peek_str(&self, s: &str) -> bool {
        self.chars[self.pos..]
            .iter()
            .take(s.chars().count())
            .copied()
            .eq(s.chars())
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            if self.peek() == Some('#') {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::parse(self.line, msg.into())
    }

    fn expect(&mut self, expected: char) -> Result<()> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.err(format!("expected '{expected}', found '{c}'"))),
            None => Err(self.err(format!("expected '{expected}', found end of input"))),
        }
    }

    fn parse_prefix(&mut self) -> Result<()> {
        for _ in 0.."@prefix".len() {
            self.bump();
        }
        self.skip_ws_and_comments();
        let mut prefix = String::new();
        // Unwrap-free scan: `peek` both guards and yields the char, so
        // EOF mid-token simply ends the loop (and `expect` below reports
        // the truncation as a parse error).
        while let Some(c) = self.peek() {
            if c == ':' || c.is_whitespace() {
                break;
            }
            self.bump();
            prefix.push(c);
        }
        self.expect(':')?;
        self.skip_ws_and_comments();
        let iri = self.parse_iri_ref()?;
        self.skip_ws_and_comments();
        self.expect('.')?;
        self.namespaces.declare(prefix, iri);
        Ok(())
    }

    fn parse_statement(&mut self) -> Result<()> {
        let subject = self.parse_term()?;
        loop {
            self.skip_ws_and_comments();
            let predicate = self.parse_verb()?;
            loop {
                self.skip_ws_and_comments();
                let object = self.parse_term()?;
                self.triples
                    .push(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws_and_comments();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.skip_ws_and_comments();
            match self.peek() {
                Some(';') => {
                    self.bump();
                    self.skip_ws_and_comments();
                    // A dangling ';' directly before '.' is tolerated.
                    if self.peek() == Some('.') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some('.') => {
                    self.bump();
                    return Ok(());
                }
                Some(c) => return Err(self.err(format!("expected ';' or '.', found '{c}'"))),
                None => return Err(self.err("unexpected end of input inside statement")),
            }
        }
    }

    fn parse_verb(&mut self) -> Result<Term> {
        if self.peek() == Some('a') {
            // `a` is only the rdf:type keyword when followed by whitespace.
            let next = self.chars.get(self.pos + 1).copied();
            if next.is_none() || next.is_some_and(|c| c.is_whitespace()) {
                self.bump();
                return Ok(Term::iri(crate::namespace::vocab::RDF_TYPE));
            }
        }
        self.parse_term()
    }

    fn parse_iri_ref(&mut self) -> Result<String> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some(c) => iri.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
        if iri.is_empty() {
            return Err(RdfError::InvalidIri("<>".to_string()));
        }
        Ok(iri)
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('"') => self.parse_literal(),
            Some('_') => self.parse_blank(),
            Some(c) if c.is_alphanumeric() => self.parse_prefixed_name(),
            Some(c) => Err(self.err(format!("unexpected character '{c}' at start of term"))),
            None => Err(self.err("unexpected end of input, expected a term")),
        }
    }

    fn parse_blank(&mut self) -> Result<Term> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if !(c.is_alphanumeric() || c == '_' || c == '-') {
                break;
            }
            self.bump();
            label.push(c);
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::Blank(label))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term> {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if !(c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.')) {
                break;
            }
            self.bump();
            name.push(c);
        }
        // A trailing '.' belongs to the statement terminator, not the name.
        while name.ends_with('.') {
            name.pop();
            self.pos -= 1;
        }
        let (prefix, local) = name
            .split_once(':')
            .ok_or_else(|| self.err(format!("expected prefixed name, found '{name}'")))?;
        match self.namespaces.get(prefix) {
            Some(ns) => Ok(Term::iri(format!("{ns}{local}"))),
            None => Err(RdfError::UnknownPrefix(prefix.to_string())),
        }
    }

    fn parse_literal(&mut self) -> Result<Term> {
        self.expect('"')?;
        let mut raw = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    raw.push('\\');
                    match self.bump() {
                        Some(c) => raw.push(c),
                        None => return Err(self.err("dangling escape in literal")),
                    }
                }
                Some('"') => break,
                Some(c) => raw.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
        let value = unescape_literal(&raw);
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if !(c.is_alphanumeric() || c == '-') {
                        break;
                    }
                    self.bump();
                    lang.push(c);
                }
                if lang.is_empty() {
                    return Err(self.err("empty language tag"));
                }
                Ok(Term::Literal(Literal::lang(value, lang)))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let dt = match self.peek() {
                    Some('<') => self.parse_iri_ref()?,
                    _ => match self.parse_prefixed_name()? {
                        Term::Iri(iri) => iri,
                        _ => unreachable!("prefixed names always produce IRIs"),
                    },
                };
                Ok(Term::Literal(Literal::typed(value, dt)))
            }
            _ => Ok(Term::Literal(Literal::plain(value))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::vocab;

    const DOC: &str = r#"
@prefix ex: <http://example.org/vocab#> .
@prefix cls: <http://example.org/classes#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

# A fixed film resistor from the catalog
<http://example.org/prod/1>
    a cls:FixedFilmResistor ;
    ex:partNumber "CRCW0805-10K-5%-63V" ;
    ex:manufacturer "Vishay" , "Vishay Intertechnology" ;
    ex:resistance "10000"^^xsd:integer ;
    ex:label "10 k resistor"@en .

<http://example.org/prod/2> a cls:TantalumCapacitor ; ex:partNumber "T83A225K" .
"#;

    #[test]
    fn parse_full_document() {
        let (g, ns) = parse(DOC).unwrap();
        assert_eq!(ns.len(), 3);
        // 6 triples for prod/1 (two manufacturers) + 2 for prod/2
        assert_eq!(g.len(), 8);
        let type_triples: Vec<_> = g
            .triples_matching(
                Some(&Term::iri("http://example.org/prod/1")),
                Some(&Term::iri(vocab::RDF_TYPE)),
                None,
            )
            .collect();
        assert_eq!(type_triples.len(), 1);
        assert_eq!(
            type_triples[0].object.as_iri(),
            Some("http://example.org/classes#FixedFilmResistor")
        );
    }

    #[test]
    fn typed_and_lang_literals_parse() {
        let (g, _) = parse(DOC).unwrap();
        let resistance = g
            .object_of(
                &Term::iri("http://example.org/prod/1"),
                &Term::iri("http://example.org/vocab#resistance"),
            )
            .unwrap();
        let lit = resistance.as_literal().unwrap();
        assert_eq!(lit.value, "10000");
        assert_eq!(lit.datatype.as_deref(), Some(vocab::XSD_INTEGER));
        let label = g
            .object_of(
                &Term::iri("http://example.org/prod/1"),
                &Term::iri("http://example.org/vocab#label"),
            )
            .unwrap();
        assert_eq!(label.as_literal().unwrap().language.as_deref(), Some("en"));
    }

    #[test]
    fn object_lists_expand() {
        let (g, _) = parse(DOC).unwrap();
        let mfrs = g.objects_of(
            &Term::iri("http://example.org/prod/1"),
            &Term::iri("http://example.org/vocab#manufacturer"),
        );
        assert_eq!(mfrs.len(), 2);
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let doc = "<http://a.org/x> nope:pred \"v\" .";
        assert!(matches!(parse(doc), Err(RdfError::UnknownPrefix(_))));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let doc = "@prefix ex: <http://e.org/> .\nex:a ex:b \"v\"";
        assert!(parse(doc).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let doc = "# only a comment\n\n   # another\n";
        let (g, ns) = parse(doc).unwrap();
        assert!(g.is_empty());
        assert!(ns.is_empty());
    }

    #[test]
    fn dangling_semicolon_before_dot_is_tolerated() {
        let doc = "@prefix ex: <http://e.org/> .\nex:a ex:p \"v\" ;\n.";
        let (g, _) = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_node_subjects_parse() {
        let doc = "@prefix ex: <http://e.org/> .\n_:b0 ex:p \"v\" .";
        let (g, _) = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.iter().next().unwrap().subject.is_blank());
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let (g, ns) = parse(DOC).unwrap();
        let out = write(&g, &ns);
        let (g2, _) = parse(&out).unwrap();
        assert_eq!(g2.len(), g.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing after roundtrip: {t}");
        }
    }

    #[test]
    fn write_uses_a_for_rdf_type_and_curies() {
        let (g, ns) = parse(DOC).unwrap();
        let out = write(&g, &ns);
        assert!(
            out.contains(" a cls:FixedFilmResistor")
                || out.contains("\n    a cls:FixedFilmResistor")
        );
        assert!(out.contains("ex:partNumber"));
        assert!(out.contains("@prefix ex:"));
    }

    #[test]
    fn write_empty_graph() {
        let out = write(&Graph::new(), &Namespaces::new());
        assert!(out.is_empty());
    }

    #[test]
    fn streamed_parse_matches_batch_at_every_byte_split() {
        let bytes = DOC.as_bytes();
        let (batch, batch_ns) = parse(DOC).unwrap();
        let mut batch_triples: Vec<Triple> = batch.iter().collect();
        batch_triples.sort();
        for split in 0..=bytes.len() {
            let mut streamer = TurtleStreamer::new();
            streamer.feed(&bytes[..split]);
            streamer.feed(&bytes[split..]);
            streamer.finish();
            let mut g = Graph::new();
            while let Some(t) = streamer.next_triple() {
                g.insert(t.unwrap());
            }
            let mut triples: Vec<Triple> = g.iter().collect();
            triples.sort();
            assert_eq!(triples, batch_triples, "split at byte {split}");
            assert_eq!(
                streamer.into_namespaces(),
                batch_ns,
                "split at byte {split}"
            );
        }
    }

    #[test]
    fn streamer_drains_statements_as_they_complete() {
        let mut streamer = TurtleStreamer::new();
        streamer.feed(b"@prefix ex: <http://e.org/> .\n");
        // The directive is consumable before any triple statement arrives.
        assert!(streamer.next_triple().is_none());
        assert_eq!(streamer.namespaces().len(), 1);
        assert!(streamer.buffered_bytes() < 2);
        streamer.feed(b"ex:a ex:p \"v1\" , \"v2\" . ex:b");
        assert_eq!(
            streamer.next_triple().unwrap().unwrap().object.value_str(),
            "v1"
        );
        assert_eq!(
            streamer.next_triple().unwrap().unwrap().object.value_str(),
            "v2"
        );
        // "ex:b" is an incomplete statement: buffered, not yet emitted.
        assert!(streamer.next_triple().is_none());
        streamer.feed(b" ex:p \"v3\" .");
        streamer.finish();
        assert_eq!(
            streamer.next_triple().unwrap().unwrap().object.value_str(),
            "v3"
        );
        assert!(streamer.next_triple().is_none());
    }

    #[test]
    fn streamer_dot_inside_literal_iri_and_comment_is_not_a_boundary() {
        let doc = "@prefix ex: <http://e.org/x.y/> . # dot. in comment.\n\
                   <http://e.org/a.b> ex:p \"v. 1.5\" .";
        let mut streamer = TurtleStreamer::new();
        streamer.feed(doc.as_bytes());
        streamer.finish();
        let t = streamer.next_triple().unwrap().unwrap();
        assert_eq!(t.subject.as_iri(), Some("http://e.org/a.b"));
        assert_eq!(t.predicate.as_iri(), Some("http://e.org/x.y/p"));
        assert_eq!(t.object.value_str(), "v. 1.5");
        assert!(streamer.next_triple().is_none());
    }

    #[test]
    fn streamer_unterminated_tail_is_an_error_after_finish() {
        let mut streamer = TurtleStreamer::new();
        streamer.feed(b"@prefix ex: <http://e.org/> .\nex:a ex:p \"v\"");
        streamer.finish();
        assert!(streamer.next_triple().unwrap().is_err());
        assert!(streamer.next_triple().is_none());
    }

    #[test]
    fn curie_with_special_chars_falls_back_to_full_iri() {
        let mut ns = Namespaces::new();
        ns.declare("ex", "http://e.org/");
        let term = Term::iri("http://e.org/path/with/slashes");
        let s = write_term(&term, &ns);
        assert_eq!(s, "<http://e.org/path/with/slashes>");
    }
}
