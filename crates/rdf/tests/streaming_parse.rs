//! Streamed-vs-batch parse equivalence: feeding a document to the
//! streaming readers in arbitrary byte chunks — split anywhere, including
//! mid-UTF-8 sequence, mid-token, inside comments or blank node labels —
//! must yield exactly the triples (and, for Turtle, namespaces) of the
//! batch `parse`, and must agree with it on whether the document is
//! valid at all. Triples are drained eagerly between feeds so the
//! incremental buffer-compaction paths are exercised, not just the
//! final flush.

use classilink_rdf::{ntriples, turtle, NTriplesStreamer, Triple, TurtleStreamer};
use proptest::prelude::*;

/// Valid documents covering every token class: comments, blank nodes,
/// escapes, language tags, datatypes, object/predicate lists, prefixed
/// names with dots, and multi-byte characters next to delimiters.
const TURTLE_DOC: &str = r#"
@prefix ex: <http://e.org/v#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
# catalog fragment. with a dot.
<http://e.org/p1> ex:partNumber "CRCW0805-10K" ; ex:mfr "Vishay" , "Vishay Ω" .
ex:p2.x ex:label "10 kΩ – résistance"@en .
ex:p2.x ex:value "1.5"^^xsd:decimal .
_:b0 ex:note "blank \"escaped\" subject \\ with dots. inside" .
"#;

const NTRIPLES_DOC: &str = "
# comment line Ω
<http://e.org/p1> <http://e.org/v#partNumber> \"CRCW0805-10K\" .
<http://e.org/p2> <http://e.org/v#label> \"10 kΩ – résistance\"@fr .
<http://e.org/p2> <http://e.org/v#value> \"10000\"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://e.org/v#note> \"blank subject\" .
";

/// Cut `doc` into chunks at the given raw positions (taken mod len, so
/// the strategy is length-independent; duplicates collapse to empty
/// chunks, which the streamers must also tolerate).
fn chunks(doc: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (doc.len() + 1)).collect();
    cuts.sort_unstable();
    let mut out = Vec::new();
    let mut start = 0;
    for cut in cuts {
        out.push(doc[start..cut].to_vec());
        start = cut;
    }
    out.push(doc[start..].to_vec());
    out
}

/// Drive a streamer over the chunks, draining after every feed.
/// Returns the emitted triples, or the first error.
fn stream_ntriples(chunks: &[Vec<u8>]) -> Result<Vec<Triple>, classilink_rdf::RdfError> {
    let mut streamer = NTriplesStreamer::new();
    let mut triples = Vec::new();
    for chunk in chunks {
        streamer.feed(chunk);
        while let Some(t) = streamer.next_triple() {
            triples.push(t?);
        }
    }
    streamer.finish();
    while let Some(t) = streamer.next_triple() {
        triples.push(t?);
    }
    Ok(triples)
}

fn stream_turtle(
    chunks: &[Vec<u8>],
) -> Result<(Vec<Triple>, classilink_rdf::Namespaces), classilink_rdf::RdfError> {
    let mut streamer = TurtleStreamer::new();
    let mut triples = Vec::new();
    for chunk in chunks {
        streamer.feed(chunk);
        while let Some(t) = streamer.next_triple() {
            triples.push(t?);
        }
    }
    streamer.finish();
    while let Some(t) = streamer.next_triple() {
        triples.push(t?);
    }
    Ok((triples, streamer.into_namespaces()))
}

fn sorted(mut triples: Vec<Triple>) -> Vec<Triple> {
    triples.sort();
    triples.dedup();
    triples
}

/// Truncate at an arbitrary *byte* (not char) position; the result may
/// be invalid UTF-8 at the tail, which batch parse never sees (it takes
/// `&str`) — so damaged-document agreement is checked on char cuts only.
fn char_truncated(doc: &str, cut: usize) -> String {
    let chars: Vec<char> = doc.chars().collect();
    chars[..cut % (chars.len() + 1)].iter().collect()
}

proptest! {
    /// Any chunking of a valid N-Triples document yields exactly the
    /// batch triple set.
    #[test]
    fn ntriples_chunked_equals_batch(cuts in proptest::collection::vec(0usize..4096, 0..6)) {
        let batch: Vec<Triple> = {
            let g = ntriples::parse(NTRIPLES_DOC).unwrap();
            sorted(g.iter().collect())
        };
        let streamed = stream_ntriples(&chunks(NTRIPLES_DOC.as_bytes(), &cuts)).unwrap();
        prop_assert_eq!(sorted(streamed), batch);
    }

    /// Any chunking of a valid Turtle document yields exactly the batch
    /// triple set and prefix table.
    #[test]
    fn turtle_chunked_equals_batch(cuts in proptest::collection::vec(0usize..4096, 0..6)) {
        let (batch_graph, batch_ns) = turtle::parse(TURTLE_DOC).unwrap();
        let batch = sorted(batch_graph.iter().collect());
        let (streamed, ns) = stream_turtle(&chunks(TURTLE_DOC.as_bytes(), &cuts)).unwrap();
        prop_assert_eq!(sorted(streamed), batch);
        prop_assert_eq!(ns, batch_ns);
    }

    /// On damaged documents (char-boundary truncation, so batch parse
    /// can see the same bytes) streamed and batch must agree on
    /// validity, and on the triple set when both accept.
    #[test]
    fn chunked_and_batch_agree_on_truncated_documents(
        cut in 0usize..4096,
        cuts in proptest::collection::vec(0usize..4096, 0..4),
    ) {
        let nt = char_truncated(NTRIPLES_DOC, cut);
        let batch = ntriples::parse(&nt);
        let streamed = stream_ntriples(&chunks(nt.as_bytes(), &cuts));
        match (batch, streamed) {
            (Ok(g), Ok(ts)) => prop_assert_eq!(sorted(g.iter().collect()), sorted(ts)),
            (Err(_), Err(_)) => {}
            (b, s) => prop_assert!(false, "batch {:?} vs streamed {:?}", b.is_ok(), s.is_ok()),
        }

        let ttl = char_truncated(TURTLE_DOC, cut);
        let batch = turtle::parse(&ttl);
        let streamed = stream_turtle(&chunks(ttl.as_bytes(), &cuts));
        match (batch, streamed) {
            (Ok((g, ns)), Ok((ts, sns))) => {
                prop_assert_eq!(sorted(g.iter().collect()), sorted(ts));
                prop_assert_eq!(ns, sns);
            }
            (Err(_), Err(_)) => {}
            (b, s) => prop_assert!(false, "batch {:?} vs streamed {:?}", b.is_ok(), s.is_ok()),
        }
    }
}
