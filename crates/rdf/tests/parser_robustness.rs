//! Parser robustness: arbitrary truncation and character mangling of
//! valid Turtle and N-Triples documents must always come back as
//! `Ok(..)` or `Err(..)` — never a panic. Each property wraps the parse
//! in `catch_unwind`, so a latent `unwrap` on a half-consumed token
//! (the historical failure mode of the cursor scanners) fails the test
//! with the offending document rather than aborting the harness.

use classilink_rdf::{ntriples, turtle};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A Turtle document exercising every token class the parser knows:
/// prefix declarations, prefixed names, full IRIs, blank nodes, plain /
/// language-tagged / datatyped literals, and comments.
const TURTLE_DOC: &str = r#"
@prefix ex: <http://e.org/v#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
# catalog fragment
<http://e.org/p1> ex:partNumber "CRCW0805-10K" .
ex:p2 ex:label "10 kΩ resistor"@en .
ex:p2 ex:value "10000"^^xsd:integer .
_:b0 ex:note "blank subject with \"escapes\" and \\slashes\\" .
"#;

/// An N-Triples document covering IRIs, blank nodes, and all three
/// literal shapes.
const NTRIPLES_DOC: &str = r#"
<http://e.org/p1> <http://e.org/v#partNumber> "CRCW0805-10K" .
<http://e.org/p2> <http://e.org/v#label> "10 k resistor"@en .
<http://e.org/p2> <http://e.org/v#value> "10000"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://e.org/v#note> "blank subject" .
"#;

/// Characters chosen to land on parser decision points: token openers
/// and closers, escape introducers, tag/datatype markers, and a
/// multi-byte char so byte/char confusions surface.
const MANGLE_CHARS: [char; 12] = [
    '"', '\\', '<', '>', '@', '^', '.', ':', '_', '#', '\u{0}', 'Ω',
];

/// Assert that parsing `doc` completes without panicking; the parse
/// `Result` itself may be either variant.
fn assert_no_panic(parse: &dyn Fn(&str), doc: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| parse(doc)));
    assert!(outcome.is_ok(), "parser panicked on: {doc:?}");
}

fn parse_turtle(doc: &str) {
    let _ = turtle::parse(doc);
}

fn parse_ntriples(doc: &str) {
    let _ = ntriples::parse(doc);
}

/// Truncate after `cut % (len + 1)` chars — always a char boundary, and
/// the modulus keeps the strategy independent of the document length.
fn truncated(doc: &str, cut: usize) -> String {
    let chars: Vec<char> = doc.chars().collect();
    chars[..cut % (chars.len() + 1)].iter().collect()
}

/// Replace the char at `pos % len` with a mangle char.
fn mangled(doc: &str, pos: usize, which: usize) -> String {
    let mut chars: Vec<char> = doc.chars().collect();
    let i = pos % chars.len();
    chars[i] = MANGLE_CHARS[which % MANGLE_CHARS.len()];
    chars.into_iter().collect()
}

/// Insert a mangle char before `pos % (len + 1)`.
fn injected(doc: &str, pos: usize, which: usize) -> String {
    let mut chars: Vec<char> = doc.chars().collect();
    let i = pos % (chars.len() + 1);
    chars.insert(i, MANGLE_CHARS[which % MANGLE_CHARS.len()]);
    chars.into_iter().collect()
}

proptest! {
    /// Truncating a valid document at any char boundary must not panic
    /// either parser — EOF can land mid-IRI, mid-literal, mid-escape,
    /// mid-language-tag, or mid-prefixed-name.
    #[test]
    fn truncation_never_panics(cut in 0usize..4096) {
        assert_no_panic(&parse_turtle, &truncated(TURTLE_DOC, cut));
        assert_no_panic(&parse_ntriples, &truncated(NTRIPLES_DOC, cut));
    }

    /// Overwriting any single char with a syntax-significant char must
    /// not panic: quotes open unterminated literals, backslashes dangle
    /// escapes, '<'/'>' tear IRIs, '@'/'^' fake literal suffixes.
    #[test]
    fn char_mangling_never_panics(pos in 0usize..4096, which in 0usize..64) {
        assert_no_panic(&parse_turtle, &mangled(TURTLE_DOC, pos, which));
        assert_no_panic(&parse_ntriples, &mangled(NTRIPLES_DOC, pos, which));
    }

    /// Inserting a syntax-significant char at any position must not
    /// panic — this shifts every downstream token without removing any
    /// input, a different failure surface than replacement.
    #[test]
    fn char_injection_never_panics(pos in 0usize..4096, which in 0usize..64) {
        assert_no_panic(&parse_turtle, &injected(TURTLE_DOC, pos, which));
        assert_no_panic(&parse_ntriples, &injected(NTRIPLES_DOC, pos, which));
    }

    /// Compound damage: truncate, then mangle inside the survivor, then
    /// truncate again — documents no single-edit case can produce.
    #[test]
    fn compound_damage_never_panics(
        cut_a in 0usize..4096,
        pos in 0usize..4096,
        which in 0usize..64,
        cut_b in 0usize..4096,
    ) {
        for doc in [TURTLE_DOC, NTRIPLES_DOC] {
            let hurt = truncated(doc, cut_a);
            let hurt = if hurt.is_empty() { hurt } else { mangled(&hurt, pos, which) };
            let hurt = truncated(&hurt, cut_b);
            assert_no_panic(&parse_turtle, &hurt);
            assert_no_panic(&parse_ntriples, &hurt);
        }
    }
}
