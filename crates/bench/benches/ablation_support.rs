//! Ablation A2: sweep of the support threshold `th` (the paper fixes
//! `th = 0.002`; this shows how rule count, precision and recall move around
//! that choice).

use classilink_bench::paper_learner;
use classilink_core::RuleLearner;
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_eval::support_sweep;
use classilink_eval::table1::EvaluationItem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_support(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::small());
    let items: Vec<EvaluationItem> = scenario
        .training
        .examples()
        .iter()
        .map(|e| (e.classes.first().copied(), e.facts.clone()))
        .collect();
    let thresholds = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02];

    let points = support_sweep(
        &scenario.training,
        &scenario.ontology,
        &items,
        &paper_learner(),
        &thresholds,
    )
    .expect("sweep runs");
    println!(
        "\n=== Ablation A2: support threshold th (|TS| = {}) ===",
        items.len()
    );
    println!("th        pairs   rules  precision  recall");
    for p in &points {
        println!(
            "{:<9} {:<7} {:<6} {:<10.3} {:<7.3}",
            p.support_threshold, p.frequent_pairs, p.rules, p.precision, p.recall
        );
    }

    let mut group = c.benchmark_group("ablation_support");
    group.sample_size(10);
    for th in [0.0005, 0.002, 0.02] {
        let config = paper_learner().with_support_threshold(th);
        group.bench_with_input(BenchmarkId::new("learn_th", th), &config, |b, config| {
            b.iter(|| {
                RuleLearner::new(config.clone())
                    .learn(&scenario.training, &scenario.ontology)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_support);
criterion_main!(benches);
