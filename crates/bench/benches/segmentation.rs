//! Micro-benchmark of the segmentation strategies (the `split(v)` step of
//! Algorithm 1).

use classilink_bench::part_number_corpus;
use classilink_segment::{Segmenter, SegmenterKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_segmentation(c: &mut Criterion) {
    let corpus = part_number_corpus(1000);
    let kinds = [
        SegmenterKind::Separator,
        SegmenterKind::AlphaNumTransition,
        SegmenterKind::CharNGram(3),
        SegmenterKind::PaddedBigram,
        SegmenterKind::WordNGram(1),
    ];
    let mut group = c.benchmark_group("segmentation");
    group.throughput(Throughput::Elements(corpus.len() as u64));
    for kind in kinds {
        let segmenter = kind.build();
        group.bench_with_input(
            BenchmarkId::new("split_corpus", kind.name()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    corpus
                        .iter()
                        .map(|v| segmenter.split_distinct(v).len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_segmentation);
criterion_main!(benches);
