//! The paper preset at full scale: `ScenarioConfig::paper()` — a 30 000
//! product catalog, 10 265 expert links, the 566/226 ontology — run
//! through store construction, the blocking phase alone, and the
//! blocking + comparison pipeline, with the **shard count as the swept
//! parameter**.
//!
//! Three series are tracked:
//!
//! * `store_build/*` — time to columnarise the catalog, single-store vs
//!   sharded (shared-schema, **parallel**) construction.
//! * `blocking/<blocker>` — the streaming blocking phase alone
//!   (`Blocker::stream_candidates` into a reused `CandidateRuns` sink,
//!   4 shards), with `Throughput::Elements` set to the candidate count
//!   so the shim reports **candidates per second**. Store-level key
//!   indexes are warm after the first iteration, mirroring a serving
//!   deployment. The series includes `cartesian` — ~308 M candidates
//!   that the run-block sink encodes in O(externals × shards) span
//!   blocks; the flat pair encoding could not even hold them (~4.9 GB).
//!   Each blocker also reports a **`queue_bytes` metric line**
//!   (blocks-vs-pairs memory, printed and appended to
//!   `CLASSILINK_BENCH_JSON`).
//! * `pipeline/*` — the end-to-end blocking + comparison phase on
//!   standard key blocking; `single_store` is the monolithic baseline,
//!   `sharded/N` streams per-shard candidate runs into N task queues
//!   with count-based work stealing.
//!
//! Before the pipeline series, one instrumented run prints the
//! **blocking vs comparison wall-time split** so the bench output shows
//! where the preset actually spends its time.

use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_eval::blocking_eval::default_key;
use classilink_linking::blocking::{
    Blocker, CartesianBlocker, SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{
    BigramBlocker, CandidateRuns, LinkagePipeline, Linker, ProbeScratch, RecordComparator,
    SimilarityMeasure,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

/// Append one metric JSON line to the `CLASSILINK_BENCH_JSON` file (the
/// same file the criterion shim appends its timing lines to), recording
/// the run-block queue memory against the flat pair encoding it
/// replaced. Kept in the bench rather than the shim so the shim's API
/// stays a strict subset of upstream criterion's.
fn emit_queue_bytes(label: &str, queue_bytes: u64, pair_bytes: u64, candidates: u64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"queue_bytes\":{queue_bytes},\"pair_bytes\":{pair_bytes},\
         \"candidates\":{candidates}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append one hand-timed latency line in the criterion shim's timing
/// schema (`label`/`mean_ns`/`iterations`), for serving-layer phases
/// measured outside a criterion group (epoch swaps rebuild and re-warm
/// the whole catalog, so they are timed directly rather than iterated).
fn emit_latency(label: &str, mean_ns: u64, iterations: u64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line =
        format!("{{\"label\":{label:?},\"mean_ns\":{mean_ns},\"iterations\":{iterations}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append the bigram filter pipeline's per-run accounting as one metric
/// JSON line: posting entries removed by the length filter, walk
/// positions removed by the prefix filter, first touches dropped by the
/// positional filter, and verification merges actually run.
fn emit_filter_stats(label: &str, stats: &classilink_linking::BigramFilterStats) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"grams_skipped_prefix\":{},\"postings_skipped_length\":{},\
         \"postings_skipped_position\":{},\"verify_merges\":{}}}\n",
        stats.grams_skipped_prefix,
        stats.postings_skipped_length,
        stats.postings_skipped_position,
        stats.verify_merges,
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append the fault-overhead guard's metric line: the end-to-end
/// pipeline throughput of this (failpoint-free) build against the
/// committed PR 7 baseline snapshot, plus their ratio.
fn emit_fault_overhead(label: &str, baseline_eps: f64, eps: f64, ratio: f64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"baseline_elements_per_sec\":{baseline_eps:.1},\
         \"elements_per_sec\":{eps:.1},\"ratio\":{ratio:.4}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// The `pipeline/single_store` comparisons-per-second recorded in the
/// pre-failpoint baseline snapshot (`CLASSILINK_BENCH_BASELINE`,
/// defaulting to the committed `BENCH_pr7.json`). Parsed with string
/// ops because the bench crate deliberately has no JSON dependency.
fn baseline_single_store_eps() -> Option<f64> {
    let path = std::env::var("CLASSILINK_BENCH_BASELINE")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json").into());
    let snapshot = std::fs::read_to_string(&path).ok()?;
    let line = snapshot
        .lines()
        .find(|l| l.contains("\"paper_scale/pipeline/single_store\""))?;
    let (_, value) = line.split_once("\"elements_per_sec\":")?;
    let number: String = value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number.parse().ok()
}

fn bench_paper_scale(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::paper());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "paper preset: |SL| = {}, |SE| = {}, comparison threads = {threads}",
        scenario.catalog_size(),
        scenario.config.training_links + scenario.config.extra_external,
    );

    let mut group = c.benchmark_group("paper_scale");
    group.sample_size(10);

    // Store build: monolithic vs sharded shared-schema construction.
    group.bench_function("store_build/single", |b| b.iter(|| scenario.local_store()));
    for shards in [4, 16] {
        group.bench_with_input(
            BenchmarkId::new("store_build/sharded", shards),
            &shards,
            |b, &s| b.iter(|| scenario.local_store_sharded(s)),
        );
    }

    // Blocking phase alone: streamed per-shard candidate runs on a
    // 4-shard catalog, one series per blocker, reusing one sink.
    let (blocking_external, blocking_local) = scenario.sharded_stores(4);
    let standard = StandardBlocker::new(default_key(4));
    let sorted = SortedNeighborhoodBlocker::new(default_key(0), 10);
    let bigram = BigramBlocker::new(default_key(0), 0.7);
    let blockers: [(&str, &dyn Blocker); 4] = [
        ("standard", &standard),
        ("sorted-neighborhood", &sorted),
        ("bigram", &bigram),
        // Cartesian only exists in this series because of the run-block
        // sink: ~308 M candidates fit in O(externals × shards) span
        // blocks where the flat pair vector would need ~4.9 GB.
        ("cartesian", &CartesianBlocker),
    ];
    for (name, blocker) in blockers {
        let mut runs = CandidateRuns::new();
        blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        println!(
            "blocking/{name}: {} candidates, queue {} bytes (run blocks) vs {} bytes \
             (pair encoding)",
            runs.total(),
            runs.queue_bytes(),
            runs.pair_bytes(),
        );
        emit_queue_bytes(
            &format!("paper_scale/blocking/{name}/queue_bytes"),
            runs.queue_bytes(),
            runs.pair_bytes(),
            runs.total(),
        );
        group.throughput(Throughput::Elements(runs.total()));
        group.bench_with_input(BenchmarkId::new("blocking", name), &(), |b, ()| {
            b.iter(|| {
                blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
                runs.total()
            })
        });
    }

    // The bigram filter pipeline's own accounting: how much work each
    // filter removed on the paper preset, as one metric JSON line the
    // bench-smoke validator checks alongside the queue metrics.
    {
        let mut runs = CandidateRuns::new();
        bigram.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        let stats = runs.bigram_filter_stats();
        println!(
            "blocking/bigram filter stats: {} postings skipped (length), {} grams skipped \
             (prefix), {} first touches dropped (position), {} verify merges",
            stats.postings_skipped_length,
            stats.grams_skipped_prefix,
            stats.postings_skipped_position,
            stats.verify_merges,
        );
        emit_filter_stats("paper_scale/blocking/bigram/filter_stats", &stats);
    }

    // Threshold sweep: the filtered probe across the paper's operating
    // range. Lower thresholds widen posting windows and emit more
    // candidates; the series shows how the filters degrade gracefully.
    for threshold in [0.4, 0.6, 0.8] {
        let swept = BigramBlocker::new(default_key(0), threshold);
        let mut runs = CandidateRuns::new();
        swept.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        group.throughput(Throughput::Elements(runs.total()));
        group.bench_with_input(
            BenchmarkId::new("blocking/bigram/threshold", format!("{threshold:.1}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    swept.stream_candidates(
                        &blocking_external,
                        (&blocking_local).into(),
                        &mut runs,
                    );
                    runs.total()
                })
            },
        );
    }

    // Comparison phase over standard-blocking candidates. Throughput is
    // the candidate count, so the report reads as comparisons/second.
    let external = scenario.external_store();
    let local = scenario.local_store();
    let blocker = StandardBlocker::new(default_key(4));
    let comparator = RecordComparator::single(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);
    let candidates = blocker.candidate_pairs(&external, &local).len() as u64;
    println!("standard blocking candidates: {candidates}");

    // One instrumented run: how much of the sharded pipeline's wall
    // time is blocking vs comparison (indexes warm, like the benches).
    {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        let mut runs = CandidateRuns::new();
        let start = Instant::now();
        blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        let blocking = start.elapsed();
        let start = Instant::now();
        let result = pipeline.run_sharded(&blocking_external, &blocking_local);
        let total = start.elapsed();
        let comparison = total.saturating_sub(blocking);
        println!(
            "phase split (sharded/4): blocking {blocking:?} ({:.1}%), comparison ~{comparison:?} \
             ({:.1}%) of {total:?} total, {} comparisons",
            100.0 * blocking.as_secs_f64() / total.as_secs_f64(),
            100.0 * comparison.as_secs_f64() / total.as_secs_f64(),
            result.comparisons,
        );
    }

    group.throughput(Throughput::Elements(candidates));
    group.bench_function("pipeline/single_store", |b| {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        b.iter(|| pipeline.run_stores(&external, &local))
    });

    // Fault-overhead guard: this build compiles failpoints to nothing
    // (the bench crate never enables the `failpoints` feature), so a
    // hand-timed end-to-end run must stay within noise of the PR 7
    // baseline recorded before the fault-containment sites existed. The
    // ratio is always printed and emitted as a metric line; it only
    // *fails* the run under CLASSILINK_BENCH_ENFORCE_FAULT_OVERHEAD,
    // because CI machines are not comparable to the machine that
    // recorded the snapshot — there the line is schema-validated and
    // eyeballed instead.
    {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        let start = Instant::now();
        let result = pipeline.run_stores(&external, &local);
        let eps = result.comparisons as f64 / start.elapsed().as_secs_f64();
        match baseline_single_store_eps() {
            Some(baseline_eps) => {
                let ratio = eps / baseline_eps;
                println!(
                    "pipeline/fault_overhead: {eps:.0} cmp/s vs baseline {baseline_eps:.0} \
                     cmp/s (ratio {ratio:.3})"
                );
                emit_fault_overhead(
                    "paper_scale/pipeline/fault_overhead",
                    baseline_eps,
                    eps,
                    ratio,
                );
                if std::env::var("CLASSILINK_BENCH_ENFORCE_FAULT_OVERHEAD").is_ok() {
                    assert!(
                        ratio >= 0.85,
                        "failpoint instrumentation cost throughput: {eps:.0} cmp/s is \
                         {ratio:.3} of the {baseline_eps:.0} cmp/s baseline"
                    );
                }
            }
            None => {
                println!("pipeline/fault_overhead: no baseline snapshot, emitting ratio 1.0");
                emit_fault_overhead("paper_scale/pipeline/fault_overhead", eps, eps, 1.0);
            }
        }
    }
    for shards in [1, 2, 4, 8, 16] {
        let (sharded_external, sharded_local) = scenario.sharded_stores(shards);
        group.bench_with_input(
            BenchmarkId::new("pipeline/sharded", shards),
            &shards,
            |b, _| {
                let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
                b.iter(|| pipeline.run_sharded(&sharded_external, &sharded_local))
            },
        );
    }

    // Serving layer: single-record probes against a pre-warmed 4-shard
    // epoch, single-threaded with one reused `ProbeScratch`, one series
    // per blocker; throughput is the probe count, so the report reads
    // **probes per second**. Each blocker also emits a
    // `serve/swap_latency/<blocker>` timing line — the wall time of
    // `Linker::swap`, i.e. a full epoch rebuild + warm (outside the
    // lock) plus the pointer flip, hand-timed because iterating
    // catalog rebuilds through criterion would dwarf the smoke run.
    {
        let probe_records: Vec<_> = (0..64).map(|e| external.record(e)).collect();
        let serve_blockers: [(&str, &(dyn Blocker + Sync)); 2] =
            [("standard", &standard), ("bigram", &bigram)];
        for (name, blocker) in serve_blockers {
            let linker = Linker::new(blocker, &comparator, blocking_local.clone());
            let mut scratch = ProbeScratch::new();
            let mut warm_links = 0usize;
            for record in &probe_records {
                warm_links += linker.probe_with(record, &mut scratch).matches.len();
            }
            println!(
                "serve/probe/{name}: {warm_links} links across {} warm probes",
                probe_records.len(),
            );
            group.throughput(Throughput::Elements(probe_records.len() as u64));
            group.bench_with_input(BenchmarkId::new("serve/probe", name), &(), |b, ()| {
                b.iter(|| {
                    let mut links = 0usize;
                    for record in &probe_records {
                        links += linker.probe_with(record, &mut scratch).matches.len();
                    }
                    links
                })
            });
            const SWAPS: u64 = 2;
            let replacements: Vec<_> = (0..SWAPS).map(|_| blocking_local.clone()).collect();
            let start = Instant::now();
            for replacement in replacements {
                linker.swap(replacement);
            }
            let mean_ns =
                u64::try_from(start.elapsed().as_nanos() / u128::from(SWAPS)).unwrap_or(u64::MAX);
            println!("serve/swap_latency/{name}: {mean_ns} ns mean over {SWAPS} swaps");
            emit_latency(
                &format!("paper_scale/serve/swap_latency/{name}"),
                mean_ns.max(1),
                SWAPS,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_paper_scale);
criterion_main!(benches);
