//! The paper preset at full scale: `ScenarioConfig::paper()` — a 30 000
//! product catalog, 10 265 expert links, the 566/226 ontology — run
//! through store construction, the blocking phase alone, and the
//! blocking + comparison pipeline, with the **shard count as the swept
//! parameter**.
//!
//! Three series are tracked:
//!
//! * `store_build/*` — time to columnarise the catalog, single-store vs
//!   sharded (shared-schema, **parallel**) construction.
//! * `blocking/<blocker>` — the streaming blocking phase alone
//!   (`Blocker::stream_candidates` into a reused `CandidateRuns` sink,
//!   4 shards), with `Throughput::Elements` set to the candidate count
//!   so the shim reports **candidates per second**. Store-level key
//!   indexes are warm after the first iteration, mirroring a serving
//!   deployment. The series includes `cartesian` — ~308 M candidates
//!   that the run-block sink encodes in O(externals × shards) span
//!   blocks; the flat pair encoding could not even hold them (~4.9 GB).
//!   Each blocker also reports a **`queue_bytes` metric line**
//!   (blocks-vs-pairs memory, printed and appended to
//!   `CLASSILINK_BENCH_JSON`).
//! * `pipeline/*` — the end-to-end blocking + comparison phase on
//!   standard key blocking; `single_store` is the monolithic baseline,
//!   `sharded/N` streams per-shard candidate runs into N task queues
//!   with count-based work stealing.
//! * `ingest/<format>` — the catalog serialised as N-Triples and Turtle
//!   and fed through [`FeedIngest`] in 64 KiB chunks, reported in
//!   **MB/s** (`Throughput::Bytes`), with a `peak_bytes` metric line
//!   pinning the bounded-memory claim: peak resident parse state vs the
//!   whole document a batch parse holds.
//! * `delta/append_Npct` — incremental delta linking: a base catalog
//!   grown by a {1, 10}% appended shard, `run_sharded_delta` over the
//!   new shard only vs a full re-run, emitted as a speedup metric line.
//! * `serve/*` — probe throughput plus two republish latencies per
//!   blocker: `swap_latency` (full rebuild + warm) and
//!   `append_latency` (`Linker::append`, the O(delta) epoch successor).
//!
//! Before the pipeline series, one instrumented run prints the
//! **blocking vs comparison wall-time split** so the bench output shows
//! where the preset actually spends its time.

use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_eval::blocking_eval::default_key;
use classilink_linking::blocking::{
    Blocker, CartesianBlocker, SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{
    BigramBlocker, CandidateRuns, FeedFormat, FeedIngest, LinkagePipeline, Linker, ProbeScratch,
    Record, RecordComparator, SchemaInterner, ShardedStore, SimilarityMeasure,
};
use classilink_rdf::term::escape_literal;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

/// Bytes fed to the streaming ingest per `feed` call: large enough to
/// amortise per-chunk overhead, small enough that the bounded-memory
/// claim is non-trivial against a multi-megabyte document.
const INGEST_CHUNK: usize = 64 * 1024;

/// Append one metric JSON line to the `CLASSILINK_BENCH_JSON` file (the
/// same file the criterion shim appends its timing lines to), recording
/// the run-block queue memory against the flat pair encoding it
/// replaced. Kept in the bench rather than the shim so the shim's API
/// stays a strict subset of upstream criterion's.
fn emit_queue_bytes(label: &str, queue_bytes: u64, pair_bytes: u64, candidates: u64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"queue_bytes\":{queue_bytes},\"pair_bytes\":{pair_bytes},\
         \"candidates\":{candidates}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append one hand-timed latency line in the criterion shim's timing
/// schema (`label`/`mean_ns`/`iterations`), for serving-layer phases
/// measured outside a criterion group (epoch swaps rebuild and re-warm
/// the whole catalog, so they are timed directly rather than iterated).
fn emit_latency(label: &str, mean_ns: u64, iterations: u64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line =
        format!("{{\"label\":{label:?},\"mean_ns\":{mean_ns},\"iterations\":{iterations}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append the streaming ingest's bounded-memory metric line: the peak
/// resident parse state (one chunk plus the parser's carried-over
/// partial statement) against the whole document a batch parse holds.
fn emit_peak_bytes(label: &str, peak_bytes: usize, batch_bytes: usize) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"peak_bytes\":{peak_bytes},\"batch_bytes\":{batch_bytes}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append one delta-vs-full metric line: wall time of the incremental
/// `run_sharded_delta` over the appended shards against a full re-run of
/// the grown catalog, plus their ratio (the delta speedup).
fn emit_delta_speedup(label: &str, full_ns: u128, delta_ns: u128, speedup: f64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"full_ns\":{full_ns},\"delta_ns\":{delta_ns},\
         \"speedup\":{speedup:.2}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// The catalog as an N-Triples document, the wire format the streaming
/// ingest series parses.
fn ntriples_document(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        let id = record.id.as_iri().expect("catalog ids are IRIs");
        for (property, values) in &record.attributes {
            for value in values {
                out.push_str(&format!(
                    "<{id}> <{property}> \"{}\" .\n",
                    escape_literal(value)
                ));
            }
        }
    }
    out
}

/// The catalog as a Turtle document: one `@prefix` for the local vocab,
/// one subject line per record with a `;`-joined predicate list — the
/// denser wire format, exercising the incremental Turtle parser.
fn turtle_document(records: &[Record]) -> String {
    let mut out = format!("@prefix v: <{}> .\n", vocab::LOCAL_VOCAB_NS);
    for record in records {
        let id = record.id.as_iri().expect("catalog ids are IRIs");
        let facts: Vec<String> = record
            .attributes
            .iter()
            .flat_map(|(property, values)| {
                let predicate = match property.strip_prefix(vocab::LOCAL_VOCAB_NS) {
                    Some(name) => format!("v:{name}"),
                    None => format!("<{property}>"),
                };
                values
                    .iter()
                    .map(move |value| format!("{predicate} \"{}\"", escape_literal(value)))
            })
            .collect();
        out.push_str(&format!("<{id}> {} .\n", facts.join(" ; ")));
    }
    out
}

/// Append the bigram filter pipeline's per-run accounting as one metric
/// JSON line: posting entries removed by the length filter, walk
/// positions removed by the prefix filter, first touches dropped by the
/// positional filter, and verification merges actually run.
fn emit_filter_stats(label: &str, stats: &classilink_linking::BigramFilterStats) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"grams_skipped_prefix\":{},\"postings_skipped_length\":{},\
         \"postings_skipped_position\":{},\"verify_merges\":{}}}\n",
        stats.grams_skipped_prefix,
        stats.postings_skipped_length,
        stats.postings_skipped_position,
        stats.verify_merges,
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// Append the fault-overhead guard's metric line: the end-to-end
/// pipeline throughput of this (failpoint-free) build against the
/// newest committed baseline snapshot, plus their ratio — and the
/// baseline file the comparison was made against, so a stale re-point
/// is visible in the metric itself.
fn emit_fault_overhead(label: &str, baseline_file: &str, baseline_eps: f64, eps: f64, ratio: f64) {
    let Ok(path) = std::env::var("CLASSILINK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"label\":{label:?},\"baseline_file\":{baseline_file:?},\
         \"baseline_elements_per_sec\":{baseline_eps:.1},\
         \"elements_per_sec\":{eps:.1},\"ratio\":{ratio:.4}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(error) = written {
        eprintln!("paper_scale: cannot append to {path}: {error}");
    }
}

/// The `pipeline/single_store` comparisons-per-second recorded in the
/// committed baseline snapshot (`CLASSILINK_BENCH_BASELINE`, defaulting
/// to the **newest** committed `BENCH_pr9.json` — re-point this default
/// whenever a newer snapshot lands), plus the file name it came from so
/// the comparison names its reference. Parsed with string ops because
/// the bench crate deliberately has no JSON dependency.
fn baseline_single_store_eps() -> Option<(String, f64)> {
    let path = std::env::var("CLASSILINK_BENCH_BASELINE")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json").into());
    let file = std::path::Path::new(&path)
        .file_name()
        .map(|name| name.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.clone());
    let snapshot = std::fs::read_to_string(&path).ok()?;
    let line = snapshot
        .lines()
        .find(|l| l.contains("\"paper_scale/pipeline/single_store\""))?;
    let (_, value) = line.split_once("\"elements_per_sec\":")?;
    let number: String = value
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    Some((file, number.parse().ok()?))
}

fn bench_paper_scale(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::paper());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "paper preset: |SL| = {}, |SE| = {}, comparison threads = {threads}",
        scenario.catalog_size(),
        scenario.config.training_links + scenario.config.extra_external,
    );

    let mut group = c.benchmark_group("paper_scale");
    group.sample_size(10);

    // Store build: monolithic vs sharded shared-schema construction.
    group.bench_function("store_build/single", |b| b.iter(|| scenario.local_store()));
    for shards in [4, 16] {
        group.bench_with_input(
            BenchmarkId::new("store_build/sharded", shards),
            &shards,
            |b, &s| b.iter(|| scenario.local_store_sharded(s)),
        );
    }

    // Streaming ingestion: the whole catalog serialised to each wire
    // format and fed through `FeedIngest` in 64 KiB chunks (chunks split
    // statements anywhere). `Throughput::Bytes` makes the series read as
    // **MB/s of feed text**; each format also emits a `peak_bytes`
    // metric line — the largest chunk-plus-carry-over the parser ever
    // held resident — against the full document a batch parse keeps in
    // memory, which is the bounded-memory claim the validator enforces.
    {
        let catalog = scenario.local_store().to_records();
        let per_shard = catalog.len().div_ceil(4);
        let documents = [
            (
                "ntriples",
                FeedFormat::NTriples,
                ntriples_document(&catalog),
            ),
            ("turtle", FeedFormat::Turtle, turtle_document(&catalog)),
        ];
        for (name, format, document) in &documents {
            let bytes = document.as_bytes();
            let mut peak = 0usize;
            let mut probe = FeedIngest::new(*format, SchemaInterner::new(), per_shard);
            for chunk in bytes.chunks(INGEST_CHUNK) {
                probe.feed(chunk).expect("catalog document parses");
                peak = peak.max(chunk.len() + probe.buffered_bytes());
            }
            let streamed = probe.try_finish().expect("catalog document finishes");
            assert_eq!(streamed.len(), catalog.len(), "ingest/{name} lost records");
            println!(
                "ingest/{name}: {} bytes in, peak {} bytes resident ({:.1}% of batch), \
                 {} records into {} shards",
                bytes.len(),
                peak,
                100.0 * peak as f64 / bytes.len() as f64,
                streamed.len(),
                streamed.shard_count(),
            );
            emit_peak_bytes(
                &format!("paper_scale/ingest/{name}/peak_bytes"),
                peak,
                bytes.len(),
            );
            group.throughput(Throughput::Bytes(bytes.len() as u64));
            group.bench_with_input(BenchmarkId::new("ingest", *name), &(), |b, ()| {
                b.iter(|| {
                    let mut ingest = FeedIngest::new(*format, SchemaInterner::new(), per_shard);
                    for chunk in bytes.chunks(INGEST_CHUNK) {
                        ingest.feed(chunk).expect("catalog document parses");
                    }
                    ingest
                        .into_builder()
                        .expect("catalog document finishes")
                        .len()
                })
            });
        }
    }

    // Blocking phase alone: streamed per-shard candidate runs on a
    // 4-shard catalog, one series per blocker, reusing one sink.
    let (blocking_external, blocking_local) = scenario.sharded_stores(4);
    let standard = StandardBlocker::new(default_key(4));
    let sorted = SortedNeighborhoodBlocker::new(default_key(0), 10);
    let bigram = BigramBlocker::new(default_key(0), 0.7);
    let blockers: [(&str, &dyn Blocker); 4] = [
        ("standard", &standard),
        ("sorted-neighborhood", &sorted),
        ("bigram", &bigram),
        // Cartesian only exists in this series because of the run-block
        // sink: ~308 M candidates fit in O(externals × shards) span
        // blocks where the flat pair vector would need ~4.9 GB.
        ("cartesian", &CartesianBlocker),
    ];
    for (name, blocker) in blockers {
        let mut runs = CandidateRuns::new();
        blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        println!(
            "blocking/{name}: {} candidates, queue {} bytes (run blocks) vs {} bytes \
             (pair encoding)",
            runs.total(),
            runs.queue_bytes(),
            runs.pair_bytes(),
        );
        emit_queue_bytes(
            &format!("paper_scale/blocking/{name}/queue_bytes"),
            runs.queue_bytes(),
            runs.pair_bytes(),
            runs.total(),
        );
        group.throughput(Throughput::Elements(runs.total()));
        group.bench_with_input(BenchmarkId::new("blocking", name), &(), |b, ()| {
            b.iter(|| {
                blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
                runs.total()
            })
        });
    }

    // The bigram filter pipeline's own accounting: how much work each
    // filter removed on the paper preset, as one metric JSON line the
    // bench-smoke validator checks alongside the queue metrics.
    {
        let mut runs = CandidateRuns::new();
        bigram.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        let stats = runs.bigram_filter_stats();
        println!(
            "blocking/bigram filter stats: {} postings skipped (length), {} grams skipped \
             (prefix), {} first touches dropped (position), {} verify merges",
            stats.postings_skipped_length,
            stats.grams_skipped_prefix,
            stats.postings_skipped_position,
            stats.verify_merges,
        );
        emit_filter_stats("paper_scale/blocking/bigram/filter_stats", &stats);
    }

    // Threshold sweep: the filtered probe across the paper's operating
    // range. Lower thresholds widen posting windows and emit more
    // candidates; the series shows how the filters degrade gracefully.
    for threshold in [0.4, 0.6, 0.8] {
        let swept = BigramBlocker::new(default_key(0), threshold);
        let mut runs = CandidateRuns::new();
        swept.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        group.throughput(Throughput::Elements(runs.total()));
        group.bench_with_input(
            BenchmarkId::new("blocking/bigram/threshold", format!("{threshold:.1}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    swept.stream_candidates(
                        &blocking_external,
                        (&blocking_local).into(),
                        &mut runs,
                    );
                    runs.total()
                })
            },
        );
    }

    // Comparison phase over standard-blocking candidates. Throughput is
    // the candidate count, so the report reads as comparisons/second.
    let external = scenario.external_store();
    let local = scenario.local_store();
    let blocker = StandardBlocker::new(default_key(4));
    let comparator = RecordComparator::single(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);
    let candidates = blocker.candidate_pairs(&external, &local).len() as u64;
    println!("standard blocking candidates: {candidates}");

    // One instrumented run: how much of the sharded pipeline's wall
    // time is blocking vs comparison (indexes warm, like the benches).
    {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        let mut runs = CandidateRuns::new();
        let start = Instant::now();
        blocker.stream_candidates(&blocking_external, (&blocking_local).into(), &mut runs);
        let blocking = start.elapsed();
        let start = Instant::now();
        let result = pipeline.run_sharded(&blocking_external, &blocking_local);
        let total = start.elapsed();
        let comparison = total.saturating_sub(blocking);
        println!(
            "phase split (sharded/4): blocking {blocking:?} ({:.1}%), comparison ~{comparison:?} \
             ({:.1}%) of {total:?} total, {} comparisons",
            100.0 * blocking.as_secs_f64() / total.as_secs_f64(),
            100.0 * comparison.as_secs_f64() / total.as_secs_f64(),
            result.comparisons,
        );
    }

    group.throughput(Throughput::Elements(candidates));
    group.bench_function("pipeline/single_store", |b| {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        b.iter(|| pipeline.run_stores(&external, &local))
    });

    // Fault-overhead guard: this build compiles failpoints to nothing
    // (the bench crate never enables the `failpoints` feature), so a
    // hand-timed end-to-end run must stay within noise of the newest
    // committed baseline snapshot (see `baseline_single_store_eps`). The
    // ratio is always printed and emitted as a metric line; it only
    // *fails* the run under CLASSILINK_BENCH_ENFORCE_FAULT_OVERHEAD,
    // because CI machines are not comparable to the machine that
    // recorded the snapshot — there the line is schema-validated and
    // eyeballed instead.
    {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        let start = Instant::now();
        let result = pipeline.run_stores(&external, &local);
        let eps = result.comparisons as f64 / start.elapsed().as_secs_f64();
        match baseline_single_store_eps() {
            Some((baseline_file, baseline_eps)) => {
                let ratio = eps / baseline_eps;
                println!(
                    "pipeline/fault_overhead: {eps:.0} cmp/s vs baseline {baseline_eps:.0} \
                     cmp/s from {baseline_file} (ratio {ratio:.3})"
                );
                emit_fault_overhead(
                    "paper_scale/pipeline/fault_overhead",
                    &baseline_file,
                    baseline_eps,
                    eps,
                    ratio,
                );
                if std::env::var("CLASSILINK_BENCH_ENFORCE_FAULT_OVERHEAD").is_ok() {
                    assert!(
                        ratio >= 0.85,
                        "failpoint instrumentation cost throughput: {eps:.0} cmp/s is \
                         {ratio:.3} of the {baseline_eps:.0} cmp/s baseline ({baseline_file})"
                    );
                }
            }
            None => {
                println!("pipeline/fault_overhead: no baseline snapshot, emitting ratio 1.0");
                emit_fault_overhead("paper_scale/pipeline/fault_overhead", "none", eps, eps, 1.0);
            }
        }
    }
    for shards in [1, 2, 4, 8, 16] {
        let (sharded_external, sharded_local) = scenario.sharded_stores(shards);
        group.bench_with_input(
            BenchmarkId::new("pipeline/sharded", shards),
            &shards,
            |b, _| {
                let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
                b.iter(|| pipeline.run_sharded(&sharded_external, &sharded_local))
            },
        );
    }

    // Incremental delta linking: grow a 4-shard base catalog by an
    // appended batch of {1, 10}% of the records (sampled across the
    // catalog) and link **only the appended shard** with
    // `run_sharded_delta`, against a full re-run of the grown catalog.
    // Hand-timed on warm indexes (one untimed full run first) and
    // emitted as a `delta/append_Npct` metric line carrying both wall
    // times and their ratio — the speedup the append-only epoch path
    // buys over relinking the world.
    {
        let catalog = scenario.local_store().to_records();
        for pct in [1usize, 10] {
            let (base_records, delta_records): (Vec<Record>, Vec<Record>) =
                catalog.iter().enumerate().fold(
                    (Vec::new(), Vec::new()),
                    |(mut base, mut delta), (i, record)| {
                        if i % 100 < pct {
                            delta.push(record.clone());
                        } else {
                            base.push(record.clone());
                        }
                        (base, delta)
                    },
                );
            let base = ShardedStore::from_records(&base_records, 4);
            let first_new = base.shard_count();
            let mut delta = base.delta_builder();
            delta.begin_shard();
            for record in &delta_records {
                delta.push(record);
            }
            let appended = base.append_shards(delta);
            let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
            pipeline.run_sharded(&external, &appended); // warm every index once

            let start = Instant::now();
            let full = pipeline.run_sharded(&external, &appended);
            let full_ns = start.elapsed().as_nanos().max(1);
            let start = Instant::now();
            let delta_run = pipeline.run_sharded_delta(&external, &appended, first_new);
            let delta_ns = start.elapsed().as_nanos().max(1);
            let speedup = full_ns as f64 / delta_ns as f64;
            println!(
                "delta/append_{pct}pct: delta {delta_ns} ns ({} comparisons) vs full \
                 {full_ns} ns ({} comparisons) — {speedup:.1}x",
                delta_run.comparisons, full.comparisons,
            );
            emit_delta_speedup(
                &format!("paper_scale/delta/append_{pct}pct"),
                full_ns,
                delta_ns,
                speedup,
            );
        }
    }

    // Serving layer: single-record probes against a pre-warmed 4-shard
    // epoch, single-threaded with one reused `ProbeScratch`, one series
    // per blocker; throughput is the probe count, so the report reads
    // **probes per second**. Each blocker also emits two republish
    // timing lines — `serve/swap_latency/<blocker>`, the wall time of a
    // cold catalog rebuild plus `Linker::swap` (epoch build + warm +
    // pointer flip), and `serve/append_latency/<blocker>`, the O(delta)
    // `Linker::append` — hand-timed because iterating catalog rebuilds
    // through criterion would dwarf the smoke run.
    {
        let probe_records: Vec<_> = (0..64).map(|e| external.record(e)).collect();
        let catalog_records = local.to_records();
        // A 1% slice of the catalog, re-fed as each timed `append` batch.
        let append_batch: Vec<Record> = catalog_records.iter().step_by(100).cloned().collect();
        let serve_blockers: [(&str, &(dyn Blocker + Sync)); 2] =
            [("standard", &standard), ("bigram", &bigram)];
        for (name, blocker) in serve_blockers {
            let linker = Linker::new(blocker, &comparator, blocking_local.clone());
            let mut scratch = ProbeScratch::new();
            let mut warm_links = 0usize;
            for record in &probe_records {
                warm_links += linker.probe_with(record, &mut scratch).matches.len();
            }
            println!(
                "serve/probe/{name}: {warm_links} links across {} warm probes",
                probe_records.len(),
            );
            group.throughput(Throughput::Elements(probe_records.len() as u64));
            group.bench_with_input(BenchmarkId::new("serve/probe", name), &(), |b, ()| {
                b.iter(|| {
                    let mut links = 0usize;
                    for record in &probe_records {
                        links += linker.probe_with(record, &mut scratch).matches.len();
                    }
                    links
                })
            });
            // Full republish: columnarise the whole catalog from records
            // and swap it in (epoch build + warm). Shards are Arc-shared
            // since the append-only epoch work, so swapping a *clone* of
            // the serving catalog would reuse its warm indexes and time
            // only the pointer flip — the honest O(catalog) cost needs a
            // cold replacement each time.
            const SWAPS: u64 = 2;
            let start = Instant::now();
            for _ in 0..SWAPS {
                linker.swap(ShardedStore::from_records(&catalog_records, 4));
            }
            let mean_ns =
                u64::try_from(start.elapsed().as_nanos() / u128::from(SWAPS)).unwrap_or(u64::MAX);
            println!("serve/swap_latency/{name}: {mean_ns} ns mean over {SWAPS} cold swaps");
            emit_latency(
                &format!("paper_scale/serve/swap_latency/{name}"),
                mean_ns.max(1),
                SWAPS,
            );

            // The incremental republish beside the full one: each
            // `Linker::append` columnarises a 1% batch as one new shard
            // and warms only that shard — the O(delta) counterpart of
            // the full-rebuild swap above.
            const APPENDS: u64 = 2;
            let start = Instant::now();
            for _ in 0..APPENDS {
                let mut delta = linker.delta_builder();
                delta.begin_shard();
                for record in &append_batch {
                    delta.push(record);
                }
                linker.append(delta);
            }
            let append_ns =
                u64::try_from(start.elapsed().as_nanos() / u128::from(APPENDS)).unwrap_or(u64::MAX);
            println!(
                "serve/append_latency/{name}: {append_ns} ns mean over {APPENDS} appends of \
                 {} records — {:.1}x below the full swap",
                append_batch.len(),
                mean_ns as f64 / append_ns.max(1) as f64,
            );
            emit_latency(
                &format!("paper_scale/serve/append_latency/{name}"),
                append_ns.max(1),
                APPENDS,
            );
        }
    }

    // Persistence: spill and load throughput over the 4-shard catalog,
    // measured in **MB/s of on-disk snapshot footprint**
    // (`Throughput::Bytes` of schema + shards + manifest). The spill
    // iteration clears the directory first so every pass pays the full
    // serialize/write/fsync/commit cost rather than the content-addressed
    // reuse path — a slightly conservative MB/s. A hand-timed
    // `persist/recovery_latency` line then measures the crash-recovery
    // restart: corrupt the newest manifest, re-open, fall back one
    // generation — the cost of the "corruption-recovering restart" claim.
    {
        use classilink_linking::CatalogSnapshot;
        let dir =
            std::env::temp_dir().join(format!("classilink_bench_persist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let receipt = CatalogSnapshot::write(&dir, &blocking_local).expect("snapshot");
        println!(
            "persist/snapshot: {} shards, {} bytes on disk",
            blocking_local.shard_count(),
            receipt.total_bytes,
        );
        group.throughput(Throughput::Bytes(receipt.total_bytes));
        group.bench_function("persist/spill", |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                CatalogSnapshot::write(&dir, &blocking_local)
                    .expect("snapshot")
                    .bytes_written
            })
        });

        let _ = std::fs::remove_dir_all(&dir);
        CatalogSnapshot::write(&dir, &blocking_local).expect("snapshot");
        group.throughput(Throughput::Bytes(receipt.total_bytes));
        group.bench_function("persist/load", |b| {
            b.iter(|| {
                let (restored, _) = CatalogSnapshot::open(&dir).expect("open");
                restored.len()
            })
        });

        const RECOVERIES: u64 = 2;
        let mut recovery_ns = 0u128;
        for _ in 0..RECOVERIES {
            // Commit a newer generation and corrupt its manifest seal.
            let receipt = CatalogSnapshot::write(&dir, &blocking_local).expect("snapshot");
            let mut bytes = std::fs::read(&receipt.manifest).expect("manifest bytes");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&receipt.manifest, bytes).expect("corrupt manifest");
            let start = Instant::now();
            let (restored, report) = CatalogSnapshot::open(&dir).expect("fallback");
            recovery_ns += start.elapsed().as_nanos();
            assert!(report.recovered_from_fallback, "the corruption must be hit");
            assert_eq!(restored.len(), blocking_local.len());
        }
        let mean_ns = u64::try_from(recovery_ns / u128::from(RECOVERIES)).unwrap_or(u64::MAX);
        println!(
            "persist/recovery_latency: {mean_ns} ns mean over {RECOVERIES} \
             corrupt-manifest restarts"
        );
        emit_latency(
            "paper_scale/persist/recovery_latency",
            mean_ns.max(1),
            RECOVERIES,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_paper_scale);
criterion_main!(benches);
