//! The paper preset at full scale: `ScenarioConfig::paper()` — a 30 000
//! product catalog, 10 265 expert links, the 566/226 ontology — run
//! through store construction and the blocking + comparison pipeline,
//! with the **shard count as the swept parameter**.
//!
//! Two series are tracked (per the ROADMAP's "Benchmark the paper
//! preset" item):
//!
//! * `store_build/*` — time to columnarise the catalog, single-store vs
//!   sharded (shared-schema) construction.
//! * `pipeline/*` — the end-to-end blocking + comparison phase on
//!   standard key blocking, with `Throughput::Elements` set to the
//!   candidate count so the shim reports **comparisons per second**;
//!   `single_store` is the monolithic baseline, `sharded/N` routes the
//!   same candidates through N per-shard task queues with work stealing.

use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_eval::blocking_eval::default_key;
use classilink_linking::blocking::{Blocker, StandardBlocker};
use classilink_linking::{LinkagePipeline, RecordComparator, SimilarityMeasure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_paper_scale(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::paper());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "paper preset: |SL| = {}, |SE| = {}, comparison threads = {threads}",
        scenario.catalog_size(),
        scenario.config.training_links + scenario.config.extra_external,
    );

    let mut group = c.benchmark_group("paper_scale");
    group.sample_size(10);

    // Store build: monolithic vs sharded shared-schema construction.
    group.bench_function("store_build/single", |b| b.iter(|| scenario.local_store()));
    for shards in [4, 16] {
        group.bench_with_input(
            BenchmarkId::new("store_build/sharded", shards),
            &shards,
            |b, &s| b.iter(|| scenario.local_store_sharded(s)),
        );
    }

    // Comparison phase over standard-blocking candidates. Throughput is
    // the candidate count, so the report reads as comparisons/second.
    let external = scenario.external_store();
    let local = scenario.local_store();
    let blocker = StandardBlocker::new(default_key(4));
    let comparator = RecordComparator::single(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);
    let candidates = blocker.candidate_pairs(&external, &local).len() as u64;
    println!("standard blocking candidates: {candidates}");
    group.throughput(Throughput::Elements(candidates));

    group.bench_function("pipeline/single_store", |b| {
        let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
        b.iter(|| pipeline.run_stores(&external, &local))
    });
    for shards in [1, 2, 4, 8, 16] {
        let (sharded_external, sharded_local) = scenario.sharded_stores(shards);
        group.bench_with_input(
            BenchmarkId::new("pipeline/sharded", shards),
            &shards,
            |b, _| {
                let pipeline = LinkagePipeline::new(&blocker, &comparator).with_threads(threads);
                b.iter(|| pipeline.run_sharded(&sharded_external, &sharded_local))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_scale);
criterion_main!(benches);
