//! Experiment E5: the rule-based reduction vs the blocking baselines of the
//! related-work section (standard blocking, sorted neighbourhood, bi-gram
//! indexing, cartesian), plus the end-to-end comparison phase — all running
//! on the interned columnar [`RecordStore`], so the timed hot paths are
//! id-based (no property-IRI hashing, no term cloning per pair).

use classilink_bench::paper_learner;
use classilink_core::{RuleClassifier, RuleLearner};
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_eval::blocking_eval::default_key;
use classilink_eval::blocking_eval::{compare_blockers, render, stores_and_truth};
use classilink_linking::blocking::{
    BigramBlocker, Blocker, RuleBasedBlocker, SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{CartesianBlocker, LinkagePipeline, RecordComparator, SimilarityMeasure};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_blocking(c: &mut Criterion) {
    // Regenerate the comparison table once on the small scenario.
    let small = generate(&ScenarioConfig::small());
    let rows = compare_blockers(&small, &paper_learner(), 0.4, 7, 0.7).expect("comparison runs");
    println!(
        "\n=== Candidate-pair generation (|SE| = {}, |SL| = {}) ===",
        small.dataset.item_count(classilink_rdf::Source::External),
        small.catalog_size()
    );
    println!("{}", render(&rows).to_ascii());

    // Time each blocking strategy on the tiny scenario.
    let scenario = generate(&ScenarioConfig::tiny());
    let (external, local, _) = stores_and_truth(&scenario);
    let config = paper_learner().with_support_threshold(0.01);
    let outcome = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .unwrap();
    let classifier = RuleClassifier::from_outcome(&outcome, &config).with_min_confidence(0.4);

    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);
    group.bench_function("store_build", |b| b.iter(|| scenario.local_store()));
    group.bench_function("standard_blocking", |b| {
        let blocker = StandardBlocker::new(default_key(4));
        b.iter(|| blocker.candidate_pairs(&external, &local))
    });
    group.bench_function("sorted_neighborhood", |b| {
        let blocker = SortedNeighborhoodBlocker::new(default_key(0), 7);
        b.iter(|| blocker.candidate_pairs(&external, &local))
    });
    group.bench_function("bigram_indexing", |b| {
        let blocker = BigramBlocker::new(default_key(0), 0.7);
        b.iter(|| blocker.candidate_pairs(&external, &local))
    });
    group.bench_function("classification_rules", |b| {
        let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology);
        b.iter(|| blocker.candidate_pairs(&external, &local))
    });
    // End-to-end blocking + comparison phase on the store: id-resolved
    // attribute rules, precomputed full-text fallback, index-sorted links.
    let comparator = RecordComparator::single(
        classilink_datagen::vocab::PROVIDER_PART_NUMBER,
        classilink_datagen::vocab::LOCAL_PART_NUMBER,
        SimilarityMeasure::JaroWinkler,
    )
    .with_thresholds(0.9, 0.75);
    group.bench_function("pipeline_rules_end_to_end", |b| {
        let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
            .with_fallback(true);
        let pipeline = LinkagePipeline::new(&blocker, &comparator);
        b.iter(|| pipeline.run_stores(&external, &local))
    });
    group.bench_function("pipeline_cartesian_comparison_phase", |b| {
        let pipeline = LinkagePipeline::new(&CartesianBlocker, &comparator);
        b.iter(|| pipeline.run_stores(&external, &local))
    });
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
