//! Micro-benchmark of the string-similarity measures used by the downstream
//! linking method.
//!
//! Two series per measure: `compare_pairs/*` is the classic per-call API
//! (allocates char buffers / hash sets per pair — the pre-PR-3
//! behaviour), `scratch_pairs/*` threads one reusable [`SimScratch`]
//! through the kernel variants (the comparison hot path; for the
//! edit/Jaro family this is the allocation-free path, the set measures
//! additionally need the store-level token index benched in
//! `paper_scale`).

use classilink_bench::part_number_corpus;
use classilink_linking::{SimScratch, SimilarityMeasure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_similarity(c: &mut Criterion) {
    let corpus = part_number_corpus(200);
    let pairs: Vec<(&str, &str)> = corpus
        .iter()
        .zip(corpus.iter().skip(1))
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let mut group = c.benchmark_group("similarity");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for measure in SimilarityMeasure::all() {
        group.bench_with_input(
            BenchmarkId::new("compare_pairs", measure.name()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    pairs
                        .iter()
                        .map(|(x, y)| measure.compare(x, y))
                        .sum::<f64>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scratch_pairs", measure.name()),
            &pairs,
            |b, pairs| {
                let mut scratch = SimScratch::new();
                b.iter(|| {
                    pairs
                        .iter()
                        .map(|(x, y)| measure.compare_with(&mut scratch, x, y))
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
