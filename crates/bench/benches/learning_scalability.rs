//! Scalability of the learning algorithm with the training-set size
//! (the paper's motivation is precisely that naive pairwise comparison does
//! not scale; learning itself must stay cheap).

use classilink_bench::paper_learner;
use classilink_core::RuleLearner;
use classilink_datagen::scenario::{generate, ScenarioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning_scalability");
    group.sample_size(10);
    for links in [250usize, 1000, 4000] {
        let config = ScenarioConfig {
            training_links: links,
            catalog_size: links * 2,
            extra_external: 0,
            ..ScenarioConfig::small()
        };
        let scenario = generate(&config);
        group.throughput(Throughput::Elements(links as u64));
        group.bench_with_input(BenchmarkId::new("learn", links), &scenario, |b, s| {
            b.iter(|| {
                RuleLearner::new(paper_learner())
                    .learn(&s.training, &s.ontology)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
