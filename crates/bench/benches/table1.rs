//! Experiment E1 (Table 1): classification rule results by confidence tier.
//!
//! Running this bench regenerates Table 1 on the generated catalog (printed
//! once before timing) and then measures the cost of the learning +
//! evaluation pipeline that produces it. For the paper-scale table, run
//! `cargo run --release --example electronics_catalog`.

use classilink_bench::paper_learner;
use classilink_core::RuleLearner;
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_eval::table1::Table1Experiment;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table(scale: &str, config: &ScenarioConfig) {
    let scenario = generate(config);
    let experiment = Table1Experiment::with_learner(paper_learner());
    let (_, report) = experiment
        .run_on_training(&scenario.training, &scenario.ontology)
        .expect("experiment runs");
    println!(
        "\n=== Table 1 ({scale} scale: |TS| = {}) ===",
        scenario.training.len()
    );
    println!(
        "distinct segments: {} (paper 7842), occurrences: {} (paper 26077), selected: {} (paper 7058)",
        report.distinct_segments, report.segment_occurrences, report.selected_segment_occurrences
    );
    println!(
        "frequent classes: {} (paper 68), rules: {} (paper 144), classes with rules: {} (paper 16)",
        report.frequent_classes, report.total_rules, report.classes_with_rules
    );
    println!("{}", report.to_table().to_ascii());
}

fn bench_table1(c: &mut Criterion) {
    print_table("small", &ScenarioConfig::small());

    let scenario = generate(&ScenarioConfig::small());
    let experiment = Table1Experiment::with_learner(paper_learner());
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("learn_rules_small", |b| {
        b.iter(|| {
            RuleLearner::new(paper_learner())
                .learn(&scenario.training, &scenario.ontology)
                .unwrap()
        })
    });
    group.bench_function("learn_and_evaluate_small", |b| {
        b.iter(|| {
            experiment
                .run_on_training(&scenario.training, &scenario.ontology)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
