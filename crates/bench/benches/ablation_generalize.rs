//! Ablation A3: the paper's future-work extension — rules generalised
//! through the subsumption hierarchy, and the coverage they add.

use classilink_bench::paper_learner;
use classilink_core::{generalize, GeneralizeConfig, RuleLearner};
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_eval::generalization_ablation;
use classilink_eval::table1::EvaluationItem;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_generalize(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::small());
    let config = paper_learner();
    let items: Vec<EvaluationItem> = scenario
        .training
        .examples()
        .iter()
        .map(|e| (e.classes.first().copied(), e.facts.clone()))
        .collect();

    let point = generalization_ablation(
        &scenario.training,
        &scenario.ontology,
        &items,
        &config,
        &GeneralizeConfig::default(),
    )
    .expect("ablation runs");
    let (base_dec, base_prec, base_rec) = point.base;
    let (gen_dec, gen_prec, gen_rec) = point.generalized;
    println!(
        "\n=== Ablation A3: subsumption generalisation (|TS| = {}) ===",
        items.len()
    );
    println!("variant                 decisions  precision  recall");
    println!("leaf rules only         {base_dec:<10} {base_prec:<10.3} {base_rec:<7.3}");
    println!("with generalised rules  {gen_dec:<10} {gen_prec:<10.3} {gen_rec:<7.3}");
    println!("generalised rules added: {}", point.generalized_rules);

    let base = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .unwrap();
    let mut group = c.benchmark_group("ablation_generalize");
    group.sample_size(10);
    group.bench_function("generalize_rules", |b| {
        b.iter(|| {
            generalize(
                &scenario.training,
                &scenario.ontology,
                &config,
                &base,
                &GeneralizeConfig::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generalize);
criterion_main!(benches);
