//! Ablation A1: how the choice of segmenter (the expert's `split` function)
//! affects the learnt rules and their classification quality.

use classilink_bench::paper_learner;
use classilink_core::RuleLearner;
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_eval::segmenter_ablation;
use classilink_eval::table1::EvaluationItem;
use classilink_segment::SegmenterKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::small());
    let items: Vec<EvaluationItem> = scenario
        .training
        .examples()
        .iter()
        .map(|e| (e.classes.first().copied(), e.facts.clone()))
        .collect();
    let segmenters = [
        SegmenterKind::Separator,
        SegmenterKind::AlphaNumTransition,
        SegmenterKind::CharNGram(3),
        SegmenterKind::PaddedBigram,
    ];

    // Regenerate the ablation table once.
    let points = segmenter_ablation(
        &scenario.training,
        &scenario.ontology,
        &items,
        &paper_learner(),
        &segmenters,
    )
    .expect("ablation runs");
    println!(
        "\n=== Ablation A1: segmentation strategy (|TS| = {}) ===",
        items.len()
    );
    println!("segmenter            segments  rules  precision  recall");
    for p in &points {
        println!(
            "{:<20} {:<9} {:<6} {:<10.3} {:<7.3}",
            p.segmenter, p.distinct_segments, p.rules, p.precision, p.recall
        );
    }

    // Time learning under each segmenter.
    let mut group = c.benchmark_group("ablation_segmenter");
    group.sample_size(10);
    for kind in segmenters {
        let config = paper_learner().with_segmenter(kind.clone());
        group.bench_with_input(
            BenchmarkId::new("learn", kind.name()),
            &config,
            |b, config| {
                b.iter(|| {
                    RuleLearner::new(config.clone())
                        .learn(&scenario.training, &scenario.ontology)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
