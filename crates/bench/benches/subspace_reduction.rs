//! Experiments E3 / E4: linking-space reduction as a function of the rule
//! confidence threshold (the paper's in-text claims: average lift > 20 at
//! every tier, "the linkage space can be divided by 5 for one instance" even
//! for a class holding 20% of the catalog).

use classilink_bench::paper_learner;
use classilink_core::{RuleClassifier, RuleLearner, SubspaceBuilder};
use classilink_datagen::scenario::{generate, ScenarioConfig};
use classilink_rdf::Term;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_subspace(c: &mut Criterion) {
    let scenario = generate(&ScenarioConfig::small());
    let config = paper_learner();
    let outcome = RuleLearner::new(config.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("learning succeeds");
    let batch: Vec<(Term, Vec<(String, String)>)> = scenario
        .training
        .examples()
        .iter()
        .map(|e| (e.external_item.clone(), e.facts.clone()))
        .collect();

    // Regenerate the reduction series once.
    let points = classilink_eval::reduction_sweep(
        &outcome,
        &config,
        &scenario.instances,
        &scenario.ontology,
        &batch,
        scenario.catalog_size(),
        &[1.0, 0.8, 0.6, 0.4, 0.2],
    );
    println!(
        "\n=== Linking-space reduction vs confidence threshold (|SL| = {}) ===",
        scenario.catalog_size()
    );
    println!("conf    rules  classified  remaining  mean-factor  avg-lift");
    for p in &points {
        println!(
            "{:<7} {:<6} {:<11.3} {:<10.3} {:<12.1} {:<8.1}",
            p.confidence_threshold,
            p.rules,
            p.classified_fraction,
            p.remaining_fraction,
            p.mean_reduction_factor,
            p.avg_lift,
        );
    }

    // Time the subspace computation with confidence-1 rules on a sample.
    let classifier = RuleClassifier::from_outcome(&outcome, &config).with_min_confidence(1.0);
    let builder = SubspaceBuilder::new(&classifier, &scenario.instances, &scenario.ontology);
    let sample: Vec<_> = batch.iter().take(200).cloned().collect();
    let mut group = c.benchmark_group("subspace_reduction");
    group.sample_size(10);
    group.bench_function("reduction_stats_200_items", |b| {
        b.iter(|| builder.reduction_stats(&sample, scenario.catalog_size()))
    });
    group.bench_function("classify_one_item", |b| {
        let facts = &batch[0].1;
        b.iter(|| classifier.classify_facts(facts))
    });
    group.finish();
}

criterion_group!(benches, bench_subspace);
criterion_main!(benches);
