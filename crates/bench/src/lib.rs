//! # classilink-bench
//!
//! Criterion benchmark targets regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index). Each bench
//! prints the regenerated table/series once before timing the pipeline that
//! produces it, so `cargo bench` doubles as the experiment runner.
//!
//! Shared helpers used by several bench targets live here.

use classilink_core::{LearnerConfig, PropertySelection};
use classilink_datagen::vocab;

/// The learner configuration shared by the experiment benches: the paper's
/// `th = 0.002`, restricted to the provider part-number property (the
/// expert's choice in the paper).
pub fn paper_learner() -> LearnerConfig {
    LearnerConfig::paper().with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER))
}

/// A corpus of realistic part numbers used by the micro-benchmarks
/// (segmentation, similarity).
pub fn part_number_corpus(n: usize) -> Vec<String> {
    let series = [
        "CRCW0805", "ERJ6", "T83", "TAJ", "1N4148", "BC547", "LM317", "GRM188",
    ];
    let units = ["ohm", "uF", "63V", "25V", "5%", "X7R", "TO220", "SOD123"];
    (0..n)
        .map(|i| {
            format!(
                "{}-{:05X}-{}-{}",
                series[i % series.len()],
                i * 2654435761 % 0xFFFFF,
                units[i % units.len()],
                units[(i * 7 + 3) % units.len()],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = part_number_corpus(10);
        let b = part_number_corpus(10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|pn| pn.contains('-')));
    }

    #[test]
    fn paper_learner_uses_the_provider_part_number() {
        let cfg = paper_learner();
        assert_eq!(cfg.support_threshold, 0.002);
        assert!(cfg.properties.includes(vocab::PROVIDER_PART_NUMBER));
        assert!(!cfg.properties.includes(vocab::PROVIDER_MANUFACTURER));
    }
}
