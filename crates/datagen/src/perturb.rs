//! String perturbations simulating provider-side rewriting of part numbers.
//!
//! Provider documents rarely spell a part number exactly as the catalog
//! does: separators change, case changes, characters are dropped or typo'd,
//! suffixes are added. These perturbations exercise the similarity measures
//! of the linking pipeline while keeping the segments that the learnt rules
//! rely on mostly intact.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probabilities of each perturbation applied to a provider-side value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbationConfig {
    /// Probability of swapping the separator characters (`-` ↔ `.` / `_`).
    pub separator_swap: f64,
    /// Probability of lower-casing the whole value.
    pub lowercase: f64,
    /// Probability of introducing one character typo (substitution).
    pub typo: f64,
    /// Probability of appending a provider-specific suffix (e.g. `-TR`,
    /// `/REEL`).
    pub suffix: f64,
    /// Probability of dropping one whole segment.
    pub drop_segment: f64,
}

impl Default for PerturbationConfig {
    fn default() -> Self {
        PerturbationConfig {
            separator_swap: 0.3,
            lowercase: 0.2,
            typo: 0.1,
            suffix: 0.25,
            drop_segment: 0.05,
        }
    }
}

impl PerturbationConfig {
    /// No perturbation at all (provider copies the catalog value verbatim).
    pub fn none() -> Self {
        PerturbationConfig {
            separator_swap: 0.0,
            lowercase: 0.0,
            typo: 0.0,
            suffix: 0.0,
            drop_segment: 0.0,
        }
    }

    /// Apply the configured perturbations to `value` using `rng`.
    pub fn apply(&self, value: &str, rng: &mut StdRng) -> String {
        let mut out = value.to_string();
        if rng.gen_bool(self.separator_swap.clamp(0.0, 1.0)) {
            let replacement = *["_", ".", " ", "/"]
                .get(rng.gen_range(0..4usize))
                .expect("index in range");
            out = out.replace('-', replacement);
        }
        if rng.gen_bool(self.lowercase.clamp(0.0, 1.0)) {
            out = out.to_lowercase();
        }
        if rng.gen_bool(self.typo.clamp(0.0, 1.0)) && !out.is_empty() {
            let chars: Vec<char> = out.chars().collect();
            let pos = rng.gen_range(0..chars.len());
            // Substitute with a random alphanumeric character.
            let substitutes = "abcdefghijklmnopqrstuvwxyz0123456789";
            let sub = substitutes
                .chars()
                .nth(rng.gen_range(0..substitutes.len()))
                .expect("index in range");
            let mut new: String = chars[..pos].iter().collect();
            new.push(sub);
            new.extend(&chars[pos + 1..]);
            out = new;
        }
        if rng.gen_bool(self.suffix.clamp(0.0, 1.0)) {
            let suffix = ["-TR", "-RL", "/REEL", "-T1", "-BULK"][rng.gen_range(0..5usize)];
            out.push_str(suffix);
        }
        if rng.gen_bool(self.drop_segment.clamp(0.0, 1.0)) {
            let parts: Vec<&str> = out.split('-').collect();
            if parts.len() > 2 {
                let drop = rng.gen_range(1..parts.len());
                let kept: Vec<&str> = parts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| (i != drop).then_some(*p))
                    .collect();
                out = kept.join("-");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_config_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PerturbationConfig::none();
        for value in ["CRCW0805-10K-5%-63V", "T83A225", ""] {
            assert_eq!(cfg.apply(value, &mut rng), value);
        }
    }

    #[test]
    fn perturbations_are_deterministic_under_a_seed() {
        let cfg = PerturbationConfig::default();
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        for value in ["CRCW0805-10K-5-63V", "T83-A225-25V", "LM317-TO220"] {
            assert_eq!(cfg.apply(value, &mut rng1), cfg.apply(value, &mut rng2));
        }
    }

    #[test]
    fn aggressive_config_changes_values() {
        let cfg = PerturbationConfig {
            separator_swap: 1.0,
            lowercase: 1.0,
            typo: 1.0,
            suffix: 1.0,
            drop_segment: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let out = cfg.apply("CRCW0805-10K-63V", &mut rng);
        assert_ne!(out, "CRCW0805-10K-63V");
        // The suffix (applied after lower-casing) keeps its own case; the
        // original part of the value must have been lower-cased.
        let original_part = &out[..out.len().min("CRCW0805-10K-63V".len())];
        assert_eq!(original_part, original_part.to_lowercase());
        // A packaging suffix was appended.
        assert!(out.len() > "CRCW0805-10K-63V".len() - 4);
    }

    #[test]
    fn drop_segment_removes_one_dash_separated_part() {
        let cfg = PerturbationConfig {
            separator_swap: 0.0,
            lowercase: 0.0,
            typo: 0.0,
            suffix: 0.0,
            drop_segment: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let out = cfg.apply("A-B-C-D", &mut rng);
        assert_eq!(out.split('-').count(), 3);
        // Values with at most two segments are left intact.
        assert_eq!(cfg.apply("A-B", &mut rng), "A-B");
    }

    #[test]
    fn typo_preserves_length() {
        let cfg = PerturbationConfig {
            separator_swap: 0.0,
            lowercase: 0.0,
            typo: 1.0,
            suffix: 0.0,
            drop_segment: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let input = "CRCW0805";
        let out = cfg.apply(input, &mut rng);
        assert_eq!(out.chars().count(), input.chars().count());
    }
}
