//! A toponym scenario demonstrating the generality of the approach.
//!
//! The paper motivates value-based classification with examples beyond part
//! numbers: "toponyms found in rdfs:label often contain types of
//! geographical places ('Dresden Elbe Valley', 'Place de la Concorde',
//! 'Copacabana Beach')". This generator produces a small geographic data set
//! where the class-revealing segment is a word of the label, so the same
//! learner can be exercised on a second domain (the paper's conclusion:
//! "To show the generality of our approach we plan to test it on data from
//! other domains").

use classilink_core::{TrainingExample, TrainingSet};
use classilink_ontology::{ClassId, Ontology, OntologyBuilder};
use classilink_rdf::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The label property used by the geographic data.
pub const GEO_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// A held-out place: `(item, facts, gold class)`.
pub type HeldoutPlace = (Term, Vec<(String, String)>, ClassId);

/// A generated geographic scenario.
pub struct GeoScenario {
    /// The place-type ontology (Place → Beach / Museum / Bridge / …).
    pub ontology: Ontology,
    /// The training set of labelled places.
    pub training: TrainingSet,
    /// Held-out items with their gold classes, as `(item, facts, class)`.
    pub heldout: Vec<HeldoutPlace>,
}

const PLACE_TYPES: &[(&str, &str)] = &[
    ("Beach", "Beach"),
    ("Museum", "Museum"),
    ("Bridge", "Bridge"),
    ("Palace", "Palace"),
    ("Valley", "Valley"),
    ("Square", "Square"),
    ("Cathedral", "Cathedral"),
    ("Lighthouse", "Lighthouse"),
];

const NAME_STEMS: &[&str] = &[
    "Dresden",
    "Copacabana",
    "Concorde",
    "Alexander",
    "Hidden",
    "Golden",
    "Royal",
    "Old Town",
    "Grand",
    "Saint Martin",
    "North Shore",
    "Elbe",
    "Harbour",
    "Sunset",
    "Marble",
    "Victoria",
    "Crystal",
    "Windsor",
    "Eagle",
    "Silver",
];

/// Generate a toponym scenario with `per_class` training labels per place
/// type and `heldout_per_class` held-out items.
pub fn geo_scenario(per_class: usize, heldout_per_class: usize, seed: u64) -> GeoScenario {
    let mut builder = OntologyBuilder::new("http://classilink.example.org/geo/classes#");
    let place = builder.class("Place", None);
    let classes: Vec<(ClassId, &str)> = PLACE_TYPES
        .iter()
        .map(|(name, keyword)| (builder.class(name, Some(place)), *keyword))
        .collect();
    let ontology = builder.build();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut training = TrainingSet::new();
    let mut heldout: Vec<HeldoutPlace> = Vec::new();
    let mut counter = 0usize;

    let make_label = |keyword: &str, rng: &mut StdRng| -> String {
        let stem = NAME_STEMS[rng.gen_range(0..NAME_STEMS.len())];
        // Sometimes the type word leads ("Palace of Versailles"-style),
        // sometimes it trails ("Copacabana Beach").
        if rng.gen_bool(0.3) {
            format!("{keyword} of {stem}")
        } else {
            format!("{stem} {keyword}")
        }
    };

    for (class, keyword) in &classes {
        for _ in 0..per_class {
            let label = make_label(keyword, &mut rng);
            training.push(TrainingExample::new(
                Term::iri(format!("http://provider.example.com/place/{counter}")),
                Term::iri(format!("http://classilink.example.org/geo/place/{counter}")),
                vec![(GEO_LABEL.to_string(), label)],
                vec![*class],
            ));
            counter += 1;
        }
        for _ in 0..heldout_per_class {
            let label = make_label(keyword, &mut rng);
            heldout.push((
                Term::iri(format!("http://provider.example.com/place/h{counter}")),
                vec![(GEO_LABEL.to_string(), label)],
                *class,
            ));
            counter += 1;
        }
    }

    GeoScenario {
        ontology,
        training,
        heldout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_core::{LearnerConfig, RuleClassifier, RuleLearner};

    #[test]
    fn scenario_shape() {
        let geo = geo_scenario(10, 2, 1);
        assert_eq!(geo.training.len(), 10 * PLACE_TYPES.len());
        assert_eq!(geo.heldout.len(), 2 * PLACE_TYPES.len());
        assert_eq!(geo.ontology.leaves().len(), PLACE_TYPES.len());
        for e in geo.training.examples() {
            assert_eq!(e.facts.len(), 1);
            assert!(geo.ontology.is_leaf(e.classes[0]));
        }
    }

    #[test]
    fn labels_contain_the_type_keyword() {
        let geo = geo_scenario(5, 0, 2);
        for e in geo.training.examples() {
            let label = &e.facts[0].1;
            let class_label = geo.ontology.label(e.classes[0]);
            assert!(
                label.to_lowercase().contains(&class_label.to_lowercase()),
                "label {label:?} does not contain {class_label:?}"
            );
        }
    }

    #[test]
    fn rules_learn_the_type_keywords() {
        let geo = geo_scenario(20, 5, 3);
        let config = LearnerConfig::default().with_support_threshold(0.01);
        let outcome = RuleLearner::new(config.clone())
            .learn(&geo.training, &geo.ontology)
            .unwrap();
        // One confidence-1 rule per place type (the keyword segment).
        let perfect = outcome.rules_with_confidence(1.0);
        assert!(perfect.len() >= PLACE_TYPES.len());
        // Classify the held-out items: the keyword always identifies the class.
        let classifier = RuleClassifier::from_outcome(&outcome, &config);
        let mut correct = 0;
        for (_, facts, gold) in &geo.heldout {
            if let Some(prediction) = classifier.decide(facts) {
                if prediction.class == *gold {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / geo.heldout.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_generation() {
        let a = geo_scenario(5, 1, 9);
        let b = geo_scenario(5, 1, 9);
        assert_eq!(a.training, b.training);
    }
}
