//! Namespaces and property IRIs used by the synthetic data.
//!
//! The local catalog mimics the Thales product catalog of the paper (its own
//! ontology and vocabulary); the provider documents use a *different*
//! vocabulary, reflecting the paper's setting where the external schema is
//! unknown and unaligned.

/// Namespace of the catalog ontology classes.
pub const CLASS_NS: &str = "http://classilink.example.org/catalog/classes#";
/// Namespace of the local catalog items.
pub const LOCAL_ITEM_NS: &str = "http://classilink.example.org/catalog/product/";
/// Namespace of the local catalog vocabulary (data properties).
pub const LOCAL_VOCAB_NS: &str = "http://classilink.example.org/catalog/vocab#";
/// Namespace of the external provider items.
pub const PROVIDER_ITEM_NS: &str = "http://provider.example.com/item/";
/// Namespace of the external provider vocabulary.
pub const PROVIDER_VOCAB_NS: &str = "http://provider.example.com/vocab#";

/// Local catalog: part-number property.
pub const LOCAL_PART_NUMBER: &str = "http://classilink.example.org/catalog/vocab#partNumber";
/// Local catalog: manufacturer property.
pub const LOCAL_MANUFACTURER: &str = "http://classilink.example.org/catalog/vocab#manufacturer";
/// Local catalog: label property.
pub const LOCAL_LABEL: &str = "http://classilink.example.org/catalog/vocab#label";

/// Provider vocabulary: the provider's identifier for the product
/// ("a provider identifier (a part-number)" in the paper).
pub const PROVIDER_PART_NUMBER: &str = "http://provider.example.com/vocab#reference";
/// Provider vocabulary: the manufacturer name.
pub const PROVIDER_MANUFACTURER: &str = "http://provider.example.com/vocab#maker";

/// IRI of a local catalog item.
pub fn local_item(n: usize) -> String {
    format!("{LOCAL_ITEM_NS}{n}")
}

/// IRI of an external provider item.
pub fn provider_item(n: usize) -> String {
    format!("{PROVIDER_ITEM_NS}{n}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_iris_are_namespaced() {
        assert!(local_item(42).starts_with(LOCAL_ITEM_NS));
        assert!(provider_item(7).starts_with(PROVIDER_ITEM_NS));
        assert_ne!(local_item(1), provider_item(1));
    }

    #[test]
    fn vocabularies_differ_between_sources() {
        assert!(LOCAL_PART_NUMBER.starts_with(LOCAL_VOCAB_NS));
        assert!(PROVIDER_PART_NUMBER.starts_with(PROVIDER_VOCAB_NS));
        assert_ne!(LOCAL_PART_NUMBER, PROVIDER_PART_NUMBER);
    }
}
