//! Generation of the electronic-components ontology and per-leaf part-number
//! profiles.
//!
//! The paper's catalog ontology has "566 classes containing 226 classes in
//! the leaves of the ontology". [`generate_taxonomy`] builds a hierarchy with
//! configurable total/leaf class counts out of realistic component families
//! (resistors, capacitors, diodes, …), and attaches to every leaf a
//! [`LeafProfile`] describing how its part numbers look: which segments are
//! unique to the class (the ones the learner should discover, like
//! `"CRCW0805"` or `"T83"` in the paper), which are shared across the family
//! (like `"ohm"` or `"63V"`), and which are global noise.

use crate::vocab::CLASS_NS;
use classilink_ontology::{ClassId, Ontology};
use serde::{Deserialize, Serialize};

/// A top-level component family used to name classes and build part-number
/// grammars.
#[derive(Debug, Clone)]
pub struct Family {
    /// Family name (e.g. "Resistor").
    pub name: &'static str,
    /// Series prefixes typical of the family (used to mint strong tokens).
    pub series: &'static [&'static str],
    /// Sub-type names used for intermediate classes.
    pub subtypes: &'static [&'static str],
    /// Tokens shared by every class of the family (units, voltages, …).
    pub family_tokens: &'static [&'static str],
}

/// The built-in families. Ten families echo the breadth of an electronic
/// components catalog.
pub fn families() -> Vec<Family> {
    vec![
        Family {
            name: "Resistor",
            series: &["CRCW", "ERJ", "RC", "WSL", "CPF"],
            subtypes: &[
                "Fixed film",
                "Wirewound",
                "Thick film",
                "Thin film",
                "Network",
            ],
            family_tokens: &["ohm", "63V", "5T", "125mW"],
        },
        Family {
            name: "Capacitor",
            series: &["T83", "TAJ", "C0G", "GRM", "EEE"],
            subtypes: &["Tantalum", "Ceramic", "Electrolytic", "Film", "Polymer"],
            family_tokens: &["uF", "25V", "X7R", "20P"],
        },
        Family {
            name: "Diode",
            series: &["1N", "BAS", "MBR", "SS", "BZX"],
            subtypes: &["Rectifier", "Schottky", "Zener", "TVS", "Signal"],
            family_tokens: &["40V", "DO35", "1A", "SOD"],
        },
        Family {
            name: "Transistor",
            series: &["BC", "2N", "IRF", "BSS", "FDN"],
            subtypes: &["Bipolar", "MOSFET", "JFET", "IGBT", "Darlington"],
            family_tokens: &["TO92", "60V", "NPN", "SOT23"],
        },
        Family {
            name: "Inductor",
            series: &["SRR", "LQW", "NR", "MSS", "XAL"],
            subtypes: &["Power", "RF", "Shielded", "Coupled", "Ferrite"],
            family_tokens: &["uH", "2A", "SMD", "20PC"],
        },
        Family {
            name: "Connector",
            series: &["DF", "FH", "SM", "PH", "XH"],
            subtypes: &[
                "Board to board",
                "Wire to board",
                "FFC",
                "Circular",
                "RF coax",
            ],
            family_tokens: &["2mm", "30POS", "AU", "RA"],
        },
        Family {
            name: "IntegratedCircuit",
            series: &["LM", "TL", "NE", "STM32", "AT"],
            subtypes: &[
                "Amplifier",
                "Regulator",
                "Microcontroller",
                "Logic",
                "Interface",
            ],
            family_tokens: &["SOIC", "3V3", "QFP", "8BIT"],
        },
        Family {
            name: "Relay",
            series: &["G5", "RT", "HF", "JS", "ALQ"],
            subtypes: &["Signal", "Power", "Automotive", "Reed", "Solid state"],
            family_tokens: &["12VDC", "SPDT", "10A", "COIL"],
        },
        Family {
            name: "Switch",
            series: &["EVQ", "KSC", "TL3", "B3F", "PTS"],
            subtypes: &["Tactile", "Toggle", "DIP", "Rotary", "Slide"],
            family_tokens: &["6mm", "50mA", "SPST", "THT"],
        },
        Family {
            name: "Oscillator",
            series: &["ABM", "ECS", "NX", "TSX", "FC"],
            subtypes: &["Crystal", "MEMS", "TCXO", "VCXO", "Clock"],
            family_tokens: &["MHz", "20ppm", "3225", "CL18"],
        },
    ]
}

/// The part-number profile of one leaf class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafProfile {
    /// The leaf class in the generated ontology.
    pub class: ClassId,
    /// Human-readable label of the class.
    pub label: String,
    /// The family the class belongs to.
    pub family: String,
    /// Segments unique to this class (the discriminative evidence, e.g.
    /// `CRCW0805`).
    pub strong_tokens: Vec<String>,
    /// Segments shared by the few sibling leaves of the same subfamily (they
    /// produce the mid-confidence rules of Table 1's 0.8 / 0.6 / 0.4 rows).
    pub subfamily_tokens: Vec<String>,
    /// Segments shared by the whole family (e.g. `ohm`, `63V`).
    pub family_tokens: Vec<String>,
    /// Segments shared across the whole catalog (packaging/compliance noise).
    pub global_tokens: Vec<String>,
}

/// Configuration of taxonomy generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyConfig {
    /// Total number of classes (internal + leaves), root included.
    pub total_classes: usize,
    /// Number of leaf classes.
    pub leaf_classes: usize,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        // The paper's ontology shape.
        TaxonomyConfig {
            total_classes: 566,
            leaf_classes: 226,
        }
    }
}

/// Tokens shared by every part number regardless of class (the "noise"
/// segments that produce lift ≈ 1 rules).
pub const GLOBAL_TOKENS: &[&str] = &["ROHS", "T", "R", "LF", "B2"];

/// Build the ontology and the per-leaf profiles.
///
/// The construction is deterministic (no RNG): class counts are satisfied
/// exactly whenever `total_classes` is large enough to hold the root, the
/// families and one subfamily per three leaves; otherwise as many internal
/// classes as possible are created and the result simply has fewer internal
/// nodes.
pub fn generate_taxonomy(config: &TaxonomyConfig) -> (Ontology, Vec<LeafProfile>) {
    let leaf_target = config.leaf_classes.max(1);
    let families = families();
    let mut onto = Ontology::new();
    let root = onto.add_class(
        format!("{CLASS_NS}ElectronicComponent"),
        "Electronic component",
    );

    // Distribute leaves across families as evenly as possible.
    let per_family = leaf_target / families.len();
    let remainder = leaf_target % families.len();

    let mut profiles: Vec<LeafProfile> = Vec::with_capacity(leaf_target);
    let mut subfamily_ids: Vec<ClassId> = Vec::new();
    let mut leaf_parents: Vec<(ClassId, ClassId)> = Vec::new(); // (leaf, direct parent)

    for (f_idx, family) in families.iter().enumerate() {
        let family_id = onto.add_class(format!("{CLASS_NS}{}", family.name), family.name);
        onto.add_subclass_axiom(family_id, root)
            .expect("family under root is acyclic");
        let leaves_here = per_family + usize::from(f_idx < remainder);
        if leaves_here == 0 {
            continue;
        }
        // One subfamily per ~3 leaves, named after the family's subtypes.
        let subfamily_count = leaves_here.div_ceil(3).max(1);
        let mut local_subfamilies = Vec::with_capacity(subfamily_count);
        for s in 0..subfamily_count {
            let subtype = family.subtypes[s % family.subtypes.len()];
            let label = if s < family.subtypes.len() {
                format!("{subtype} {}", family.name.to_lowercase())
            } else {
                format!("{subtype} {} series {}", family.name.to_lowercase(), s)
            };
            let iri = format!(
                "{CLASS_NS}{}{}",
                label.split_whitespace().map(capitalise).collect::<String>(),
                ""
            );
            let sub_id = onto.add_class(iri, &label);
            onto.add_subclass_axiom(sub_id, family_id)
                .expect("subfamily under family is acyclic");
            local_subfamilies.push(sub_id);
            subfamily_ids.push(sub_id);
        }
        // Leaves round-robin over the subfamilies.
        for l in 0..leaves_here {
            let parent = local_subfamilies[l % local_subfamilies.len()];
            let series = family.series[l % family.series.len()];
            let code = format!("{series}{:02}{}", l / family.series.len(), f_idx);
            let label = format!("{} {}", onto.label(parent), code);
            let iri = format!("{CLASS_NS}{}_{code}", family.name);
            let leaf_id = onto.add_class(iri, &label);
            onto.add_subclass_axiom(leaf_id, parent)
                .expect("leaf under subfamily is acyclic");
            leaf_parents.push((leaf_id, parent));
            // Strong tokens: the series+package code plus a per-leaf type code.
            let type_code = format!(
                "{}{}{:02}",
                family.name.chars().next().unwrap_or('X'),
                f_idx,
                l
            );
            // Subfamily token: a package/series code shared by the (few)
            // sibling leaves attached to the same subfamily.
            let subfamily_token = format!("PKG{f_idx}{:02}", l % local_subfamilies.len());
            profiles.push(LeafProfile {
                class: leaf_id,
                label,
                family: family.name.to_string(),
                strong_tokens: vec![code.clone(), type_code],
                subfamily_tokens: vec![subfamily_token],
                family_tokens: family.family_tokens.iter().map(|t| t.to_string()).collect(),
                global_tokens: GLOBAL_TOKENS.iter().map(|t| t.to_string()).collect(),
            });
        }
    }

    // Declare pairwise disjointness between the top families (the schema
    // knowledge the related work exploits).
    let family_ids: Vec<ClassId> = onto
        .classes()
        .filter(|c| c.parents == vec![root])
        .map(|c| c.id)
        .collect();
    for (i, a) in family_ids.iter().enumerate() {
        for b in &family_ids[i + 1..] {
            onto.add_disjoint_axiom(*a, *b).expect("distinct families");
        }
    }

    // Pad with intermediate "series" classes until the total class count is
    // reached: each filler is inserted between a leaf and its current parent,
    // keeping the leaf count unchanged.
    let mut filler = 0usize;
    while onto.class_count() < config.total_classes && !leaf_parents.is_empty() {
        let (leaf, parent) = leaf_parents[filler % leaf_parents.len()];
        let label = format!("{} series {}", onto.label(parent), filler);
        let iri = format!("{CLASS_NS}Series{filler}");
        let series_id = onto.add_class(iri, &label);
        onto.add_subclass_axiom(series_id, parent)
            .expect("series under subfamily is acyclic");
        onto.add_subclass_axiom(leaf, series_id)
            .expect("leaf under series is acyclic");
        filler += 1;
    }

    (onto, profiles)
}

fn capitalise(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_ontology::OntologyStats;
    use std::collections::HashSet;

    #[test]
    fn paper_shape_is_reproduced() {
        let (onto, profiles) = generate_taxonomy(&TaxonomyConfig::default());
        let stats = OntologyStats::compute(&onto);
        assert_eq!(stats.class_count, 566);
        // Leaves: the generated leaf classes stay leaves after padding.
        assert_eq!(stats.leaf_count, 226);
        assert_eq!(profiles.len(), 226);
        assert_eq!(stats.root_count, 1);
        assert!(stats.max_depth >= 3);
        assert!(stats.disjoint_axiom_count >= 45); // C(10, 2)
    }

    #[test]
    fn small_configurations_work() {
        let cfg = TaxonomyConfig {
            total_classes: 40,
            leaf_classes: 20,
        };
        let (onto, profiles) = generate_taxonomy(&cfg);
        assert_eq!(profiles.len(), 20);
        let stats = OntologyStats::compute(&onto);
        assert_eq!(stats.leaf_count, 20);
        assert!(stats.class_count >= 31); // root + 10 families + leaves at least
    }

    #[test]
    fn every_leaf_profile_points_to_a_leaf_class() {
        let (onto, profiles) = generate_taxonomy(&TaxonomyConfig::default());
        for p in &profiles {
            assert!(onto.is_leaf(p.class), "{} is not a leaf", p.label);
            assert!(!p.strong_tokens.is_empty());
            assert!(!p.family_tokens.is_empty());
        }
    }

    #[test]
    fn strong_tokens_are_unique_per_leaf() {
        let (_, profiles) = generate_taxonomy(&TaxonomyConfig::default());
        let mut seen: HashSet<&str> = HashSet::new();
        for p in &profiles {
            for t in &p.strong_tokens {
                assert!(seen.insert(t), "strong token {t} reused across leaves");
            }
        }
    }

    #[test]
    fn family_tokens_are_shared_within_family_only() {
        let (_, profiles) = generate_taxonomy(&TaxonomyConfig::default());
        let resistor_tokens: HashSet<&String> = profiles
            .iter()
            .filter(|p| p.family == "Resistor")
            .flat_map(|p| p.family_tokens.iter())
            .collect();
        let capacitor_tokens: HashSet<&String> = profiles
            .iter()
            .filter(|p| p.family == "Capacitor")
            .flat_map(|p| p.family_tokens.iter())
            .collect();
        assert!(resistor_tokens.is_disjoint(&capacitor_tokens));
        assert!(resistor_tokens.contains(&"ohm".to_string()));
    }

    #[test]
    fn families_are_disjoint_in_the_ontology() {
        let (onto, profiles) = generate_taxonomy(&TaxonomyConfig::default());
        let resistor_leaf = profiles.iter().find(|p| p.family == "Resistor").unwrap();
        let capacitor_leaf = profiles.iter().find(|p| p.family == "Capacitor").unwrap();
        assert!(onto.are_disjoint(resistor_leaf.class, capacitor_leaf.class));
        let other_resistor = profiles
            .iter()
            .filter(|p| p.family == "Resistor")
            .nth(1)
            .unwrap();
        assert!(!onto.are_disjoint(resistor_leaf.class, other_resistor.class));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_taxonomy(&TaxonomyConfig::default());
        let b = generate_taxonomy(&TaxonomyConfig::default());
        assert_eq!(a.0.class_count(), b.0.class_count());
        assert_eq!(a.1, b.1);
    }
}
