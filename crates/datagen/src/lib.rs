//! # classilink-datagen
//!
//! Synthetic data for the `classilink` workspace (reproduction of
//! *"Classification Rule Learning for Data Linking"*, Pernelle & Saïs,
//! LWDM @ EDBT 2012).
//!
//! The paper's evaluation uses a proprietary industrial data set (the Thales
//! electronic-products catalog and 10 265 expert reconciliations). That data
//! is not available, so this crate generates the closest synthetic
//! equivalent, preserving the statistical shape the learning algorithm
//! depends on (see DESIGN.md §2 for the substitution argument):
//!
//! * [`taxonomy`] — a 566-class / 226-leaf electronic-components ontology
//!   built from ten realistic component families, plus per-leaf part-number
//!   profiles (class-unique, family-shared and global segments).
//! * [`partnumber`] — part numbers such as `CRCW000-A04D3-ohm-63V-ROHS` whose
//!   segments span the whole confidence spectrum of Table 1.
//! * [`perturb`] — provider-side rewriting of part numbers (separator swaps,
//!   typos, suffixes).
//! * [`scenario`] — full worlds: local catalog `SL`, provider items `SE`,
//!   expert links `TS`, gold classes and held-out items; presets `paper()`,
//!   `small()`, `tiny()`.
//! * [`geo`] — a toponym scenario ("Copacabana Beach", "Place de la
//!   Concorde") exercising the generality claim of the paper's conclusion.
//! * [`vocab`] — namespaces and property IRIs of both sources.
//!
//! Everything is deterministic under a configured seed.
//!
//! ## Quick example
//!
//! ```
//! use classilink_datagen::scenario::{generate, ScenarioConfig};
//!
//! let scenario = generate(&ScenarioConfig::tiny());
//! assert_eq!(scenario.training.len(), 120);
//! assert!(scenario.ontology.class_count() >= 30);
//! ```

pub mod geo;
pub mod partnumber;
pub mod perturb;
pub mod scenario;
pub mod taxonomy;
pub mod vocab;

pub use geo::{geo_scenario, GeoScenario};
pub use partnumber::{PartNumberConfig, PartNumberGenerator};
pub use perturb::PerturbationConfig;
pub use scenario::{generate, GeneratedScenario, ScenarioConfig, MANUFACTURERS};
pub use taxonomy::{families, generate_taxonomy, Family, LeafProfile, TaxonomyConfig};
