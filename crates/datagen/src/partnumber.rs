//! Part-number generation.
//!
//! The paper's evaluation hinges on one observation: "this part-number is
//! alphanumeric and contains pieces of information that can be useful to the
//! linking process" — some segments identify the product class (`CRCW0805`,
//! `T83`, `ohm`, `63V`), others are serial/packaging noise. The generator
//! below produces part numbers with exactly that structure, with tunable
//! probabilities so the learnt rules span the whole confidence range of
//! Table 1:
//!
//! * **strong** segments appear only in one class → confidence-1 rules;
//! * **family** segments are shared by the sibling classes of a family →
//!   mid-confidence rules (and candidates for subsumption generalisation);
//! * **global** segments appear everywhere → lift ≈ 1 rules;
//! * a random serial segment is unique per product → pruned by the support
//!   threshold.

use crate::taxonomy::LeafProfile;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probabilities controlling which segments a part number contains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartNumberConfig {
    /// Probability that the part number contains one of the class's strong
    /// (class-unique) segments. Drives the recall of the confidence-1 rules
    /// (≈ 29 % in the paper's Table 1). The first strong token (the series
    /// code) is chosen 85 % of the time, the remaining class-unique codes
    /// share the rest.
    pub p_strong: f64,
    /// Probability that it contains a subfamily-shared segment (shared by a
    /// handful of sibling classes → the mid-confidence rules).
    pub p_subfamily: f64,
    /// Probability that it contains a family-shared segment.
    pub p_family: f64,
    /// Probability that it contains a global (noise) segment.
    pub p_global: f64,
    /// Probability of a second family segment (units + voltage, say).
    pub p_second_family: f64,
}

impl Default for PartNumberConfig {
    fn default() -> Self {
        PartNumberConfig {
            p_strong: 0.5,
            p_subfamily: 0.45,
            p_family: 0.55,
            p_global: 0.30,
            p_second_family: 0.25,
        }
    }
}

/// Generates part numbers for leaf classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartNumberGenerator {
    /// The segment-inclusion probabilities.
    pub config: PartNumberConfig,
}

impl PartNumberGenerator {
    /// A generator with the given configuration.
    pub fn new(config: PartNumberConfig) -> Self {
        PartNumberGenerator { config }
    }

    /// Generate one part number for a product of the given leaf class.
    /// `serial` should be unique per product (it becomes the never-frequent
    /// segment).
    pub fn generate(&self, profile: &LeafProfile, serial: usize, rng: &mut StdRng) -> String {
        let mut segments: Vec<String> = Vec::with_capacity(6);
        if rng.gen_bool(self.config.p_strong.clamp(0.0, 1.0)) && !profile.strong_tokens.is_empty() {
            // The series code (first strong token) dominates, as real part
            // numbers almost always lead with the manufacturer series; the
            // other class-unique codes appear occasionally.
            let i = if profile.strong_tokens.len() == 1 || rng.gen_bool(0.85) {
                0
            } else {
                1 + rng.gen_range(0..profile.strong_tokens.len() - 1)
            };
            segments.push(profile.strong_tokens[i].clone());
        }
        // A unique serial segment is always present (providers always have
        // some product-specific identifier).
        segments.push(format!("{}{:05X}", random_letter(rng), serial));
        if rng.gen_bool(self.config.p_subfamily.clamp(0.0, 1.0))
            && !profile.subfamily_tokens.is_empty()
        {
            let i = rng.gen_range(0..profile.subfamily_tokens.len());
            segments.push(profile.subfamily_tokens[i].clone());
        }
        if rng.gen_bool(self.config.p_family.clamp(0.0, 1.0)) && !profile.family_tokens.is_empty() {
            let i = rng.gen_range(0..profile.family_tokens.len());
            segments.push(profile.family_tokens[i].clone());
            if rng.gen_bool(self.config.p_second_family.clamp(0.0, 1.0))
                && profile.family_tokens.len() > 1
            {
                let j = (i + 1 + rng.gen_range(0..profile.family_tokens.len() - 1))
                    % profile.family_tokens.len();
                segments.push(profile.family_tokens[j].clone());
            }
        }
        if rng.gen_bool(self.config.p_global.clamp(0.0, 1.0)) && !profile.global_tokens.is_empty() {
            let i = rng.gen_range(0..profile.global_tokens.len());
            segments.push(profile.global_tokens[i].clone());
        }
        segments.join("-")
    }
}

fn random_letter(rng: &mut StdRng) -> char {
    (b'A' + rng.gen_range(0..26u8)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{generate_taxonomy, TaxonomyConfig};
    use rand::SeedableRng;

    fn profile() -> LeafProfile {
        let (_, profiles) = generate_taxonomy(&TaxonomyConfig {
            total_classes: 40,
            leaf_classes: 20,
        });
        profiles[0].clone()
    }

    #[test]
    fn part_numbers_are_dash_separated_and_contain_the_serial() {
        let p = profile();
        let gen = PartNumberGenerator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for serial in 0..50 {
            let pn = gen.generate(&p, serial, &mut rng);
            assert!(!pn.is_empty());
            assert!(pn.contains(&format!("{serial:05X}")));
            assert!(pn.split('-').count() >= 1);
        }
    }

    #[test]
    fn strong_token_frequency_follows_probability() {
        let p = profile();
        let gen = PartNumberGenerator::new(PartNumberConfig {
            p_strong: 0.4,
            ..PartNumberConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let with_strong = (0..n)
            .filter(|serial| {
                let pn = gen.generate(&p, *serial, &mut rng);
                p.strong_tokens.iter().any(|t| pn.contains(t.as_str()))
            })
            .count();
        let ratio = with_strong as f64 / n as f64;
        assert!((ratio - 0.4).abs() < 0.05, "ratio {ratio} too far from 0.4");
    }

    #[test]
    fn extreme_probabilities() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(3);
        let always = PartNumberGenerator::new(PartNumberConfig {
            p_strong: 1.0,
            p_subfamily: 1.0,
            p_family: 1.0,
            p_global: 1.0,
            p_second_family: 1.0,
        });
        let pn = always.generate(&p, 1, &mut rng);
        assert!(p.strong_tokens.iter().any(|t| pn.contains(t.as_str())));
        assert!(p.family_tokens.iter().any(|t| pn.contains(t.as_str())));
        assert!(p.global_tokens.iter().any(|t| pn.contains(t.as_str())));
        assert!(pn.split('-').count() >= 5);

        let never = PartNumberGenerator::new(PartNumberConfig {
            p_strong: 0.0,
            p_subfamily: 0.0,
            p_family: 0.0,
            p_global: 0.0,
            p_second_family: 0.0,
        });
        let bare = never.generate(&p, 2, &mut rng);
        assert_eq!(bare.split('-').count(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = profile();
        let gen = PartNumberGenerator::default();
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for serial in 0..20 {
            assert_eq!(
                gen.generate(&p, serial, &mut a),
                gen.generate(&p, serial, &mut b)
            );
        }
    }

    #[test]
    fn serials_make_part_numbers_distinct() {
        let p = profile();
        let gen = PartNumberGenerator::default();
        let mut rng = StdRng::seed_from_u64(5);
        let a = gen.generate(&p, 100, &mut rng);
        let b = gen.generate(&p, 101, &mut rng);
        assert_ne!(a, b);
    }
}
