//! End-to-end scenario generation: catalog, provider documents, expert links.
//!
//! A [`GeneratedScenario`] bundles everything one of the paper's experiments
//! needs: the local catalog `SL` (RDF graph + ontology + instance store), the
//! external provider items `SE` (different vocabulary, perturbed part
//! numbers), the validated `same-as` links `TS`, and the gold classes of the
//! external items for evaluation.
//!
//! The `paper()` preset reproduces the scale of the paper's evaluation:
//! an ontology of 566 classes (226 leaves), 10 265 expert reconciliations and
//! a catalog an order of magnitude larger, with part numbers whose segments
//! span the whole confidence spectrum of Table 1.

use crate::partnumber::{PartNumberConfig, PartNumberGenerator};
use crate::perturb::PerturbationConfig;
use crate::taxonomy::{generate_taxonomy, LeafProfile, TaxonomyConfig};
use crate::vocab;
use classilink_core::TrainingSet;
use classilink_linking::{RecordStore, SchemaInterner, ShardedStore};
use classilink_ontology::{ClassId, InstanceStore, Ontology};
use classilink_rdf::namespace::vocab as rdf_vocab;
use classilink_rdf::{Dataset, Source, Term, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Manufacturers shared across all classes (the paper notes the manufacturer
/// is *not* discriminative: "almost all manufacturers provide products that
/// belong to distinct classes").
pub const MANUFACTURERS: &[&str] = &[
    "Vishay",
    "Murata",
    "Kemet",
    "TDK",
    "Yageo",
    "Panasonic",
    "AVX",
    "Bourns",
    "Omron",
    "NXP",
    "onsemi",
    "STMicro",
];

/// Configuration of a full scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Shape of the catalog ontology.
    pub taxonomy: TaxonomyConfig,
    /// Number of products in the local catalog (`|SL|`).
    pub catalog_size: usize,
    /// Number of expert-validated links (`|TS|`).
    pub training_links: usize,
    /// Additional external items that are *not* part of the training set
    /// (used as held-out items to classify).
    pub extra_external: usize,
    /// Zipf exponent of the class-popularity distribution (larger = more
    /// skewed; the paper's data is clearly skewed: 68 of 226 leaf classes
    /// hold more than 20 of the 10 265 linked products).
    pub zipf_exponent: f64,
    /// Part-number segment probabilities.
    pub part_numbers: PartNumberConfig,
    /// Provider-side perturbation of part numbers.
    pub perturbation: PerturbationConfig,
    /// RNG seed (every run with the same config is identical).
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper-scale scenario: 566/226 ontology, 10 265 links.
    pub fn paper() -> Self {
        ScenarioConfig {
            taxonomy: TaxonomyConfig::default(),
            catalog_size: 30_000,
            training_links: 10_265,
            extra_external: 0,
            zipf_exponent: 1.0,
            part_numbers: PartNumberConfig::default(),
            perturbation: PerturbationConfig::default(),
            seed: 20_120_326, // the workshop date
        }
    }

    /// A medium scenario for integration tests and quick experiments.
    pub fn small() -> Self {
        ScenarioConfig {
            taxonomy: TaxonomyConfig {
                total_classes: 120,
                leaf_classes: 60,
            },
            catalog_size: 2_000,
            training_links: 800,
            extra_external: 200,
            zipf_exponent: 1.0,
            part_numbers: PartNumberConfig::default(),
            perturbation: PerturbationConfig::default(),
            seed: 7,
        }
    }

    /// A tiny scenario for unit tests.
    pub fn tiny() -> Self {
        ScenarioConfig {
            taxonomy: TaxonomyConfig {
                total_classes: 40,
                leaf_classes: 20,
            },
            catalog_size: 200,
            training_links: 120,
            extra_external: 30,
            zipf_exponent: 1.0,
            part_numbers: PartNumberConfig::default(),
            perturbation: PerturbationConfig::default(),
            seed: 3,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything an experiment needs about one generated world.
pub struct GeneratedScenario {
    /// The configuration the scenario was generated from.
    pub config: ScenarioConfig,
    /// The catalog ontology `OL`.
    pub ontology: Ontology,
    /// Per-leaf part-number profiles.
    pub profiles: Vec<LeafProfile>,
    /// The RDF dataset: local graph, external graph and `same-as` links.
    pub dataset: Dataset,
    /// Class assertions of the local catalog.
    pub instances: InstanceStore,
    /// The training set extracted from the dataset.
    pub training: TrainingSet,
    /// Gold classes of every external item (training and held-out), for
    /// evaluation.
    pub gold_classes: BTreeMap<Term, ClassId>,
    /// Held-out external items (not in `TS`) as `(item, facts)` pairs.
    pub heldout: Vec<(Term, Vec<(String, String)>)>,
}

impl GeneratedScenario {
    /// Convenience: the number of local catalog items.
    pub fn catalog_size(&self) -> usize {
        self.config.catalog_size
    }

    /// The gold (most specific) class of an external item, if known.
    pub fn gold_class(&self, item: &Term) -> Option<ClassId> {
        self.gold_classes.get(item).copied()
    }

    /// Columnarise the external provider items `SE` into a
    /// [`RecordStore`] (the representation the blockers and the linkage
    /// pipeline run on).
    pub fn external_store(&self) -> RecordStore {
        RecordStore::from_graph(self.dataset.external())
    }

    /// Columnarise the local catalog `SL` into a [`RecordStore`].
    pub fn local_store(&self) -> RecordStore {
        RecordStore::from_graph(self.dataset.local())
    }

    /// Columnarise the catalog into `shard_count` contiguous shards for
    /// [`LinkagePipeline::run_sharded`](classilink_linking::LinkagePipeline::run_sharded).
    /// Record order — and therefore global ids — matches
    /// [`local_store`](Self::local_store).
    pub fn local_store_sharded(&self, shard_count: usize) -> ShardedStore {
        ShardedStore::from_graph(self.dataset.local(), shard_count)
    }

    /// Columnarise both sides on **one shared schema**: the external
    /// store and every catalog shard agree on `PropertyId`s, so blocking
    /// keys and comparators resolved against the shared schema serve all
    /// of them (and can be reused across scenario batches built on the
    /// same [`SchemaInterner`]).
    pub fn sharded_stores(&self, shard_count: usize) -> (RecordStore, ShardedStore) {
        let schema = SchemaInterner::new();
        let mut external = RecordStore::builder_with_schema(schema.clone());
        external.push_graph(self.dataset.external());
        let local = ShardedStore::from_graph_with_schema(self.dataset.local(), shard_count, schema);
        (external.build(), local)
    }
}

/// Generate a full scenario from a configuration.
pub fn generate(config: &ScenarioConfig) -> GeneratedScenario {
    let (ontology, profiles) = generate_taxonomy(&config.taxonomy);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let part_gen = PartNumberGenerator::new(config.part_numbers);

    let catalog_size = config
        .catalog_size
        .max(config.training_links + config.extra_external);

    // Precompute the Zipf CDF once (leaf popularity).
    let leaf_count = profiles.len().max(1);
    let weights: Vec<f64> = (0..leaf_count)
        .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf_exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut dataset = Dataset::new();
    let mut gold_classes: BTreeMap<Term, ClassId> = BTreeMap::new();
    let mut catalog_part_numbers: Vec<String> = Vec::with_capacity(catalog_size);
    let mut catalog_classes: Vec<usize> = Vec::with_capacity(catalog_size);

    // ------------------------------------------------------------------
    // Local catalog SL.
    // ------------------------------------------------------------------
    for n in 0..catalog_size {
        let leaf_idx = {
            let mut target = rng.gen_range(0.0..total_weight);
            let mut chosen = leaf_count - 1;
            for (i, w) in weights.iter().enumerate() {
                if target < *w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let profile = &profiles[leaf_idx];
        let item_iri = vocab::local_item(n);
        let part_number = part_gen.generate(profile, n, &mut rng);
        let manufacturer = MANUFACTURERS[rng.gen_range(0..MANUFACTURERS.len())];
        dataset.insert(
            Source::Local,
            Triple::iris(&item_iri, rdf_vocab::RDF_TYPE, ontology.iri(profile.class)),
        );
        dataset.insert(
            Source::Local,
            Triple::literal(&item_iri, vocab::LOCAL_PART_NUMBER, &part_number),
        );
        dataset.insert(
            Source::Local,
            Triple::literal(&item_iri, vocab::LOCAL_MANUFACTURER, manufacturer),
        );
        dataset.insert(
            Source::Local,
            Triple::literal(
                &item_iri,
                vocab::LOCAL_LABEL,
                format!("{} #{n}", profile.label),
            ),
        );
        catalog_part_numbers.push(part_number);
        catalog_classes.push(leaf_idx);
    }

    // ------------------------------------------------------------------
    // External provider items SE: one per training link plus held-out items,
    // each derived from a distinct catalog product.
    // ------------------------------------------------------------------
    let external_total = config.training_links + config.extra_external;
    let mut heldout: Vec<(Term, Vec<(String, String)>)> = Vec::new();
    for e in 0..external_total {
        let catalog_index = e; // distinct by construction (catalog_size ≥ external_total)
        let profile = &profiles[catalog_classes[catalog_index]];
        let ext_iri = vocab::provider_item(e);
        let ext_item = Term::iri(&ext_iri);
        let provider_ref = config
            .perturbation
            .apply(&catalog_part_numbers[catalog_index], &mut rng);
        let manufacturer = MANUFACTURERS[rng.gen_range(0..MANUFACTURERS.len())];
        dataset.insert(
            Source::External,
            Triple::literal(&ext_iri, vocab::PROVIDER_PART_NUMBER, &provider_ref),
        );
        dataset.insert(
            Source::External,
            Triple::literal(&ext_iri, vocab::PROVIDER_MANUFACTURER, manufacturer),
        );
        gold_classes.insert(ext_item.clone(), profile.class);
        if e < config.training_links {
            dataset.link(&ext_item, &Term::iri(vocab::local_item(catalog_index)));
        } else {
            heldout.push((
                ext_item,
                vec![
                    (vocab::PROVIDER_PART_NUMBER.to_string(), provider_ref),
                    (
                        vocab::PROVIDER_MANUFACTURER.to_string(),
                        manufacturer.to_string(),
                    ),
                ],
            ));
        }
    }

    let (instances, unknown) = InstanceStore::from_graph(dataset.local(), &ontology);
    debug_assert!(unknown.is_empty(), "catalog uses only declared classes");
    let training = TrainingSet::from_dataset(&dataset, &ontology, true)
        .expect("scenario always has at least one link");

    GeneratedScenario {
        config: ScenarioConfig {
            catalog_size,
            ..config.clone()
        },
        ontology,
        profiles,
        dataset,
        instances,
        training,
        gold_classes,
        heldout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scenario_has_consistent_shapes() {
        let scenario = generate(&ScenarioConfig::tiny());
        let cfg = &scenario.config;
        assert_eq!(scenario.training.len(), cfg.training_links);
        assert_eq!(scenario.heldout.len(), cfg.extra_external);
        assert_eq!(scenario.dataset.link_count(), cfg.training_links);
        assert_eq!(
            scenario.dataset.item_count(classilink_rdf::Source::Local),
            cfg.catalog_size
        );
        assert_eq!(
            scenario
                .dataset
                .item_count(classilink_rdf::Source::External),
            cfg.training_links + cfg.extra_external
        );
        assert_eq!(scenario.instances.item_count(), cfg.catalog_size);
        assert_eq!(
            scenario.gold_classes.len(),
            cfg.training_links + cfg.extra_external
        );
        assert_eq!(scenario.catalog_size(), cfg.catalog_size);
    }

    #[test]
    fn training_examples_have_provider_facts_and_leaf_classes() {
        let scenario = generate(&ScenarioConfig::tiny());
        for example in scenario.training.examples() {
            assert!(!example.facts.is_empty());
            assert!(example
                .facts
                .iter()
                .any(|(p, _)| p == vocab::PROVIDER_PART_NUMBER));
            assert_eq!(example.classes.len(), 1);
            assert!(scenario.ontology.is_leaf(example.classes[0]));
            // The example's class matches the gold class of the external item.
            assert_eq!(
                scenario.gold_class(&example.external_item),
                Some(example.classes[0])
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&ScenarioConfig::tiny());
        let b = generate(&ScenarioConfig::tiny());
        assert_eq!(a.training, b.training);
        assert_eq!(a.gold_classes, b.gold_classes);
        assert_eq!(a.dataset.local().len(), b.dataset.local().len());
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = generate(&ScenarioConfig::tiny());
        let b = generate(&ScenarioConfig::tiny().with_seed(99));
        assert_ne!(a.training, b.training);
    }

    #[test]
    fn class_distribution_is_skewed() {
        let scenario = generate(&ScenarioConfig::small());
        let freqs = scenario.training.class_frequencies();
        let max = freqs.values().copied().max().unwrap_or(0);
        let min = freqs.values().copied().min().unwrap_or(0);
        assert!(
            max >= 5 * min.max(1),
            "distribution not skewed: max {max}, min {min}"
        );
        // Not every leaf class necessarily appears, but many do.
        assert!(freqs.len() > scenario.profiles.len() / 3);
    }

    #[test]
    fn catalog_size_is_clamped_to_fit_external_items() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.catalog_size = 10; // smaller than links + heldout
        let scenario = generate(&cfg);
        assert!(scenario.config.catalog_size >= cfg.training_links + cfg.extra_external);
    }

    #[test]
    fn stores_cover_every_item_with_their_facts() {
        let scenario = generate(&ScenarioConfig::tiny());
        let external = scenario.external_store();
        let local = scenario.local_store();
        assert_eq!(
            external.len(),
            scenario.config.training_links + scenario.config.extra_external
        );
        assert_eq!(local.len(), scenario.config.catalog_size);
        let pn = local.property(vocab::LOCAL_PART_NUMBER).unwrap();
        assert!((0..local.len()).all(|r| local.first(r, pn).is_some()));
        let provider_ref = external.property(vocab::PROVIDER_PART_NUMBER).unwrap();
        assert!((0..external.len()).all(|r| external.first(r, provider_ref).is_some()));
        // Every expert link joins items present in the two stores.
        for (e, l) in scenario.dataset.link_pairs() {
            assert!(external.index_of(&e).is_some());
            assert!(local.index_of(&l).is_some());
        }
    }

    #[test]
    fn sharded_local_store_matches_single_store() {
        let scenario = generate(&ScenarioConfig::tiny());
        let single = scenario.local_store();
        let sharded = scenario.local_store_sharded(4);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.len(), single.len());
        for global in 0..single.len() {
            assert_eq!(sharded.id(global), single.id(global));
        }
        // Shared-schema construction: the external store and every shard
        // resolve the part-number IRIs to ids from one symbol table.
        let (external, local) = scenario.sharded_stores(3);
        assert_eq!(external.len(), scenario.external_store().len());
        assert_eq!(local.len(), single.len());
        let provider_pn = external.property(vocab::PROVIDER_PART_NUMBER);
        assert!(provider_pn.is_some());
        assert_eq!(local.property(vocab::PROVIDER_PART_NUMBER), provider_pn);
        assert!(local.property(vocab::LOCAL_PART_NUMBER).is_some());
    }

    #[test]
    fn local_items_carry_part_number_manufacturer_and_label() {
        let scenario = generate(&ScenarioConfig::tiny());
        let item = Term::iri(vocab::local_item(0));
        let graph = scenario.dataset.local();
        assert!(graph
            .object_of(&item, &Term::iri(vocab::LOCAL_PART_NUMBER))
            .is_some());
        assert!(graph
            .object_of(&item, &Term::iri(vocab::LOCAL_MANUFACTURER))
            .is_some());
        assert!(graph
            .object_of(&item, &Term::iri(vocab::LOCAL_LABEL))
            .is_some());
    }
}
