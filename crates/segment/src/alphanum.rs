//! Alphanumeric-transition segmentation.
//!
//! Part numbers such as `"CRCW0805"` or `"63V"` pack several meaningful
//! pieces into one token: a series prefix (`CRCW`), a package size (`0805`),
//! a value and a unit (`63` + `V`). The separator segmenter of the paper
//! keeps these fused; [`AlphaNumSegmenter`] additionally splits at every
//! letter↔digit boundary, which is one of the ablations studied in the
//! benchmarks (experiment A1 in DESIGN.md).

use crate::pipeline::Segmenter;
use serde::{Deserialize, Serialize};

/// Splits on non-alphanumeric characters *and* at letter/digit transitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlphaNumSegmenter {
    /// Minimum segment length (in characters); shorter segments are dropped.
    pub min_length: usize,
    /// Also keep the undivided separator-level tokens (e.g. keep both
    /// `crcw0805` and `crcw` / `0805`). This increases recall of the learnt
    /// rules at the cost of more candidate segments.
    pub keep_compound: bool,
}

impl Default for AlphaNumSegmenter {
    fn default() -> Self {
        AlphaNumSegmenter {
            min_length: 1,
            keep_compound: true,
        }
    }
}

impl AlphaNumSegmenter {
    /// A segmenter that keeps both compound tokens and their alpha/digit parts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the compound tokens and keep only the finest pieces.
    pub fn fine_only() -> Self {
        AlphaNumSegmenter {
            min_length: 1,
            keep_compound: false,
        }
    }

    /// Set the minimum kept segment length.
    pub fn min_length(mut self, min_length: usize) -> Self {
        self.min_length = min_length.max(1);
        self
    }

    fn split_token(&self, token: &str, out: &mut Vec<String>) {
        if self.keep_compound && token.chars().count() >= self.min_length {
            out.push(token.to_string());
        }
        let mut current = String::new();
        let mut current_is_digit: Option<bool> = None;
        let mut pieces = Vec::new();
        for c in token.chars() {
            let is_digit = c.is_numeric();
            match current_is_digit {
                Some(prev) if prev == is_digit => current.push(c),
                Some(_) => {
                    pieces.push(std::mem::take(&mut current));
                    current.push(c);
                    current_is_digit = Some(is_digit);
                }
                None => {
                    current.push(c);
                    current_is_digit = Some(is_digit);
                }
            }
        }
        if !current.is_empty() {
            pieces.push(current);
        }
        // If the token did not actually contain a transition, the single
        // piece equals the compound token — avoid emitting it twice.
        if pieces.len() == 1 && self.keep_compound {
            return;
        }
        for p in pieces {
            if p.chars().count() >= self.min_length {
                out.push(p);
            }
        }
    }
}

impl Segmenter for AlphaNumSegmenter {
    fn split(&self, value: &str) -> Vec<String> {
        let mut out = Vec::new();
        for token in value.split(|c: char| !c.is_alphanumeric()) {
            if token.is_empty() {
                continue;
            }
            self.split_token(token, &mut out);
        }
        out
    }

    fn name(&self) -> &'static str {
        "alphanum-transition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_at_letter_digit_boundaries() {
        let s = AlphaNumSegmenter::fine_only();
        assert_eq!(s.split("CRCW0805"), vec!["CRCW", "0805"]);
        assert_eq!(s.split("63V"), vec!["63", "V"]);
        assert_eq!(s.split("T83A225K"), vec!["T", "83", "A", "225", "K"]);
    }

    #[test]
    fn compound_tokens_are_kept_by_default() {
        let s = AlphaNumSegmenter::new();
        let segs = s.split("CRCW0805-10K");
        assert!(segs.contains(&"CRCW0805".to_string()));
        assert!(segs.contains(&"CRCW".to_string()));
        assert!(segs.contains(&"0805".to_string()));
        assert!(segs.contains(&"10K".to_string()));
        assert!(segs.contains(&"10".to_string()));
        assert!(segs.contains(&"K".to_string()));
    }

    #[test]
    fn no_transition_token_is_not_duplicated() {
        let s = AlphaNumSegmenter::new();
        assert_eq!(s.split("ohm"), vec!["ohm"]);
        assert_eq!(s.split("4700"), vec!["4700"]);
    }

    #[test]
    fn min_length_applies_to_all_pieces() {
        let s = AlphaNumSegmenter::fine_only().min_length(2);
        assert_eq!(s.split("63V"), vec!["63"]);
        let s2 = AlphaNumSegmenter::new().min_length(3);
        assert_eq!(s2.split("63V"), vec!["63V"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        let s = AlphaNumSegmenter::new();
        assert!(s.split("").is_empty());
        assert!(s.split("-- . --").is_empty());
    }

    #[test]
    fn segmenter_name() {
        assert_eq!(AlphaNumSegmenter::new().name(), "alphanum-transition");
    }

    proptest! {
        /// Fine pieces are single-kind (all digits or all non-digits) and are
        /// substrings of the input.
        #[test]
        fn prop_fine_pieces_are_uniform(value in "[A-Za-z0-9 -]{0,40}") {
            let s = AlphaNumSegmenter::fine_only();
            for seg in s.split(&value) {
                prop_assert!(!seg.is_empty());
                prop_assert!(value.contains(&seg));
                let all_digits = seg.chars().all(|c| c.is_numeric());
                let no_digits = seg.chars().all(|c| !c.is_numeric());
                prop_assert!(all_digits || no_digits);
            }
        }

        /// With compounds kept, the output is a superset of the fine-only output.
        #[test]
        fn prop_compound_is_superset(value in "[A-Za-z0-9 -]{0,40}") {
            let fine: Vec<String> = AlphaNumSegmenter::fine_only().split(&value);
            let full: Vec<String> = AlphaNumSegmenter::new().split(&value);
            for seg in fine {
                prop_assert!(full.contains(&seg), "missing {seg}");
            }
        }
    }
}
