//! N-gram segmentation.
//!
//! The paper mentions that values may be split "using separation characters
//! (e.g., ':', '-', ';', ' ') **or n-grams**", and its related-work section
//! describes bi-gram blocking. This module provides character n-grams
//! (optionally padded, as used by bi-gram indexing) and word n-grams.

use crate::pipeline::Segmenter;
use serde::{Deserialize, Serialize};

/// Character n-gram segmenter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharNGramSegmenter {
    /// The n-gram size (≥ 1).
    pub n: usize,
    /// Pad the value with `n - 1` occurrences of `pad_char` on both sides,
    /// so that prefixes/suffixes produce their own grams (classic blocking
    /// practice).
    pub padded: bool,
    /// The padding character used when `padded` is set.
    pub pad_char: char,
}

impl CharNGramSegmenter {
    /// Unpadded character n-grams.
    pub fn new(n: usize) -> Self {
        CharNGramSegmenter {
            n: n.max(1),
            padded: false,
            pad_char: '#',
        }
    }

    /// Padded character bigrams, as used by the bi-gram blocking baseline.
    pub fn padded_bigrams() -> Self {
        CharNGramSegmenter {
            n: 2,
            padded: true,
            pad_char: '#',
        }
    }

    /// Enable padding with the given character.
    pub fn with_padding(mut self, pad_char: char) -> Self {
        self.padded = true;
        self.pad_char = pad_char;
        self
    }
}

impl Segmenter for CharNGramSegmenter {
    fn split(&self, value: &str) -> Vec<String> {
        let mut chars: Vec<char> = Vec::new();
        if self.padded {
            chars.extend(std::iter::repeat_n(self.pad_char, self.n - 1));
        }
        chars.extend(value.chars());
        if self.padded {
            chars.extend(std::iter::repeat_n(self.pad_char, self.n - 1));
        }
        if chars.len() < self.n {
            // A value shorter than n yields itself (if non-empty) so that no
            // information is silently lost.
            return if value.is_empty() {
                Vec::new()
            } else {
                vec![value.to_string()]
            };
        }
        chars
            .windows(self.n)
            .map(|w| w.iter().collect::<String>())
            .collect()
    }

    fn name(&self) -> &'static str {
        "char-ngram"
    }
}

/// Word n-gram segmenter: n-grams over whitespace-separated tokens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordNGramSegmenter {
    /// The n-gram size (≥ 1). `n = 1` is plain word tokenisation.
    pub n: usize,
    /// The string used to join words inside one gram.
    pub joiner: String,
}

impl WordNGramSegmenter {
    /// Word n-grams joined by a single space.
    pub fn new(n: usize) -> Self {
        WordNGramSegmenter {
            n: n.max(1),
            joiner: " ".to_string(),
        }
    }

    /// Plain word tokenisation (`n = 1`).
    pub fn words() -> Self {
        Self::new(1)
    }
}

impl Segmenter for WordNGramSegmenter {
    fn split(&self, value: &str) -> Vec<String> {
        let words: Vec<&str> = value.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        if words.len() < self.n {
            return vec![words.join(&self.joiner)];
        }
        words
            .windows(self.n)
            .map(|w| w.join(&self.joiner))
            .collect()
    }

    fn name(&self) -> &'static str {
        "word-ngram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn char_bigrams_unpadded() {
        let s = CharNGramSegmenter::new(2);
        assert_eq!(s.split("ohm"), vec!["oh", "hm"]);
        assert_eq!(s.split("ab"), vec!["ab"]);
    }

    #[test]
    fn char_trigram() {
        let s = CharNGramSegmenter::new(3);
        assert_eq!(s.split("t83a"), vec!["t83", "83a"]);
    }

    #[test]
    fn short_values_yield_themselves() {
        let s = CharNGramSegmenter::new(3);
        assert_eq!(s.split("ab"), vec!["ab"]);
        assert_eq!(s.split("a"), vec!["a"]);
        assert!(s.split("").is_empty());
    }

    #[test]
    fn padded_bigrams_cover_prefix_and_suffix() {
        let s = CharNGramSegmenter::padded_bigrams();
        assert_eq!(s.split("ab"), vec!["#a", "ab", "b#"]);
        assert_eq!(s.split("x"), vec!["#x", "x#"]);
    }

    #[test]
    fn n_zero_is_clamped_to_one() {
        let s = CharNGramSegmenter::new(0);
        assert_eq!(s.n, 1);
        assert_eq!(s.split("ab"), vec!["a", "b"]);
    }

    #[test]
    fn custom_padding_char() {
        let s = CharNGramSegmenter::new(2).with_padding('_');
        assert_eq!(s.split("ab"), vec!["_a", "ab", "b_"]);
    }

    #[test]
    fn unicode_grams_do_not_split_codepoints() {
        let s = CharNGramSegmenter::new(2);
        assert_eq!(s.split("éà"), vec!["éà"]);
        assert_eq!(s.split("éàe"), vec!["éà", "àe"]);
    }

    #[test]
    fn word_unigrams_and_bigrams() {
        let w1 = WordNGramSegmenter::words();
        assert_eq!(
            w1.split("Dresden Elbe Valley"),
            vec!["Dresden", "Elbe", "Valley"]
        );
        let w2 = WordNGramSegmenter::new(2);
        assert_eq!(
            w2.split("Dresden Elbe Valley"),
            vec!["Dresden Elbe", "Elbe Valley"]
        );
    }

    #[test]
    fn word_ngrams_short_input() {
        let w3 = WordNGramSegmenter::new(3);
        assert_eq!(w3.split("Copacabana Beach"), vec!["Copacabana Beach"]);
        assert!(w3.split("   ").is_empty());
        assert!(w3.split("").is_empty());
    }

    #[test]
    fn names() {
        assert_eq!(CharNGramSegmenter::new(2).name(), "char-ngram");
        assert_eq!(WordNGramSegmenter::words().name(), "word-ngram");
    }

    proptest! {
        /// Unpadded char n-grams: every gram has exactly n chars (when the
        /// input is at least n chars long) and the number of grams is
        /// len - n + 1.
        #[test]
        fn prop_char_ngram_counts(value in "[a-z0-9]{0,30}", n in 1usize..5) {
            let s = CharNGramSegmenter::new(n);
            let grams = s.split(&value);
            let len = value.chars().count();
            if len >= n {
                prop_assert_eq!(grams.len(), len - n + 1);
                for g in &grams {
                    prop_assert_eq!(g.chars().count(), n);
                    prop_assert!(value.contains(g.as_str()));
                }
            } else if len > 0 {
                prop_assert_eq!(grams, vec![value.clone()]);
            } else {
                prop_assert!(grams.is_empty());
            }
        }

        /// Word n-grams always contain between 1 and n words.
        #[test]
        fn prop_word_ngram_word_counts(value in "[a-z ]{0,40}", n in 1usize..4) {
            let s = WordNGramSegmenter::new(n);
            for gram in s.split(&value) {
                let words = gram.split_whitespace().count();
                prop_assert!(words >= 1 && words <= n);
            }
        }
    }
}
