//! Segment interning and frequency counting.
//!
//! The learning algorithm needs, for every property, the frequency of each
//! segment over the training data ("for each property p and for each segment
//! a, we compute the frequency of p(X,Y) ∧ subsegment(Y,a)"). The
//! [`SegmentDictionary`] interns segment strings into dense [`SegmentId`]s
//! and keeps occurrence counts, mirroring the statistics the paper reports
//! (7 842 distinct segments, 26 077 occurrences).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compact identifier for an interned segment string.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between segment strings and [`SegmentId`]s, with
/// per-segment occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct SegmentDictionary {
    by_text: HashMap<String, SegmentId>,
    texts: Vec<String>,
    occurrences: Vec<u64>,
}

impl SegmentDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `segment` and increment its occurrence count by one.
    pub fn observe(&mut self, segment: &str) -> SegmentId {
        let id = self.intern(segment);
        self.occurrences[id.index()] += 1;
        id
    }

    /// Intern `segment` without counting an occurrence.
    pub fn intern(&mut self, segment: &str) -> SegmentId {
        if let Some(id) = self.by_text.get(segment) {
            return *id;
        }
        let id = SegmentId(self.texts.len() as u32);
        self.by_text.insert(segment.to_string(), id);
        self.texts.push(segment.to_string());
        self.occurrences.push(0);
        id
    }

    /// Look up a segment's id without interning it.
    pub fn get(&self, segment: &str) -> Option<SegmentId> {
        self.by_text.get(segment).copied()
    }

    /// The text of an interned segment.
    pub fn text(&self, id: SegmentId) -> Option<&str> {
        self.texts.get(id.index()).map(String::as_str)
    }

    /// Number of occurrences observed for a segment.
    pub fn occurrences(&self, id: SegmentId) -> u64 {
        self.occurrences.get(id.index()).copied().unwrap_or(0)
    }

    /// Number of distinct segments.
    pub fn distinct_count(&self) -> usize {
        self.texts.len()
    }

    /// Total number of observed occurrences across all segments.
    pub fn total_occurrences(&self) -> u64 {
        self.occurrences.iter().sum()
    }

    /// `true` when no segment has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterate over `(id, text, occurrences)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &str, u64)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (SegmentId(i as u32), t.as_str(), self.occurrences[i]))
    }

    /// The `n` most frequent segments, ties broken by id (insertion order).
    pub fn most_frequent(&self, n: usize) -> Vec<(SegmentId, &str, u64)> {
        let mut all: Vec<_> = self.iter().collect();
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_occurrences() {
        let mut d = SegmentDictionary::new();
        let ohm = d.observe("ohm");
        d.observe("ohm");
        d.observe("63v");
        assert_eq!(d.distinct_count(), 2);
        assert_eq!(d.total_occurrences(), 3);
        assert_eq!(d.occurrences(ohm), 2);
        assert_eq!(d.text(ohm), Some("ohm"));
    }

    #[test]
    fn intern_does_not_count() {
        let mut d = SegmentDictionary::new();
        let id = d.intern("t83");
        assert_eq!(d.occurrences(id), 0);
        assert_eq!(d.total_occurrences(), 0);
        d.observe("t83");
        assert_eq!(d.occurrences(id), 1);
    }

    #[test]
    fn get_and_text_for_unknown() {
        let d = SegmentDictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.get("x"), None);
        assert_eq!(d.text(SegmentId(5)), None);
        assert_eq!(d.occurrences(SegmentId(5)), 0);
    }

    #[test]
    fn ids_are_stable_and_dense() {
        let mut d = SegmentDictionary::new();
        let a = d.observe("a");
        let b = d.observe("b");
        let a2 = d.observe("a");
        assert_eq!(a, a2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn most_frequent_orders_by_count() {
        let mut d = SegmentDictionary::new();
        for _ in 0..5 {
            d.observe("crcw0805");
        }
        for _ in 0..2 {
            d.observe("t83");
        }
        d.observe("ohm");
        let top = d.most_frequent(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, "crcw0805");
        assert_eq!(top[0].2, 5);
        assert_eq!(top[1].1, "t83");
        let all = d.most_frequent(100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = SegmentDictionary::new();
        d.observe("z");
        d.observe("a");
        let order: Vec<&str> = d.iter().map(|(_, t, _)| t).collect();
        assert_eq!(order, vec!["z", "a"]);
    }
}
