//! The [`Segmenter`] trait and composition helpers.
//!
//! The paper leaves the choice of the `split` function to a domain expert:
//! "The way a value is split into segments is specified by a domain expert.
//! One can use separation characters (e.g., ':', '-', ';', ' ') or n-grams."
//! The trait below is that extension point; [`SegmenterKind`] is a serialisable
//! configuration enum so experiments can sweep over segmenters, and
//! [`NormalizingSegmenter`] composes a [`Normalizer`] with any segmenter.

use crate::alphanum::AlphaNumSegmenter;
use crate::ngram::{CharNGramSegmenter, WordNGramSegmenter};
use crate::normalize::Normalizer;
use crate::separator::SeparatorSegmenter;
use serde::{Deserialize, Serialize};

/// Splits a property value into segments.
pub trait Segmenter: Send + Sync {
    /// Split `value` into segments. Segments may repeat; the caller decides
    /// whether occurrences or distinct segments matter.
    fn split(&self, value: &str) -> Vec<String>;

    /// A short, stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Split and deduplicate, preserving first-occurrence order. This is the
    /// operation used when building the `subsegment(Y, a)` facts: the paper's
    /// `subsegment` predicate only expresses that a segment "occurs at least
    /// one time in the value".
    fn split_distinct(&self, value: &str) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        self.split(value)
            .into_iter()
            .filter(|s| seen.insert(s.clone()))
            .collect()
    }
}

/// A serialisable choice of segmentation strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SegmenterKind {
    /// Split on non-alphanumeric separators (the paper's default).
    #[default]
    Separator,
    /// Split on whitespace only.
    Whitespace,
    /// Split on separators and letter/digit transitions.
    AlphaNumTransition,
    /// Character n-grams of the given size.
    CharNGram(usize),
    /// Padded character bigrams.
    PaddedBigram,
    /// Word n-grams of the given size.
    WordNGram(usize),
}

impl SegmenterKind {
    /// Instantiate the segmenter described by this configuration.
    pub fn build(&self) -> Box<dyn Segmenter> {
        match self {
            SegmenterKind::Separator => Box::new(SeparatorSegmenter::non_alphanumeric()),
            SegmenterKind::Whitespace => Box::new(SeparatorSegmenter::whitespace()),
            SegmenterKind::AlphaNumTransition => Box::new(AlphaNumSegmenter::new()),
            SegmenterKind::CharNGram(n) => Box::new(CharNGramSegmenter::new(*n)),
            SegmenterKind::PaddedBigram => Box::new(CharNGramSegmenter::padded_bigrams()),
            SegmenterKind::WordNGram(n) => Box::new(WordNGramSegmenter::new(*n)),
        }
    }

    /// A short, stable name for reports.
    pub fn name(&self) -> String {
        match self {
            SegmenterKind::Separator => "separator".to_string(),
            SegmenterKind::Whitespace => "whitespace".to_string(),
            SegmenterKind::AlphaNumTransition => "alphanum-transition".to_string(),
            SegmenterKind::CharNGram(n) => format!("char-{n}gram"),
            SegmenterKind::PaddedBigram => "padded-bigram".to_string(),
            SegmenterKind::WordNGram(n) => format!("word-{n}gram"),
        }
    }
}

/// Applies a [`Normalizer`] to the value before delegating to an inner
/// segmenter.
pub struct NormalizingSegmenter<S> {
    /// The normalization pipeline applied first.
    pub normalizer: Normalizer,
    /// The segmenter applied to the normalised value.
    pub inner: S,
}

impl<S: Segmenter> NormalizingSegmenter<S> {
    /// Compose the default normalizer with `inner`.
    pub fn new(inner: S) -> Self {
        NormalizingSegmenter {
            normalizer: Normalizer::default(),
            inner,
        }
    }

    /// Compose a specific normalizer with `inner`.
    pub fn with_normalizer(normalizer: Normalizer, inner: S) -> Self {
        NormalizingSegmenter { normalizer, inner }
    }
}

impl<S: Segmenter> Segmenter for NormalizingSegmenter<S> {
    fn split(&self, value: &str) -> Vec<String> {
        self.inner.split(&self.normalizer.apply(value))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl Segmenter for Box<dyn Segmenter> {
    fn split(&self, value: &str) -> Vec<String> {
        self.as_ref().split(value)
    }

    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_distinct_deduplicates_in_order() {
        let s = SeparatorSegmenter::non_alphanumeric();
        assert_eq!(
            s.split_distinct("A-B-A-C-B"),
            vec!["A".to_string(), "B".to_string(), "C".to_string()]
        );
        assert_eq!(s.split("A-B-A").len(), 3);
    }

    #[test]
    fn kind_builds_matching_segmenter() {
        for (kind, value, expect_contains) in [
            (SegmenterKind::Separator, "CRCW0805-63V", "CRCW0805"),
            (SegmenterKind::Whitespace, "Louvre Museum", "Museum"),
            (SegmenterKind::AlphaNumTransition, "63V", "V"),
            (SegmenterKind::CharNGram(2), "ohm", "oh"),
            (SegmenterKind::PaddedBigram, "ab", "#a"),
            (
                SegmenterKind::WordNGram(2),
                "Dresden Elbe Valley",
                "Dresden Elbe",
            ),
        ] {
            let seg = kind.build();
            let out = seg.split(value);
            assert!(
                out.iter().any(|s| s == expect_contains),
                "{kind:?} on {value:?} gave {out:?}, expected to contain {expect_contains:?}"
            );
        }
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            SegmenterKind::Separator,
            SegmenterKind::Whitespace,
            SegmenterKind::AlphaNumTransition,
            SegmenterKind::CharNGram(3),
            SegmenterKind::PaddedBigram,
            SegmenterKind::WordNGram(2),
        ];
        let names: std::collections::HashSet<String> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        assert_eq!(SegmenterKind::default(), SegmenterKind::Separator);
    }

    #[test]
    fn normalizing_segmenter_lowercases_first() {
        let seg = NormalizingSegmenter::new(SeparatorSegmenter::non_alphanumeric());
        assert_eq!(seg.split("CRCW0805-10K"), vec!["crcw0805", "10k"]);
        assert_eq!(seg.name(), "separator");
        let id = NormalizingSegmenter::with_normalizer(
            Normalizer::identity(),
            SeparatorSegmenter::non_alphanumeric(),
        );
        assert_eq!(id.split("CRCW0805-10K"), vec!["CRCW0805", "10K"]);
    }

    #[test]
    fn boxed_segmenter_delegates() {
        let boxed: Box<dyn Segmenter> = SegmenterKind::Separator.build();
        assert_eq!(boxed.split("a-b"), vec!["a", "b"]);
        assert_eq!(boxed.name(), "separator");
        assert_eq!(boxed.split_distinct("a-a"), vec!["a"]);
    }
}
