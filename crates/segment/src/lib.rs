//! # classilink-segment
//!
//! Property-value segmentation for the `classilink` workspace (reproduction
//! of *"Classification Rule Learning for Data Linking"*, Pernelle & Saïs,
//! LWDM @ EDBT 2012).
//!
//! The paper's classification rules have the form
//! `p(X, Y) ∧ subsegment(Y, a) ⇒ c(X)`, where `subsegment(Y, a)` holds when
//! the segment `a` occurs at least once in the value `Y`. How a value is
//! split into segments "is specified by a domain expert. One can use
//! separation characters (e.g., ':', '-', ';', ' ') or n-grams."
//!
//! This crate provides those splitters plus supporting machinery:
//!
//! * [`separator`] — split on separator characters (the paper's evaluation
//!   splits part numbers "using non-alphabetical and non-numerical
//!   characters").
//! * [`alphanum`] — additionally split at letter/digit transitions (ablation
//!   A1 of DESIGN.md).
//! * [`ngram`] — character and word n-grams, padded bigrams.
//! * [`normalize`] — case folding, whitespace collapsing, accent stripping.
//! * [`pipeline`] — the [`Segmenter`] trait, the serialisable
//!   [`SegmenterKind`] configuration and normalizer composition.
//! * [`dictionary`] — segment interning and occurrence counting (the paper
//!   reports 7 842 distinct segments / 26 077 occurrences for its data set).
//!
//! ## Quick example
//!
//! ```
//! use classilink_segment::{Segmenter, SeparatorSegmenter};
//!
//! let splitter = SeparatorSegmenter::non_alphanumeric();
//! assert_eq!(
//!     splitter.split("CRCW0805-10K 5% 63V"),
//!     vec!["CRCW0805", "10K", "5", "63V"]
//! );
//! ```

pub mod alphanum;
pub mod dictionary;
pub mod ngram;
pub mod normalize;
pub mod pipeline;
pub mod separator;

pub use alphanum::AlphaNumSegmenter;
pub use dictionary::{SegmentDictionary, SegmentId};
pub use ngram::{CharNGramSegmenter, WordNGramSegmenter};
pub use normalize::Normalizer;
pub use pipeline::{NormalizingSegmenter, Segmenter, SegmenterKind};
pub use separator::{SeparatorClass, SeparatorSegmenter};
