//! String normalization applied before segmentation.
//!
//! The paper lets a domain expert decide how values are split; in practice
//! part numbers and labels come with inconsistent case, stray whitespace and
//! accented characters. [`Normalizer`] is a small configurable pipeline
//! applied to a value before a segmenter sees it, so that `"CRCW0805 "` and
//! `"crcw0805"` yield the same segments.

use serde::{Deserialize, Serialize};

/// Configuration of the normalization pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Convert the value to lowercase.
    pub lowercase: bool,
    /// Trim leading/trailing whitespace and collapse internal runs of
    /// whitespace to a single space.
    pub collapse_whitespace: bool,
    /// Replace common accented latin characters by their ASCII base letter
    /// (é → e, ü → u, …).
    pub strip_accents: bool,
}

impl Default for Normalizer {
    fn default() -> Self {
        Normalizer {
            lowercase: true,
            collapse_whitespace: true,
            strip_accents: true,
        }
    }
}

impl Normalizer {
    /// A pipeline that leaves the value untouched.
    pub fn identity() -> Self {
        Normalizer {
            lowercase: false,
            collapse_whitespace: false,
            strip_accents: false,
        }
    }

    /// Apply the configured steps to `value`.
    ///
    /// Lower-casing runs before accent stripping so that the combination is
    /// idempotent (e.g. `Ý` → `ý` → `y`).
    pub fn apply(&self, value: &str) -> String {
        let mut out = value.to_string();
        if self.lowercase {
            out = out.to_lowercase();
        }
        if self.strip_accents {
            out = out.chars().map(strip_accent).collect();
        }
        if self.collapse_whitespace {
            out = collapse_ws(&out);
        }
        out
    }
}

/// Map one character to its unaccented ASCII equivalent when known.
fn strip_accent(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' => 'A',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'È' | 'É' | 'Ê' | 'Ë' => 'E',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'Ì' | 'Í' | 'Î' | 'Ï' => 'I',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' => 'o',
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' => 'O',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'Ù' | 'Ú' | 'Û' | 'Ü' => 'U',
        'ç' => 'c',
        'Ç' => 'C',
        'ñ' => 'n',
        'Ñ' => 'N',
        'ý' | 'ÿ' => 'y',
        'Ý' => 'Y',
        other => other,
    }
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true; // trims leading whitespace
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.push(c);
            last_was_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_normalization() {
        let n = Normalizer::default();
        assert_eq!(n.apply("  CRCW0805   10K  "), "crcw0805 10k");
        assert_eq!(n.apply("Résistance à couche"), "resistance a couche");
        assert_eq!(n.apply("Tantalum\t\nCapacitor"), "tantalum capacitor");
    }

    #[test]
    fn identity_changes_nothing() {
        let n = Normalizer::identity();
        let s = "  Mixed CASE  é ";
        assert_eq!(n.apply(s), s);
    }

    #[test]
    fn individual_steps() {
        let lower_only = Normalizer {
            lowercase: true,
            collapse_whitespace: false,
            strip_accents: false,
        };
        assert_eq!(lower_only.apply("AbC  "), "abc  ");
        let ws_only = Normalizer {
            lowercase: false,
            collapse_whitespace: true,
            strip_accents: false,
        };
        assert_eq!(ws_only.apply(" A  B "), "A B");
        let accents_only = Normalizer {
            lowercase: false,
            collapse_whitespace: false,
            strip_accents: true,
        };
        assert_eq!(accents_only.apply("Çédille"), "Cedille");
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        let n = Normalizer::default();
        assert_eq!(n.apply(""), "");
        assert_eq!(n.apply("   \t\n "), "");
    }

    proptest! {
        /// Normalization is idempotent: applying it twice equals applying it once.
        #[test]
        fn prop_idempotent(s in "\\PC{0,60}") {
            let n = Normalizer::default();
            let once = n.apply(&s);
            let twice = n.apply(&once);
            prop_assert_eq!(once, twice);
        }

        /// The default pipeline never produces uppercase ASCII characters or
        /// runs of spaces.
        #[test]
        fn prop_no_upper_no_double_space(s in "\\PC{0,60}") {
            let out = Normalizer::default().apply(&s);
            prop_assert!(!out.contains("  "));
            prop_assert!(!out.chars().any(|c| c.is_ascii_uppercase()));
            prop_assert!(!out.starts_with(' ') && !out.ends_with(' '));
        }
    }
}
