//! Separator-based segmentation — the splitter used in the paper's
//! evaluation.
//!
//! > "Partnumbers have been split into 7842 distinct segments (26077
//! > occurrences) using non-alphabetical and non-numerical characters
//! > (e.g. space, '-', '.', ...)."
//!
//! [`SeparatorSegmenter`] splits a value on a configurable class of
//! separator characters and discards empty pieces and (optionally) pieces
//! shorter than a minimum length.

use crate::pipeline::Segmenter;
use serde::{Deserialize, Serialize};

/// Which characters act as separators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeparatorClass {
    /// Any character that is neither alphabetic nor numeric (the paper's
    /// choice for part numbers).
    NonAlphanumeric,
    /// Whitespace only (suitable for natural-language labels).
    Whitespace,
    /// An explicit list of separator characters.
    Chars(Vec<char>),
}

impl SeparatorClass {
    fn is_separator(&self, c: char) -> bool {
        match self {
            SeparatorClass::NonAlphanumeric => !c.is_alphanumeric(),
            SeparatorClass::Whitespace => c.is_whitespace(),
            SeparatorClass::Chars(chars) => chars.contains(&c),
        }
    }
}

/// Splits values on separator characters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeparatorSegmenter {
    /// The class of characters treated as separators.
    pub class: SeparatorClass,
    /// Minimum segment length (in characters); shorter segments are dropped.
    pub min_length: usize,
}

impl SeparatorSegmenter {
    /// The paper's configuration: split on non-alphanumeric characters and
    /// keep every non-empty segment.
    pub fn non_alphanumeric() -> Self {
        SeparatorSegmenter {
            class: SeparatorClass::NonAlphanumeric,
            min_length: 1,
        }
    }

    /// Split on whitespace only.
    pub fn whitespace() -> Self {
        SeparatorSegmenter {
            class: SeparatorClass::Whitespace,
            min_length: 1,
        }
    }

    /// Split on an explicit list of characters.
    pub fn with_chars(chars: impl Into<Vec<char>>) -> Self {
        SeparatorSegmenter {
            class: SeparatorClass::Chars(chars.into()),
            min_length: 1,
        }
    }

    /// Set the minimum kept segment length.
    pub fn min_length(mut self, min_length: usize) -> Self {
        self.min_length = min_length.max(1);
        self
    }
}

impl Default for SeparatorSegmenter {
    fn default() -> Self {
        Self::non_alphanumeric()
    }
}

impl Segmenter for SeparatorSegmenter {
    fn split(&self, value: &str) -> Vec<String> {
        value
            .split(|c| self.class.is_separator(c))
            .filter(|s| !s.is_empty() && s.chars().count() >= self.min_length)
            .map(str::to_string)
            .collect()
    }

    fn name(&self) -> &'static str {
        "separator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_part_numbers_like_the_paper() {
        let s = SeparatorSegmenter::non_alphanumeric();
        assert_eq!(
            s.split("CRCW0805-10K 5% 63V"),
            vec!["CRCW0805", "10K", "5", "63V"]
        );
        assert_eq!(s.split("T83.A225/K"), vec!["T83", "A225", "K"]);
        assert_eq!(s.split("ohm"), vec!["ohm"]);
    }

    #[test]
    fn empty_and_separator_only_values() {
        let s = SeparatorSegmenter::non_alphanumeric();
        assert!(s.split("").is_empty());
        assert!(s.split("--- . ;;").is_empty());
    }

    #[test]
    fn whitespace_class_keeps_punctuation() {
        let s = SeparatorSegmenter::whitespace();
        assert_eq!(
            s.split("Place de la Concorde"),
            vec!["Place", "de", "la", "Concorde"]
        );
        assert_eq!(s.split("10-K ohm"), vec!["10-K", "ohm"]);
    }

    #[test]
    fn explicit_chars_class() {
        let s = SeparatorSegmenter::with_chars(vec!['-', '_']);
        assert_eq!(s.split("A-B_C D"), vec!["A", "B", "C D"]);
    }

    #[test]
    fn min_length_filters_short_segments() {
        let s = SeparatorSegmenter::non_alphanumeric().min_length(2);
        assert_eq!(s.split("CRCW0805-5-63V"), vec!["CRCW0805", "63V"]);
        // min_length is clamped to at least 1
        let s0 = SeparatorSegmenter::non_alphanumeric().min_length(0);
        assert_eq!(s0.min_length, 1);
    }

    #[test]
    fn unicode_values_split_cleanly() {
        let s = SeparatorSegmenter::non_alphanumeric();
        assert_eq!(
            s.split("résistance—à_couche"),
            vec!["résistance", "à", "couche"]
        );
    }

    #[test]
    fn segmenter_name() {
        assert_eq!(SeparatorSegmenter::default().name(), "separator");
    }

    proptest! {
        /// Every produced segment is a non-empty substring of the input and
        /// contains no separator character.
        #[test]
        fn prop_segments_are_clean_substrings(value in "\\PC{0,50}") {
            let s = SeparatorSegmenter::non_alphanumeric();
            for seg in s.split(&value) {
                prop_assert!(!seg.is_empty());
                prop_assert!(value.contains(&seg));
                prop_assert!(seg.chars().all(|c| c.is_alphanumeric()));
            }
        }

        /// Splitting is insensitive to leading/trailing separators.
        #[test]
        fn prop_outer_separators_ignored(value in "[A-Za-z0-9]{1,10}") {
            let s = SeparatorSegmenter::non_alphanumeric();
            let padded = format!("--{value}..");
            prop_assert_eq!(s.split(&padded), s.split(&value));
        }
    }
}
