//! Error types for the rule-learning core.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while extracting training data or learning rules.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The training set is empty, so no frequency can be computed.
    EmptyTrainingSet,
    /// The support threshold is outside `(0, 1]`.
    InvalidThreshold(f64),
    /// A class IRI referenced by the training data is not in the ontology.
    UnknownClass(String),
    /// A property was selected by configuration but never appears in the
    /// training data.
    UnknownProperty(String),
    /// An error bubbled up from the ontology layer.
    Ontology(String),
    /// An error bubbled up from the RDF layer.
    Rdf(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyTrainingSet => write!(f, "the training set is empty"),
            CoreError::InvalidThreshold(t) => {
                write!(f, "support threshold {t} must be within (0, 1]")
            }
            CoreError::UnknownClass(iri) => write!(f, "unknown class in training data: {iri}"),
            CoreError::UnknownProperty(iri) => {
                write!(f, "selected property never observed: {iri}")
            }
            CoreError::Ontology(msg) => write!(f, "ontology error: {msg}"),
            CoreError::Rdf(msg) => write!(f, "rdf error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<classilink_ontology::OntologyError> for CoreError {
    fn from(e: classilink_ontology::OntologyError) -> Self {
        CoreError::Ontology(e.to_string())
    }
}

impl From<classilink_rdf::RdfError> for CoreError {
    fn from(e: classilink_rdf::RdfError) -> Self {
        CoreError::Rdf(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(CoreError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(CoreError::InvalidThreshold(1.5).to_string().contains("1.5"));
        assert!(CoreError::UnknownClass("c".into())
            .to_string()
            .contains("class"));
        assert!(CoreError::UnknownProperty("p".into())
            .to_string()
            .contains("property"));
        assert!(CoreError::Ontology("x".into())
            .to_string()
            .contains("ontology"));
        assert!(CoreError::Rdf("y".into()).to_string().contains("rdf"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = classilink_ontology::OntologyError::UnknownClassId(1).into();
        assert!(matches!(e, CoreError::Ontology(_)));
        let e: CoreError = classilink_rdf::RdfError::InvalidIri("x".into()).into();
        assert!(matches!(e, CoreError::Rdf(_)));
    }
}
