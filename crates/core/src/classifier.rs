//! Applying learnt rules to classify new external data items.
//!
//! "When new data has to be integrated in an existing RDF data source, these
//! rules are used to identify the classes which have to be compared to these
//! new data." The [`RuleClassifier`] indexes the learnt rules by
//! `(property, segment)` so that classifying one external item only touches
//! the rules its own segments can trigger.

use crate::config::LearnerConfig;
use crate::learner::LearnOutcome;
use crate::rule::ClassificationRule;
use crate::training::literal_facts;
use classilink_ontology::ClassId;
use classilink_rdf::{Graph, Term};
use classilink_segment::{Normalizer, SegmenterKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A predicted class for one external item, with the evidence behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The predicted class.
    pub class: ClassId,
    /// IRI of the predicted class.
    pub class_iri: String,
    /// Confidence of the best rule that fired for this class.
    pub confidence: f64,
    /// Lift of the best rule that fired for this class.
    pub lift: f64,
    /// The segments (with their property) that triggered rules for this
    /// class, as `(property IRI, segment)` pairs.
    pub evidence: Vec<(String, String)>,
}

/// A classifier built from learnt rules.
///
/// Rules concluding on the same class for a given item determine the same
/// linking subspace; following the paper, only the best-confidence one is
/// kept per class (its confidence and lift become the prediction's scores).
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    rules: Vec<ClassificationRule>,
    /// property IRI → segment → indexes into `rules`. Nested maps so that
    /// classification can look facts up with borrowed `&str` keys —
    /// columnar record stores feed this without allocating per fact.
    index: HashMap<String, HashMap<String, Vec<usize>>>,
    segmenter: SegmenterKind,
    normalize: bool,
}

impl RuleClassifier {
    /// Build a classifier from rules, using the given segmentation settings
    /// (they must match the settings the rules were learnt with).
    pub fn new(rules: Vec<ClassificationRule>, segmenter: SegmenterKind, normalize: bool) -> Self {
        let mut index: HashMap<String, HashMap<String, Vec<usize>>> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            index
                .entry(rule.property.clone())
                .or_default()
                .entry(rule.segment.clone())
                .or_default()
                .push(i);
        }
        RuleClassifier {
            rules,
            index,
            segmenter,
            normalize,
        }
    }

    /// Build a classifier directly from a learning outcome and the
    /// configuration it was produced with.
    pub fn from_outcome(outcome: &LearnOutcome, config: &LearnerConfig) -> Self {
        Self::new(
            outcome.rules.clone(),
            config.segmenter.clone(),
            config.normalize,
        )
    }

    /// The rules backing this classifier, in ranking order.
    pub fn rules(&self) -> &[ClassificationRule] {
        &self.rules
    }

    /// A classifier restricted to rules with confidence at least
    /// `min_confidence` (used to produce the rows of Table 1).
    pub fn with_min_confidence(&self, min_confidence: f64) -> RuleClassifier {
        let rules: Vec<ClassificationRule> = self
            .rules
            .iter()
            .filter(|r| r.confidence() >= min_confidence - 1e-12)
            .cloned()
            .collect();
        Self::new(rules, self.segmenter.clone(), self.normalize)
    }

    /// Segment the value of one fact exactly as the learner did.
    fn segments_of(&self, value: &str) -> Vec<String> {
        let segmenter = self.segmenter.build();
        if self.normalize {
            segmenter.split_distinct(&Normalizer::default().apply(value))
        } else {
            segmenter.split_distinct(value)
        }
    }

    /// Classify an external item given as `(property IRI, value)` facts.
    ///
    /// Returns one prediction per class that at least one rule concluded,
    /// ranked by confidence then lift (the paper's subspace ordering).
    pub fn classify_facts(&self, facts: &[(String, String)]) -> Vec<Prediction> {
        self.classify_fact_refs(facts.iter().map(|(p, v)| (p.as_str(), v.as_str())))
    }

    /// Classify an external item from **borrowed** facts. This is the
    /// ingestion path for columnar record stores: no property or value is
    /// cloned unless a rule actually fires (evidence strings).
    pub fn classify_fact_refs<'f>(
        &self,
        facts: impl IntoIterator<Item = (&'f str, &'f str)>,
    ) -> Vec<Prediction> {
        // class → (best rule index, evidence)
        let mut per_class: HashMap<ClassId, (usize, Vec<(String, String)>)> = HashMap::new();
        for (property, value) in facts {
            let Some(segment_index) = self.index.get(property) else {
                continue;
            };
            for segment in self.segments_of(value) {
                let Some(rule_indexes) = segment_index.get(segment.as_str()) else {
                    continue;
                };
                for &ri in rule_indexes {
                    let rule = &self.rules[ri];
                    let entry = per_class
                        .entry(rule.class)
                        .or_insert_with(|| (ri, Vec::new()));
                    // Keep the best-ranked rule as the representative.
                    if self.rules[entry.0].ranking_cmp(rule).is_gt() {
                        entry.0 = ri;
                    }
                    entry.1.push((property.to_string(), segment.clone()));
                }
            }
        }
        let mut predictions: Vec<Prediction> = per_class
            .into_iter()
            .map(|(class, (best, mut evidence))| {
                evidence.sort();
                evidence.dedup();
                let rule = &self.rules[best];
                Prediction {
                    class,
                    class_iri: rule.class_iri.clone(),
                    confidence: rule.confidence(),
                    lift: rule.lift(),
                    evidence,
                }
            })
            .collect();
        predictions.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.lift
                        .partial_cmp(&a.lift)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then_with(|| a.class_iri.cmp(&b.class_iri))
        });
        predictions
    }

    /// Classify an external item stored in an RDF graph.
    pub fn classify_item(&self, graph: &Graph, item: &Term) -> Vec<Prediction> {
        self.classify_facts(&literal_facts(graph, item))
    }

    /// The single best prediction for an item's facts (a "decision" in the
    /// paper's Table 1 vocabulary), if any rule fired.
    pub fn decide(&self, facts: &[(String, String)]) -> Option<Prediction> {
        self.classify_facts(facts).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LearnerConfig, PropertySelection};
    use crate::learner::RuleLearner;
    use crate::measures::Contingency;
    use crate::training::{TrainingExample, TrainingSet};
    use classilink_ontology::OntologyBuilder;
    use classilink_rdf::Triple;

    const PN: &str = "http://provider.e.org/v#partNumber";

    fn rule(segment: &str, class: u32, premise: u64, both: u64) -> ClassificationRule {
        ClassificationRule {
            property: PN.to_string(),
            segment: segment.to_string(),
            class: ClassId(class),
            class_iri: format!("http://e.org/c#C{class}"),
            class_label: format!("C{class}"),
            quality: Contingency::new(1000, premise, 100, both).quality(),
        }
    }

    fn facts(pn: &str) -> Vec<(String, String)> {
        vec![(PN.to_string(), pn.to_string())]
    }

    fn classifier(rules: Vec<ClassificationRule>) -> RuleClassifier {
        RuleClassifier::new(rules, SegmenterKind::Separator, true)
    }

    #[test]
    fn classification_returns_ranked_predictions() {
        let c = classifier(vec![
            rule("ohm", 1, 50, 50),  // conf 1.0
            rule("63v", 2, 100, 60), // conf 0.6
            rule("63v", 1, 100, 40), // conf 0.4 (same premise, class 1)
        ]);
        let preds = c.classify_facts(&facts("CRCW0805-10K-ohm-63V"));
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].class, ClassId(1));
        assert_eq!(preds[0].confidence, 1.0);
        assert_eq!(preds[1].class, ClassId(2));
        assert!((preds[1].confidence - 0.6).abs() < 1e-12);
        // Class 1 evidence contains both the "ohm" and "63v" segments.
        assert_eq!(preds[0].evidence.len(), 2);
    }

    #[test]
    fn same_class_rules_are_deduplicated_keeping_best() {
        let c = classifier(vec![rule("ohm", 1, 50, 50), rule("63v", 1, 100, 40)]);
        let preds = c.classify_facts(&facts("ohm 63V"));
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].confidence, 1.0);
    }

    #[test]
    fn no_matching_rule_means_no_prediction() {
        let c = classifier(vec![rule("ohm", 1, 50, 50)]);
        assert!(c.classify_facts(&facts("T83-A225")).is_empty());
        assert!(c.classify_facts(&[]).is_empty());
        assert!(c.decide(&facts("T83-A225")).is_none());
    }

    #[test]
    fn property_must_match() {
        let c = classifier(vec![rule("ohm", 1, 50, 50)]);
        let wrong_property = vec![("http://other.org/v#label".to_string(), "ohm".to_string())];
        assert!(c.classify_facts(&wrong_property).is_empty());
    }

    #[test]
    fn borrowed_and_owned_fact_ingestion_agree() {
        let c = classifier(vec![rule("ohm", 1, 50, 50), rule("63v", 2, 100, 60)]);
        let owned = facts("CRCW0805-10K-ohm-63V");
        let borrowed: Vec<(&str, &str)> = owned
            .iter()
            .map(|(p, v)| (p.as_str(), v.as_str()))
            .collect();
        assert_eq!(
            c.classify_facts(&owned),
            c.classify_fact_refs(borrowed.into_iter())
        );
    }

    #[test]
    fn decide_returns_top_prediction() {
        let c = classifier(vec![rule("ohm", 1, 50, 50), rule("t83", 2, 80, 40)]);
        let d = c.decide(&facts("ohm")).unwrap();
        assert_eq!(d.class, ClassId(1));
    }

    #[test]
    fn min_confidence_filter() {
        let c = classifier(vec![rule("ohm", 1, 50, 50), rule("63v", 2, 100, 60)]);
        let strict = c.with_min_confidence(0.9);
        assert_eq!(strict.rules().len(), 1);
        assert!(strict.classify_facts(&facts("63V")).is_empty());
        assert_eq!(strict.classify_facts(&facts("ohm")).len(), 1);
        // Threshold exactly at a rule's confidence keeps the rule.
        let exact = c.with_min_confidence(0.6);
        assert_eq!(exact.rules().len(), 2);
    }

    #[test]
    fn normalization_matches_learning() {
        // Rules store lowercase segments; classification of an uppercase
        // value must still fire when normalize = true …
        let c = classifier(vec![rule("ohm", 1, 50, 50)]);
        assert_eq!(c.classify_facts(&facts("10K-OHM")).len(), 1);
        // … and must not fire when normalize = false.
        let raw = RuleClassifier::new(
            vec![rule("ohm", 1, 50, 50)],
            SegmenterKind::Separator,
            false,
        );
        assert!(raw.classify_facts(&facts("10K-OHM")).is_empty());
        assert_eq!(raw.classify_facts(&facts("10K-ohm")).len(), 1);
    }

    #[test]
    fn classify_item_reads_graph_facts() {
        let c = classifier(vec![rule("ohm", 1, 50, 50)]);
        let mut g = Graph::new();
        g.insert(Triple::literal(
            "http://provider.e.org/item/1",
            PN,
            "10K-ohm",
        ));
        g.insert(Triple::iris(
            "http://provider.e.org/item/1",
            "http://provider.e.org/v#seeAlso",
            "http://x.org",
        ));
        let preds = c.classify_item(&g, &Term::iri("http://provider.e.org/item/1"));
        assert_eq!(preds.len(), 1);
        let none = c.classify_item(&g, &Term::iri("http://provider.e.org/item/2"));
        assert!(none.is_empty());
    }

    #[test]
    fn end_to_end_learn_then_classify() {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let resistor = b.class("FixedFilmResistor", Some(root));
        let capacitor = b.class("TantalumCapacitor", Some(root));
        let onto = b.build();

        let mut ts = TrainingSet::new();
        for i in 0..10 {
            ts.push(TrainingExample::new(
                Term::iri(format!("http://p.e.org/{i}")),
                Term::iri(format!("http://l.e.org/{i}")),
                facts(&format!("CRCW08{i:02}-ohm")),
                vec![resistor],
            ));
        }
        for i in 10..20 {
            ts.push(TrainingExample::new(
                Term::iri(format!("http://p.e.org/{i}")),
                Term::iri(format!("http://l.e.org/{i}")),
                facts(&format!("T83-A{i}")),
                vec![capacitor],
            ));
        }
        let config = LearnerConfig::default()
            .with_support_threshold(0.05)
            .with_properties(PropertySelection::single(PN));
        let outcome = RuleLearner::new(config.clone()).learn(&ts, &onto).unwrap();
        let classifier = RuleClassifier::from_outcome(&outcome, &config);

        let d = classifier.decide(&facts("CRCW0899-10K-ohm")).unwrap();
        assert_eq!(d.class, resistor);
        assert_eq!(d.confidence, 1.0);
        let d2 = classifier.decide(&facts("T83-B777")).unwrap();
        assert_eq!(d2.class, capacitor);
    }
}
