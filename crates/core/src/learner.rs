//! The rule learning algorithm (Algorithm 1 of the paper).
//!
//! The algorithm "is based on the idea of finding frequent subsegments in
//! frequent property instances of the data source SE appearing in TS". Its
//! steps, mirrored by [`RuleLearner::learn`]:
//!
//! 1. For each property instance `p(i, v)` of the external source, split the
//!    value `v` into segments and create the facts `subsegment(v, a)`.
//! 2. For each property `p` and segment `a`, compute the frequency of
//!    `p(X, Y) ∧ subsegment(Y, a)`; keep the pairs whose frequency exceeds
//!    the support threshold `th`.
//! 3. For each (most specific) class `c` of the local ontology, compute its
//!    frequency in `TS`; keep the classes whose frequency exceeds `th`.
//! 4. Compute the frequency of each conjunction
//!    `p(X, Y) ∧ subsegment(Y, a) ∧ c(X)`; keep those above `th`.
//! 5. Build the classification rules and compute their confidence and lift.

use crate::config::LearnerConfig;
use crate::error::Result;
use crate::measures::Contingency;
use crate::rule::ClassificationRule;
use crate::training::TrainingSet;
use classilink_ontology::{ClassId, Ontology};
use classilink_segment::{Normalizer, SegmentDictionary, SegmentId, Segmenter};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Statistics reported by a learning run, mirroring the quantities the paper
/// reports about its own run (7 842 distinct segments, 26 077 occurrences,
/// 7 058 selected occurrences, 68 frequent classes, 144 rules, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LearnStats {
    /// `|TS|`: number of training examples.
    pub examples: usize,
    /// Number of properties considered after selection.
    pub properties: usize,
    /// Number of distinct segments observed across all considered values.
    pub distinct_segments: usize,
    /// Total number of segment occurrences (one value may contain a segment
    /// several times; following the paper's `subsegment` semantics, an
    /// occurrence here is "segment s appears in value v", counted once per
    /// value).
    pub segment_occurrences: u64,
    /// Number of segment occurrences that belong to a *frequent*
    /// `(property, segment)` pair (the paper's "7058 occurrences of segments
    /// are selected").
    pub selected_segment_occurrences: u64,
    /// Number of frequent `(property, segment)` pairs.
    pub frequent_pairs: usize,
    /// Number of classes whose frequency exceeds the threshold.
    pub frequent_classes: usize,
    /// Number of classes observed in the training set (before filtering).
    pub observed_classes: usize,
    /// Number of rules produced.
    pub rules: usize,
    /// Number of distinct classes concluded by at least one rule (the paper:
    /// "we have found interesting segments for 16 classes … among 67 frequent
    /// classes").
    pub classes_with_rules: usize,
}

/// The outcome of a learning run: the rules plus run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LearnOutcome {
    /// The learnt classification rules, ranked by confidence then lift.
    pub rules: Vec<ClassificationRule>,
    /// Statistics about the run.
    pub stats: LearnStats,
}

impl LearnOutcome {
    /// The rules whose confidence is at least `min_confidence`.
    pub fn rules_with_confidence(&self, min_confidence: f64) -> Vec<&ClassificationRule> {
        self.rules
            .iter()
            .filter(|r| r.confidence() >= min_confidence)
            .collect()
    }

    /// Average lift over all rules (0.0 when there are none).
    pub fn average_lift(&self) -> f64 {
        if self.rules.is_empty() {
            return 0.0;
        }
        self.rules.iter().map(|r| r.lift()).sum::<f64>() / self.rules.len() as f64
    }
}

/// The rule learner: applies Algorithm 1 to a training set.
#[derive(Debug, Clone, Default)]
pub struct RuleLearner {
    config: LearnerConfig,
}

impl RuleLearner {
    /// A learner with the given configuration.
    pub fn new(config: LearnerConfig) -> Self {
        RuleLearner { config }
    }

    /// A learner with the paper's configuration (`th = 0.002`, separator
    /// segmentation).
    pub fn paper() -> Self {
        Self::new(LearnerConfig::paper())
    }

    /// The configuration in use.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Learn classification rules from `training` against `ontology`.
    pub fn learn(&self, training: &TrainingSet, ontology: &Ontology) -> Result<LearnOutcome> {
        self.config.validate()?;
        if training.is_empty() {
            return Err(crate::error::CoreError::EmptyTrainingSet);
        }
        let n = training.len() as u64;
        // Frequencies must *strictly exceed* th (the paper: "having a
        // frequency greater than th").
        let min_count = (self.config.support_threshold * n as f64).floor() as u64;

        let segmenter = self.config.segmenter.build();
        let normalizer = if self.config.normalize {
            Some(Normalizer::default())
        } else {
            None
        };
        let split = |value: &str| -> Vec<String> {
            match &normalizer {
                Some(norm) => segmenter.split_distinct(&norm.apply(value)),
                None => segmenter.split_distinct(value),
            }
        };

        // ------------------------------------------------------------------
        // Step 1 + 2: segment every considered value and count, per property,
        // how many examples contain each segment.
        // ------------------------------------------------------------------
        let mut properties: Vec<String> = Vec::new();
        let mut property_index: HashMap<String, u32> = HashMap::new();
        let mut dictionary = SegmentDictionary::new();
        // Per example: the set of (property index, segment id) pairs it exhibits.
        let mut example_pairs: Vec<Vec<(u32, SegmentId)>> = Vec::with_capacity(training.len());
        // (property index, segment id) → number of examples exhibiting it.
        let mut pair_counts: HashMap<(u32, SegmentId), u64> = HashMap::new();

        for example in training.examples() {
            let mut pairs: BTreeSet<(u32, SegmentId)> = BTreeSet::new();
            for (prop, value) in &example.facts {
                if !self.config.properties.includes(prop) {
                    continue;
                }
                let p_idx = *property_index.entry(prop.clone()).or_insert_with(|| {
                    properties.push(prop.clone());
                    (properties.len() - 1) as u32
                });
                for segment in split(value) {
                    let seg_id = dictionary.observe(&segment);
                    pairs.insert((p_idx, seg_id));
                }
            }
            for pair in &pairs {
                *pair_counts.entry(*pair).or_insert(0) += 1;
            }
            example_pairs.push(pairs.into_iter().collect());
        }

        let segment_occurrences: u64 = pair_counts.values().sum();
        let frequent_pairs: HashMap<(u32, SegmentId), u64> = pair_counts
            .iter()
            .filter(|(_, count)| **count > min_count)
            .map(|(pair, count)| (*pair, *count))
            .collect();
        let selected_segment_occurrences: u64 = frequent_pairs.values().sum();

        // ------------------------------------------------------------------
        // Step 3: frequent classes.
        // ------------------------------------------------------------------
        let class_counts: BTreeMap<ClassId, u64> = training.class_frequencies();
        let frequent_classes: BTreeMap<ClassId, u64> = class_counts
            .iter()
            .filter(|(_, count)| **count > min_count && **count >= self.config.min_class_instances)
            .map(|(c, count)| (*c, *count))
            .collect();

        // ------------------------------------------------------------------
        // Step 4: frequency of the conjunctions, restricted to frequent
        // pairs × frequent classes, computed in one pass over the examples.
        // ------------------------------------------------------------------
        let mut joint_counts: HashMap<((u32, SegmentId), ClassId), u64> = HashMap::new();
        for (example, pairs) in training.examples().iter().zip(&example_pairs) {
            if example.classes.is_empty() {
                continue;
            }
            for pair in pairs {
                if !frequent_pairs.contains_key(pair) {
                    continue;
                }
                for class in &example.classes {
                    if frequent_classes.contains_key(class) {
                        *joint_counts.entry((*pair, *class)).or_insert(0) += 1;
                    }
                }
            }
        }

        // ------------------------------------------------------------------
        // Step 5: build the rules and their measures.
        // ------------------------------------------------------------------
        let mut rules: Vec<ClassificationRule> = Vec::new();
        for (((p_idx, seg_id), class), both) in &joint_counts {
            if *both <= min_count {
                continue;
            }
            let premise = frequent_pairs[&(*p_idx, *seg_id)];
            let conclusion = frequent_classes[class];
            let quality = Contingency::new(n, premise, conclusion, *both).quality();
            if quality.lift <= self.config.min_lift && self.config.min_lift > 0.0 {
                continue;
            }
            let (class_iri, class_label) = match ontology.class_info(*class) {
                Some(info) => (info.iri.clone(), info.label.clone()),
                None => (class.to_string(), class.to_string()),
            };
            rules.push(ClassificationRule {
                property: properties[*p_idx as usize].clone(),
                segment: dictionary
                    .text(*seg_id)
                    .expect("segment id interned above")
                    .to_string(),
                class: *class,
                class_iri,
                class_label,
                quality,
            });
        }
        rules.sort_by(|a, b| a.ranking_cmp(b));

        let classes_with_rules = rules.iter().map(|r| r.class).collect::<BTreeSet<_>>().len();
        let stats = LearnStats {
            examples: training.len(),
            properties: properties.len(),
            distinct_segments: dictionary.distinct_count(),
            segment_occurrences,
            selected_segment_occurrences,
            frequent_pairs: frequent_pairs.len(),
            frequent_classes: frequent_classes.len(),
            observed_classes: class_counts.len(),
            rules: rules.len(),
            classes_with_rules,
        };
        Ok(LearnOutcome { rules, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PropertySelection;
    use crate::training::TrainingExample;
    use classilink_ontology::OntologyBuilder;
    use classilink_rdf::Term;

    const PN: &str = "http://provider.e.org/v#partNumber";
    const MFR: &str = "http://provider.e.org/v#manufacturer";

    fn ontology() -> (Ontology, ClassId, ClassId) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let resistor = b.class("FixedFilmResistor", Some(root));
        let capacitor = b.class("TantalumCapacitor", Some(root));
        (b.build(), resistor, capacitor)
    }

    fn example(n: usize, pn: &str, classes: Vec<ClassId>) -> TrainingExample {
        TrainingExample::new(
            Term::iri(format!("http://provider.e.org/item/{n}")),
            Term::iri(format!("http://local.e.org/prod/{n}")),
            vec![
                (PN.to_string(), pn.to_string()),
                (MFR.to_string(), "ACME Components".to_string()),
            ],
            classes,
        )
    }

    /// 10 resistors whose part numbers contain "crcw"/"ohm", 10 capacitors
    /// whose part numbers contain "t83", plus a shared ambiguous segment
    /// "63v" appearing in both classes.
    fn training(resistor: ClassId, capacitor: ClassId) -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..10 {
            ts.push(example(
                i,
                &format!("CRCW08{i:02}-10K-ohm-63V"),
                vec![resistor],
            ));
        }
        for i in 10..20 {
            ts.push(example(i, &format!("T83-A{i}-uF-63V"), vec![capacitor]));
        }
        ts
    }

    fn config() -> LearnerConfig {
        LearnerConfig::default()
            .with_support_threshold(0.05)
            .with_properties(PropertySelection::single(PN))
    }

    #[test]
    fn learns_discriminative_rules_with_perfect_confidence() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();

        let ohm_rule = outcome
            .rules
            .iter()
            .find(|r| r.segment == "ohm")
            .expect("an 'ohm' rule must be learnt");
        assert_eq!(ohm_rule.class, resistor);
        assert_eq!(ohm_rule.confidence(), 1.0);
        assert_eq!(ohm_rule.lift(), 2.0);
        assert_eq!(ohm_rule.quality.counts.premise, 10);
        assert_eq!(ohm_rule.quality.counts.both, 10);
        assert!((ohm_rule.support() - 0.5).abs() < 1e-12);

        let t83_rule = outcome
            .rules
            .iter()
            .find(|r| r.segment == "t83")
            .expect("a 't83' rule must be learnt");
        assert_eq!(t83_rule.class, capacitor);
        assert_eq!(t83_rule.confidence(), 1.0);
    }

    #[test]
    fn ambiguous_segments_get_low_confidence() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        let ambiguous: Vec<_> = outcome
            .rules
            .iter()
            .filter(|r| r.segment == "63v")
            .collect();
        assert_eq!(
            ambiguous.len(),
            2,
            "one rule per class for the shared segment"
        );
        for r in ambiguous {
            assert!((r.confidence() - 0.5).abs() < 1e-12);
            assert!((r.lift() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rules_are_ranked_by_confidence_then_lift() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        let confidences: Vec<f64> = outcome.rules.iter().map(|r| r.confidence()).collect();
        let mut sorted = confidences.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(confidences, sorted);
    }

    #[test]
    fn property_selection_excludes_manufacturer() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        assert!(outcome.rules.iter().all(|r| r.property == PN));
        assert_eq!(outcome.stats.properties, 1);

        let all_props = LearnerConfig::default().with_support_threshold(0.05);
        let outcome_all = RuleLearner::new(all_props).learn(&ts, &onto).unwrap();
        assert!(outcome_all.rules.iter().any(|r| r.property == MFR));
        assert_eq!(outcome_all.stats.properties, 2);
        // The manufacturer segment "acme" appears in every example, so its
        // rules have lift 1 — still produced, but not positively correlated.
        let acme = outcome_all
            .rules
            .iter()
            .find(|r| r.property == MFR && r.segment == "acme")
            .unwrap();
        assert!((acme.lift() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_lift_filters_uninformative_rules() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let cfg = LearnerConfig::default()
            .with_support_threshold(0.05)
            .with_min_lift(1.0);
        let outcome = RuleLearner::new(cfg).learn(&ts, &onto).unwrap();
        assert!(outcome.rules.iter().all(|r| r.lift() > 1.0));
        assert!(outcome.rules.iter().all(|r| r.segment != "63v"));
    }

    #[test]
    fn support_threshold_prunes_rare_segments() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        // th = 0.4 → a pair must appear in > 8 of the 20 examples.
        let cfg = config().with_support_threshold(0.4);
        let outcome = RuleLearner::new(cfg).learn(&ts, &onto).unwrap();
        // Only "ohm"/"crcw08xx"? No: "ohm" (10), "10k" (10), "t83" (10),
        // "uf" (10), "63v" (20) survive as pairs; segments unique to one
        // example (e.g. "a15") are pruned.
        assert!(outcome.rules.iter().all(|r| r.quality.counts.premise > 8));
        assert!(outcome
            .rules
            .iter()
            .all(|r| !r.segment.starts_with("crcw08")));
    }

    #[test]
    fn higher_threshold_yields_fewer_or_equal_rules() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let low = RuleLearner::new(config().with_support_threshold(0.01))
            .learn(&ts, &onto)
            .unwrap();
        let high = RuleLearner::new(config().with_support_threshold(0.3))
            .learn(&ts, &onto)
            .unwrap();
        assert!(high.rules.len() <= low.rules.len());
        assert!(high.stats.frequent_pairs <= low.stats.frequent_pairs);
    }

    #[test]
    fn stats_reflect_the_run() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        let stats = &outcome.stats;
        assert_eq!(stats.examples, 20);
        assert_eq!(stats.properties, 1);
        assert!(stats.distinct_segments > 0);
        assert!(stats.segment_occurrences >= stats.selected_segment_occurrences);
        assert!(stats.frequent_classes <= stats.observed_classes);
        assert_eq!(stats.rules, outcome.rules.len());
        assert_eq!(stats.observed_classes, 2);
        assert_eq!(stats.frequent_classes, 2);
        assert_eq!(stats.classes_with_rules, 2);
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let (onto, ..) = ontology();
        let err = RuleLearner::paper().learn(&TrainingSet::new(), &onto);
        assert!(matches!(
            err,
            Err(crate::error::CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn invalid_threshold_is_an_error() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let cfg = LearnerConfig::default().with_support_threshold(0.0);
        assert!(RuleLearner::new(cfg).learn(&ts, &onto).is_err());
    }

    #[test]
    fn min_class_instances_floor() {
        let (onto, resistor, capacitor) = ontology();
        let mut ts = training(resistor, capacitor);
        // Add 2 examples of a rare class (the root class, id 0).
        for i in 20..22 {
            ts.push(example(i, &format!("ZZZ-{i}"), vec![ClassId(0)]));
        }
        let cfg = config()
            .with_support_threshold(0.01)
            .with_min_class_instances(5);
        let outcome = RuleLearner::new(cfg).learn(&ts, &onto).unwrap();
        assert!(outcome.rules.iter().all(|r| r.class != ClassId(0)));
    }

    #[test]
    fn outcome_helpers() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let outcome = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        let perfect = outcome.rules_with_confidence(1.0);
        assert!(!perfect.is_empty());
        assert!(perfect.iter().all(|r| r.confidence() >= 1.0));
        assert!(outcome.average_lift() > 1.0);
        assert_eq!(LearnOutcome::default().average_lift(), 0.0);
    }

    #[test]
    fn normalization_can_be_disabled() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let mut cfg = config();
        cfg.normalize = false;
        let outcome = RuleLearner::new(cfg).learn(&ts, &onto).unwrap();
        // Without normalization the original casing is preserved in segments.
        assert!(outcome.rules.iter().any(|r| r.segment == "T83"));
        assert!(outcome.rules.iter().all(|r| r.segment != "t83"));
    }

    #[test]
    fn deterministic_output() {
        let (onto, resistor, capacitor) = ontology();
        let ts = training(resistor, capacitor);
        let a = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        let b = RuleLearner::new(config()).learn(&ts, &onto).unwrap();
        assert_eq!(a, b);
    }
}
