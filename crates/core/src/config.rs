//! Configuration of the rule learner.

use classilink_segment::SegmenterKind;
use serde::{Deserialize, Serialize};

/// Which properties of the external source the learner considers.
///
/// The paper: "Let P be a set of properties that are selected by an expert"
/// (Algorithm 1 also accepts "all if no selection"). In the evaluation, "the
/// expert has chosen the property part-number to predict the class".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PropertySelection {
    /// Use every data property observed in the training data.
    #[default]
    All,
    /// Use only the listed property IRIs.
    Only(Vec<String>),
    /// Use everything except the listed property IRIs (useful to drop
    /// properties known to be non-discriminative, such as the manufacturer
    /// in the paper's data).
    Except(Vec<String>),
}

impl PropertySelection {
    /// `true` when the property IRI should be considered by the learner.
    pub fn includes(&self, property_iri: &str) -> bool {
        match self {
            PropertySelection::All => true,
            PropertySelection::Only(list) => list.iter().any(|p| p == property_iri),
            PropertySelection::Except(list) => !list.iter().any(|p| p == property_iri),
        }
    }

    /// Select exactly one property.
    pub fn single(property_iri: impl Into<String>) -> Self {
        PropertySelection::Only(vec![property_iri.into()])
    }
}

/// Configuration of the learning algorithm (Algorithm 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// The support threshold `th`: premise, class and conjunction frequencies
    /// must strictly exceed `th · |TS|` to be retained. The paper's
    /// evaluation uses `th = 0.002`.
    pub support_threshold: f64,
    /// Which external-source properties to consider.
    pub properties: PropertySelection,
    /// How property values are split into segments.
    pub segmenter: SegmenterKind,
    /// Normalize values (lowercase, collapse whitespace, strip accents)
    /// before segmentation.
    pub normalize: bool,
    /// Restrict concluded classes to the most specific asserted classes of
    /// each linked local item (the paper computes class frequencies "only for
    /// the most specific classes of the ontology").
    pub most_specific_classes: bool,
    /// Additional absolute floor on class extent size in the training data
    /// (the paper mentions retained classes have "more than 20 instances").
    /// `0` disables the floor (the relative threshold still applies).
    pub min_class_instances: u64,
    /// Drop rules whose lift is not above this value (1.0 keeps only
    /// positively correlated rules; 0.0 keeps everything).
    pub min_lift: f64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            support_threshold: 0.002,
            properties: PropertySelection::All,
            segmenter: SegmenterKind::Separator,
            normalize: true,
            most_specific_classes: true,
            min_class_instances: 0,
            min_lift: 0.0,
        }
    }
}

impl LearnerConfig {
    /// The configuration used in the paper's evaluation: `th = 0.002`,
    /// separator segmentation, most-specific classes.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builder-style setter for the support threshold.
    pub fn with_support_threshold(mut self, th: f64) -> Self {
        self.support_threshold = th;
        self
    }

    /// Builder-style setter for the property selection.
    pub fn with_properties(mut self, properties: PropertySelection) -> Self {
        self.properties = properties;
        self
    }

    /// Builder-style setter for the segmenter.
    pub fn with_segmenter(mut self, segmenter: SegmenterKind) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Builder-style setter for the minimum class extent.
    pub fn with_min_class_instances(mut self, min: u64) -> Self {
        self.min_class_instances = min;
        self
    }

    /// Builder-style setter for the minimum lift.
    pub fn with_min_lift(mut self, min_lift: f64) -> Self {
        self.min_lift = min_lift;
        self
    }

    /// Validate threshold ranges.
    pub fn validate(&self) -> crate::error::Result<()> {
        if !(self.support_threshold > 0.0 && self.support_threshold <= 1.0) {
            return Err(crate::error::CoreError::InvalidThreshold(
                self.support_threshold,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = LearnerConfig::default();
        assert_eq!(c.support_threshold, 0.002);
        assert_eq!(c.properties, PropertySelection::All);
        assert_eq!(c.segmenter, SegmenterKind::Separator);
        assert!(c.most_specific_classes);
        assert!(c.normalize);
        assert_eq!(LearnerConfig::paper(), c);
    }

    #[test]
    fn property_selection_includes() {
        let all = PropertySelection::All;
        assert!(all.includes("http://e.org/v#anything"));
        let only = PropertySelection::single("http://e.org/v#partNumber");
        assert!(only.includes("http://e.org/v#partNumber"));
        assert!(!only.includes("http://e.org/v#manufacturer"));
        let except = PropertySelection::Except(vec!["http://e.org/v#manufacturer".to_string()]);
        assert!(except.includes("http://e.org/v#partNumber"));
        assert!(!except.includes("http://e.org/v#manufacturer"));
    }

    #[test]
    fn builder_setters() {
        let c = LearnerConfig::default()
            .with_support_threshold(0.01)
            .with_properties(PropertySelection::single("http://e.org/v#pn"))
            .with_segmenter(SegmenterKind::CharNGram(3))
            .with_min_class_instances(20)
            .with_min_lift(1.0);
        assert_eq!(c.support_threshold, 0.01);
        assert_eq!(c.min_class_instances, 20);
        assert_eq!(c.min_lift, 1.0);
        assert_eq!(c.segmenter, SegmenterKind::CharNGram(3));
    }

    #[test]
    fn validation_rejects_bad_thresholds() {
        assert!(LearnerConfig::default().validate().is_ok());
        assert!(LearnerConfig::default()
            .with_support_threshold(0.0)
            .validate()
            .is_err());
        assert!(LearnerConfig::default()
            .with_support_threshold(-0.1)
            .validate()
            .is_err());
        assert!(LearnerConfig::default()
            .with_support_threshold(1.5)
            .validate()
            .is_err());
        assert!(LearnerConfig::default()
            .with_support_threshold(1.0)
            .validate()
            .is_ok());
    }
}
