//! Value-based classification rules.
//!
//! A rule has the form of the paper's section 4.1:
//!
//! ```text
//! p(X, Y) ∧ subsegment(Y, a) ⇒ c(X)
//! ```
//!
//! "where `subsegment(Y, a)` expresses that the segment `a` occurs at least
//! one time in the value `Y`". Each rule carries the quality measures
//! computed over the training set.

use crate::measures::RuleQuality;
use classilink_ontology::ClassId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A value-based classification rule with its quality measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationRule {
    /// The IRI of the data-type property `p` of the premise.
    pub property: String,
    /// The segment `a` that must occur in the property value.
    pub segment: String,
    /// The id of the concluded class `c` in the local ontology.
    pub class: ClassId,
    /// The IRI of the concluded class (kept alongside the id so rules remain
    /// readable when serialised on their own).
    pub class_iri: String,
    /// A human-readable label of the concluded class.
    pub class_label: String,
    /// Quality measures of the rule over the training set.
    pub quality: RuleQuality,
}

impl ClassificationRule {
    /// The rule's support over the training set.
    pub fn support(&self) -> f64 {
        self.quality.support
    }

    /// The rule's confidence over the training set.
    pub fn confidence(&self) -> f64 {
        self.quality.confidence
    }

    /// The rule's lift over the training set.
    pub fn lift(&self) -> f64 {
        self.quality.lift
    }

    /// `true` when the value `v` of property `p` triggers this rule, i.e. the
    /// rule's property matches and the rule's segment is among `segments`.
    pub fn matches(&self, property: &str, segments: &[String]) -> bool {
        self.property == property && segments.iter().any(|s| s == &self.segment)
    }

    /// The paper's logical notation for the rule.
    pub fn logical_form(&self) -> String {
        format!(
            "{}(X,Y) ∧ subsegment(Y,\"{}\") ⇒ {}(X)",
            local_name(&self.property),
            self.segment,
            local_name(&self.class_iri),
        )
    }

    /// Ordering used when ranking rules: confidence first, then lift (the
    /// paper: "the confidence degree is used first. In case of the same
    /// confidence degree, the lift measure is used"), then support, then a
    /// deterministic textual tie-break.
    pub fn ranking_cmp(&self, other: &Self) -> Ordering {
        other
            .confidence()
            .partial_cmp(&self.confidence())
            .unwrap_or(Ordering::Equal)
            .then(
                other
                    .lift()
                    .partial_cmp(&self.lift())
                    .unwrap_or(Ordering::Equal),
            )
            .then(
                other
                    .support()
                    .partial_cmp(&self.support())
                    .unwrap_or(Ordering::Equal),
            )
            .then_with(|| self.property.cmp(&other.property))
            .then_with(|| self.segment.cmp(&other.segment))
            .then_with(|| self.class_iri.cmp(&other.class_iri))
    }
}

impl fmt::Display for ClassificationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}  [sup={:.4}, conf={:.3}, lift={:.1}]",
            self.logical_form(),
            self.support(),
            self.confidence(),
            self.lift(),
        )
    }
}

fn local_name(iri: &str) -> &str {
    iri.rsplit_once('#')
        .map(|(_, l)| l)
        .or_else(|| iri.rsplit_once('/').map(|(_, l)| l))
        .unwrap_or(iri)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::Contingency;

    fn rule(segment: &str, conf_both: u64, premise: u64) -> ClassificationRule {
        ClassificationRule {
            property: "http://e.org/v#partNumber".to_string(),
            segment: segment.to_string(),
            class: ClassId(3),
            class_iri: "http://e.org/c#FixedFilmResistor".to_string(),
            class_label: "Fixed film resistor".to_string(),
            quality: Contingency::new(1000, premise, 100, conf_both).quality(),
        }
    }

    #[test]
    fn logical_form_matches_paper_notation() {
        let r = rule("ohm", 45, 50);
        assert_eq!(
            r.logical_form(),
            "partNumber(X,Y) ∧ subsegment(Y,\"ohm\") ⇒ FixedFilmResistor(X)"
        );
        let shown = r.to_string();
        assert!(shown.contains("conf=0.900"));
        assert!(shown.contains("lift=9.0"));
    }

    #[test]
    fn accessors_mirror_quality() {
        let r = rule("63V", 40, 50);
        assert_eq!(r.support(), 0.04);
        assert_eq!(r.confidence(), 0.8);
        assert_eq!(r.lift(), 8.0);
    }

    #[test]
    fn matches_requires_property_and_segment() {
        let r = rule("crcw0805", 45, 50);
        let segs = vec!["crcw0805".to_string(), "10k".to_string()];
        assert!(r.matches("http://e.org/v#partNumber", &segs));
        assert!(!r.matches("http://e.org/v#manufacturer", &segs));
        assert!(!r.matches("http://e.org/v#partNumber", &["t83".to_string()]));
        assert!(!r.matches("http://e.org/v#partNumber", &[]));
    }

    #[test]
    fn ranking_prefers_confidence_then_lift() {
        let high_conf = rule("a", 50, 50); // conf 1.0, lift 10
        let low_conf_high_lift = rule("b", 45, 50); // conf 0.9, lift 9
        assert_eq!(high_conf.ranking_cmp(&low_conf_high_lift), Ordering::Less);
        assert_eq!(
            low_conf_high_lift.ranking_cmp(&high_conf),
            Ordering::Greater
        );

        // Same confidence but different premise size → different support,
        // lift identical → support breaks the tie.
        let mut small = rule("c", 9, 10); // conf 0.9, lift 9, support 0.009
        small.quality = Contingency::new(1000, 10, 100, 9).quality();
        let big = rule("d", 45, 50); // conf 0.9, lift 9, support 0.045
        assert_eq!(big.ranking_cmp(&small), Ordering::Less);
    }

    #[test]
    fn ranking_is_deterministic_on_full_ties() {
        let a = rule("aaa", 45, 50);
        let b = rule("bbb", 45, 50);
        assert_eq!(a.ranking_cmp(&b), Ordering::Less);
        assert_eq!(b.ranking_cmp(&a), Ordering::Greater);
        assert_eq!(a.ranking_cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn local_name_handles_slash_iris() {
        let mut r = rule("x", 1, 1);
        r.class_iri = "http://e.org/classes/Capacitor".to_string();
        r.property = "urn:partnumber".to_string();
        assert!(r.logical_form().contains("Capacitor(X)"));
        assert!(r.logical_form().contains("urn:partnumber(X,Y)"));
    }
}
