//! Quality measures of classification rules.
//!
//! The paper uses three "well-known quality measures": **support**,
//! **confidence** and **lift** (section 4.2). All three derive from a small
//! contingency table over the training set `TS`:
//!
//! | count | meaning |
//! |---|---|
//! | `n` | `|TS|` — number of training examples (linked pairs) |
//! | `premise` | `|{X : p(X,Y) ∧ subsegment(Y,a)}|` — examples whose value of `p` contains the segment `a` |
//! | `conclusion` | `|{X : c(X)}|` — examples whose local item is an instance of `c` |
//! | `both` | `|{X : p(X,Y) ∧ subsegment(Y,a) ∧ c(X)}|` |
//!
//! With those counts:
//!
//! * `support = both / n` (the paper's definition),
//! * `confidence = both / premise`. (The formula printed in the paper,
//!   `|{X : c(X)}| / |{X : p(X,Y) ∧ subsegment(Y,a)}|`, omits the
//!   conjunction in the numerator; the standard definition it names —
//!   "the proportion of data that are instances of the class … **among** the
//!   data that satisfies the premise" — is the one implemented here.)
//! * `lift = confidence / (conclusion / n)`.
//!
//! The module also provides the additional measures the paper cites from the
//! quality-measures literature (coverage, specificity, leverage, conviction)
//! which the pruning and ablation experiments use.

use serde::{Deserialize, Serialize};

/// Raw contingency counts over the training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Contingency {
    /// `|TS|`: total number of training examples.
    pub n: u64,
    /// Number of examples satisfying the premise `p(X,Y) ∧ subsegment(Y,a)`.
    pub premise: u64,
    /// Number of examples satisfying the conclusion `c(X)`.
    pub conclusion: u64,
    /// Number of examples satisfying premise and conclusion together.
    pub both: u64,
}

impl Contingency {
    /// Create a contingency table, checking basic consistency in debug builds.
    pub fn new(n: u64, premise: u64, conclusion: u64, both: u64) -> Self {
        debug_assert!(premise <= n, "premise count exceeds |TS|");
        debug_assert!(conclusion <= n, "conclusion count exceeds |TS|");
        debug_assert!(both <= premise, "joint count exceeds premise count");
        debug_assert!(both <= conclusion, "joint count exceeds conclusion count");
        Contingency {
            n,
            premise,
            conclusion,
            both,
        }
    }

    /// Compute all derived quality measures.
    pub fn quality(&self) -> RuleQuality {
        RuleQuality::from_contingency(*self)
    }
}

/// The derived quality measures of one classification rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuleQuality {
    /// The raw counts the measures were derived from.
    pub counts: Contingency,
    /// `both / n` — the rule's representativeness in `TS`.
    pub support: f64,
    /// `both / premise` — the rule's precision on `TS`.
    pub confidence: f64,
    /// `confidence / P(c)` — how much more often premise and conclusion
    /// co-occur than under independence. Values above 1 mean the segment is
    /// informative for the class; the paper notes that higher lift also means
    /// a smaller linking subspace.
    pub lift: f64,
    /// `premise / n` — how much of `TS` the premise covers.
    pub coverage: f64,
    /// `P(¬premise | ¬conclusion)` — true-negative rate.
    pub specificity: f64,
    /// `P(premise ∧ conclusion) − P(premise)·P(conclusion)`.
    pub leverage: f64,
    /// `(1 − P(c)) / (1 − confidence)`; `f64::INFINITY` when confidence = 1.
    pub conviction: f64,
}

impl RuleQuality {
    /// Derive every measure from a contingency table. Degenerate cases
    /// (empty training set, empty premise) yield zeros rather than NaNs.
    pub fn from_contingency(c: Contingency) -> Self {
        let n = c.n as f64;
        let support = if c.n == 0 { 0.0 } else { c.both as f64 / n };
        let confidence = if c.premise == 0 {
            0.0
        } else {
            c.both as f64 / c.premise as f64
        };
        let p_class = if c.n == 0 {
            0.0
        } else {
            c.conclusion as f64 / n
        };
        let lift = if p_class == 0.0 {
            0.0
        } else {
            confidence / p_class
        };
        let coverage = if c.n == 0 { 0.0 } else { c.premise as f64 / n };
        let not_conclusion = c.n.saturating_sub(c.conclusion);
        let premise_and_not_conclusion = c.premise.saturating_sub(c.both);
        let specificity = if not_conclusion == 0 {
            0.0
        } else {
            (not_conclusion - premise_and_not_conclusion.min(not_conclusion)) as f64
                / not_conclusion as f64
        };
        let leverage = if c.n == 0 {
            0.0
        } else {
            support - coverage * p_class
        };
        let conviction = if confidence >= 1.0 {
            f64::INFINITY
        } else {
            (1.0 - p_class) / (1.0 - confidence)
        };
        RuleQuality {
            counts: c,
            support,
            confidence,
            lift,
            coverage,
            specificity,
            leverage,
            conviction,
        }
    }

    /// `true` when the rule's premise and conclusion co-occur more often than
    /// expected under independence (lift > 1).
    pub fn is_positively_correlated(&self) -> bool {
        self.lift > 1.0
    }
}

/// Compute the (upper bound on the) factor by which the linking space shrinks
/// for one external item classified by a rule with this lift, following the
/// paper's observation:
///
/// > "using a rule that has a confidence of 1, even for a big class that
/// > represents 20% of the catalog, the linkage space can be divided by 5 for
/// > one instance."
///
/// When a rule has confidence `conf` and the concluded class holds a fraction
/// `P(c)` of the catalog, an item is compared against `P(c) · |SL|` instances
/// instead of `|SL|`: a reduction factor of `1 / P(c) = lift / confidence`.
pub fn reduction_factor(quality: &RuleQuality) -> f64 {
    if quality.confidence == 0.0 {
        1.0
    } else {
        (quality.lift / quality.confidence).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_style_example() {
        // 1000 linked pairs; 50 items contain "ohm"; 100 are fixed-film
        // resistors; 45 of the "ohm" items are fixed-film resistors.
        let q = Contingency::new(1000, 50, 100, 45).quality();
        assert!((q.support - 0.045).abs() < 1e-12);
        assert!((q.confidence - 0.9).abs() < 1e-12);
        assert!((q.lift - 9.0).abs() < 1e-12);
        assert!((q.coverage - 0.05).abs() < 1e-12);
        assert!(q.is_positively_correlated());
        // The class is 10% of the data ⇒ the subspace is 10× smaller.
        assert!((reduction_factor(&q) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_confidence_gives_infinite_conviction() {
        let q = Contingency::new(100, 10, 20, 10).quality();
        assert_eq!(q.confidence, 1.0);
        assert!(q.conviction.is_infinite());
        assert_eq!(q.lift, 5.0);
    }

    #[test]
    fn independence_has_lift_one_and_zero_leverage() {
        // premise covers 1/2, class covers 1/2, joint exactly 1/4.
        let q = Contingency::new(400, 200, 200, 100).quality();
        assert!((q.lift - 1.0).abs() < 1e-12);
        assert!(q.leverage.abs() < 1e-12);
        assert!(!q.is_positively_correlated());
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = Contingency::new(0, 0, 0, 0).quality();
        assert_eq!(empty.support, 0.0);
        assert_eq!(empty.confidence, 0.0);
        assert_eq!(empty.lift, 0.0);
        assert_eq!(empty.coverage, 0.0);
        assert_eq!(empty.leverage, 0.0);
        assert!(!empty.support.is_nan());

        let no_premise = Contingency::new(10, 0, 5, 0).quality();
        assert_eq!(no_premise.confidence, 0.0);
        assert_eq!(no_premise.lift, 0.0);

        let no_class = Contingency::new(10, 5, 0, 0).quality();
        assert_eq!(no_class.lift, 0.0);
        assert_eq!(reduction_factor(&no_class), 1.0);
    }

    #[test]
    fn specificity_counts_true_negatives() {
        // n=10, premise=4, class=5, both=3 → ¬c = 5, premise∧¬c = 1 → spec 4/5.
        let q = Contingency::new(10, 4, 5, 3).quality();
        assert!((q.specificity - 0.8).abs() < 1e-12);
        // All non-class examples triggered by premise → specificity 0.
        let q2 = Contingency::new(10, 5, 5, 0).quality();
        assert_eq!(q2.specificity, 0.0);
    }

    #[test]
    fn reduction_factor_never_below_one() {
        let q = Contingency::new(10, 10, 10, 10).quality();
        // class covers everything → no reduction.
        assert_eq!(reduction_factor(&q), 1.0);
    }

    proptest! {
        /// For arbitrary consistent counts: all probabilities are within
        /// [0, 1], support ≤ confidence, support ≤ coverage, and the identity
        /// lift · P(c) = confidence holds.
        #[test]
        fn prop_measure_identities(n in 1u64..500, premise_frac in 0.0f64..1.0,
                                   conclusion_frac in 0.0f64..1.0, both_frac in 0.0f64..1.0) {
            let premise = (premise_frac * n as f64) as u64;
            let conclusion = (conclusion_frac * n as f64) as u64;
            let both = (both_frac * premise.min(conclusion) as f64) as u64;
            let q = Contingency::new(n, premise, conclusion, both).quality();
            prop_assert!((0.0..=1.0).contains(&q.support));
            prop_assert!((0.0..=1.0).contains(&q.confidence));
            prop_assert!((0.0..=1.0).contains(&q.coverage));
            prop_assert!((0.0..=1.0).contains(&q.specificity));
            prop_assert!(q.lift >= 0.0);
            prop_assert!(q.support <= q.confidence + 1e-12);
            prop_assert!(q.support <= q.coverage + 1e-12);
            if conclusion > 0 {
                let p_class = conclusion as f64 / n as f64;
                prop_assert!((q.lift * p_class - q.confidence).abs() < 1e-9);
            }
            // coverage · confidence = support
            prop_assert!((q.coverage * q.confidence - q.support).abs() < 1e-9);
        }
    }
}
