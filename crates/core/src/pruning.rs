//! Rule pruning.
//!
//! The learning algorithm can produce many rules per class and redundant
//! rules across the class hierarchy. Pruning keeps the rule set "concise and
//! easy to understand by an expert" (the property the paper highlights in
//! its conclusion) without changing which items can be classified.

use crate::rule::ClassificationRule;
use classilink_ontology::{ClassId, Ontology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// When two rules share the same premise `(property, segment)` and conclude
/// on classes related by subsumption, which one should survive?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HierarchyPreference {
    /// Keep the rule concluding the more specific class (smaller linking
    /// subspace — the choice that maximises linking-space reduction).
    #[default]
    MoreSpecific,
    /// Keep the rule concluding the more general class (higher recall).
    MoreGeneral,
    /// Keep the rule with the higher confidence, whatever its class.
    HigherConfidence,
}

/// Drop rules below the given thresholds. Any of the thresholds can be set to
/// `0.0` to disable it.
pub fn filter_by_quality(
    rules: &[ClassificationRule],
    min_support: f64,
    min_confidence: f64,
    min_lift: f64,
) -> Vec<ClassificationRule> {
    rules
        .iter()
        .filter(|r| {
            r.support() >= min_support && r.confidence() >= min_confidence && r.lift() >= min_lift
        })
        .cloned()
        .collect()
}

/// Keep at most `k` rules per concluded class (the best-ranked ones).
pub fn top_k_per_class(rules: &[ClassificationRule], k: usize) -> Vec<ClassificationRule> {
    let mut by_class: HashMap<ClassId, Vec<&ClassificationRule>> = HashMap::new();
    for r in rules {
        by_class.entry(r.class).or_default().push(r);
    }
    let mut out = Vec::new();
    for (_, mut class_rules) in by_class {
        class_rules.sort_by(|a, b| a.ranking_cmp(b));
        out.extend(class_rules.into_iter().take(k).cloned());
    }
    out.sort_by(|a, b| a.ranking_cmp(b));
    out
}

/// Remove hierarchy-redundant rules: when two rules share the same
/// `(property, segment)` premise and their concluded classes are related by
/// subsumption, keep only one according to `preference`.
pub fn prune_hierarchy_redundant(
    rules: &[ClassificationRule],
    ontology: &Ontology,
    preference: HierarchyPreference,
) -> Vec<ClassificationRule> {
    // Group rule indexes by premise.
    let mut by_premise: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (i, r) in rules.iter().enumerate() {
        by_premise
            .entry((r.property.as_str(), r.segment.as_str()))
            .or_default()
            .push(i);
    }
    let mut keep = vec![true; rules.len()];
    for indexes in by_premise.values() {
        for (pos, &i) in indexes.iter().enumerate() {
            for &j in &indexes[pos + 1..] {
                if !keep[i] || !keep[j] {
                    continue;
                }
                let (ci, cj) = (rules[i].class, rules[j].class);
                if ci == cj {
                    // Identical conclusions: keep the better ranked.
                    if rules[i].ranking_cmp(&rules[j]).is_le() {
                        keep[j] = false;
                    } else {
                        keep[i] = false;
                    }
                    continue;
                }
                let i_sub_j = ontology.is_subclass_of(ci, cj);
                let j_sub_i = ontology.is_subclass_of(cj, ci);
                if !i_sub_j && !j_sub_i {
                    continue;
                }
                let drop_j = match preference {
                    HierarchyPreference::MoreSpecific => i_sub_j,
                    HierarchyPreference::MoreGeneral => j_sub_i,
                    HierarchyPreference::HigherConfidence => {
                        rules[i].confidence() >= rules[j].confidence()
                    }
                };
                if drop_j {
                    keep[j] = false;
                } else {
                    keep[i] = false;
                }
            }
        }
    }
    let mut out: Vec<ClassificationRule> = rules
        .iter()
        .zip(keep)
        .filter(|&(_r, k)| k)
        .map(|(r, _k)| r.clone())
        .collect();
    out.sort_by(|a, b| a.ranking_cmp(b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::Contingency;
    use classilink_ontology::OntologyBuilder;

    fn ontology() -> (Ontology, ClassId, ClassId, ClassId) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let resistor = b.class("Resistor", Some(component));
        let fixed = b.class("FixedFilmResistor", Some(resistor));
        (b.build(), component, resistor, fixed)
    }

    fn rule(segment: &str, class: ClassId, premise: u64, both: u64) -> ClassificationRule {
        ClassificationRule {
            property: "http://e.org/v#pn".to_string(),
            segment: segment.to_string(),
            class,
            class_iri: format!("http://e.org/c#{}", class.0),
            class_label: format!("{}", class.0),
            quality: Contingency::new(1000, premise, 200, both).quality(),
        }
    }

    #[test]
    fn quality_filter() {
        let (_, _, resistor, fixed) = ontology();
        let rules = vec![
            rule("ohm", fixed, 100, 100),   // conf 1.0, sup 0.1, lift 5
            rule("63v", resistor, 100, 30), // conf 0.3, sup 0.03, lift 1.5
        ];
        assert_eq!(filter_by_quality(&rules, 0.0, 0.5, 0.0).len(), 1);
        assert_eq!(filter_by_quality(&rules, 0.05, 0.0, 0.0).len(), 1);
        assert_eq!(filter_by_quality(&rules, 0.0, 0.0, 2.0).len(), 1);
        assert_eq!(filter_by_quality(&rules, 0.0, 0.0, 0.0).len(), 2);
        assert!(filter_by_quality(&rules, 1.0, 1.0, 100.0).is_empty());
    }

    #[test]
    fn top_k_keeps_best_per_class() {
        let (_, _, resistor, fixed) = ontology();
        let rules = vec![
            rule("a", fixed, 100, 100),
            rule("b", fixed, 100, 80),
            rule("c", fixed, 100, 60),
            rule("d", resistor, 100, 90),
        ];
        let pruned = top_k_per_class(&rules, 2);
        assert_eq!(pruned.len(), 3);
        let fixed_rules: Vec<_> = pruned.iter().filter(|r| r.class == fixed).collect();
        assert_eq!(fixed_rules.len(), 2);
        assert!(fixed_rules.iter().any(|r| r.segment == "a"));
        assert!(fixed_rules.iter().any(|r| r.segment == "b"));
        assert_eq!(top_k_per_class(&rules, 0).len(), 0);
    }

    #[test]
    fn hierarchy_pruning_prefers_specific_by_default() {
        let (onto, _, resistor, fixed) = ontology();
        let rules = vec![
            rule("crcw", resistor, 100, 90), // more general, higher confidence
            rule("crcw", fixed, 100, 80),    // more specific
        ];
        let specific = prune_hierarchy_redundant(&rules, &onto, HierarchyPreference::MoreSpecific);
        assert_eq!(specific.len(), 1);
        assert_eq!(specific[0].class, fixed);

        let general = prune_hierarchy_redundant(&rules, &onto, HierarchyPreference::MoreGeneral);
        assert_eq!(general.len(), 1);
        assert_eq!(general[0].class, resistor);

        let confident =
            prune_hierarchy_redundant(&rules, &onto, HierarchyPreference::HigherConfidence);
        assert_eq!(confident.len(), 1);
        assert_eq!(confident[0].class, resistor);
    }

    #[test]
    fn unrelated_classes_are_not_pruned() {
        let (onto, _, resistor, fixed) = ontology();
        let rules = vec![
            rule("seg", resistor, 100, 90),
            rule("other", fixed, 100, 80), // different premise → untouched
        ];
        let pruned = prune_hierarchy_redundant(&rules, &onto, HierarchyPreference::MoreSpecific);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn duplicate_conclusions_keep_best_ranked() {
        let (onto, _, resistor, _) = ontology();
        let rules = vec![
            rule("seg", resistor, 100, 70),
            rule("seg", resistor, 50, 50),
        ];
        let pruned = prune_hierarchy_redundant(&rules, &onto, HierarchyPreference::MoreSpecific);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].confidence(), 1.0);
    }

    #[test]
    fn empty_input_is_fine() {
        let (onto, ..) = ontology();
        assert!(filter_by_quality(&[], 0.1, 0.1, 0.1).is_empty());
        assert!(top_k_per_class(&[], 3).is_empty());
        assert!(prune_hierarchy_redundant(&[], &onto, HierarchyPreference::default()).is_empty());
    }
}
