//! Training sets of linked data.
//!
//! The input of the learning algorithm is `TS`, "the set of same-as links
//! between external and local data items that are validated by a domain
//! expert", stored with provenance. For learning, each link contributes:
//!
//! * the data-property facts of the **external** item (the paper's `TSE`,
//!   "set of property facts of SE that belong to TS") — these provide the
//!   `p(X, Y)` premises, and
//! * the classes of the **local** item in the ontology `OL` — these provide
//!   the `c(X)` conclusions.

use crate::error::{CoreError, Result};
use classilink_ontology::{ClassId, InstanceStore, Ontology};
use classilink_rdf::{Dataset, Graph, Source, Term};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One validated `same-as` link, with the features the learner needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// The external data item (subject of the `owl:sameAs` link).
    pub external_item: Term,
    /// The local data item it was reconciled with.
    pub local_item: Term,
    /// Data-property facts of the external item: `(property IRI, value)`.
    pub facts: Vec<(String, String)>,
    /// Classes of the local item (most specific ones when extracted with the
    /// default configuration).
    pub classes: Vec<ClassId>,
}

impl TrainingExample {
    /// Create an example directly (used by generators and tests).
    pub fn new(
        external_item: Term,
        local_item: Term,
        facts: Vec<(String, String)>,
        classes: Vec<ClassId>,
    ) -> Self {
        TrainingExample {
            external_item,
            local_item,
            facts,
            classes,
        }
    }

    /// Values of one property on the external item.
    pub fn values_of(&self, property_iri: &str) -> Vec<&str> {
        self.facts
            .iter()
            .filter(|(p, _)| p == property_iri)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// `true` when the example's local item is an instance of `class`.
    pub fn has_class(&self, class: ClassId) -> bool {
        self.classes.contains(&class)
    }
}

/// The training set `TS`: a list of validated linked pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    examples: Vec<TrainingExample>,
}

impl TrainingSet {
    /// An empty training set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a training set from a list of examples.
    pub fn from_examples(examples: Vec<TrainingExample>) -> Self {
        TrainingSet { examples }
    }

    /// Add one example.
    pub fn push(&mut self, example: TrainingExample) {
        self.examples.push(example);
    }

    /// `|TS|`: the number of linked pairs.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// `true` when the training set holds no links.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The examples in insertion order.
    pub fn examples(&self) -> &[TrainingExample] {
        &self.examples
    }

    /// The distinct property IRIs observed on external items.
    pub fn properties(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .examples
            .iter()
            .flat_map(|e| e.facts.iter().map(|(p, _)| p.as_str()))
            .collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Class frequencies over the training set: how many examples have each
    /// class among their (most specific) classes.
    pub fn class_frequencies(&self) -> BTreeMap<ClassId, u64> {
        let mut freqs: BTreeMap<ClassId, u64> = BTreeMap::new();
        for e in &self.examples {
            for c in &e.classes {
                *freqs.entry(*c).or_insert(0) += 1;
            }
        }
        freqs
    }

    /// Total number of property facts over all examples.
    pub fn fact_count(&self) -> usize {
        self.examples.iter().map(|e| e.facts.len()).sum()
    }

    /// Split the training set into `(train, test)` parts: the first
    /// `⌈ratio·|TS|⌉` examples go to train. Use a pre-shuffled set when a
    /// random split is wanted; keeping this deterministic makes experiments
    /// reproducible.
    pub fn split(&self, train_ratio: f64) -> (TrainingSet, TrainingSet) {
        let ratio = train_ratio.clamp(0.0, 1.0);
        let cut = (self.examples.len() as f64 * ratio).ceil() as usize;
        let cut = cut.min(self.examples.len());
        (
            TrainingSet::from_examples(self.examples[..cut].to_vec()),
            TrainingSet::from_examples(self.examples[cut..].to_vec()),
        )
    }

    /// Extract a training set from a provenance-aware [`Dataset`]:
    ///
    /// * every `owl:sameAs` link `(external, local)` becomes one example,
    /// * the example's facts are the literal-valued triples of the external
    ///   item in the external graph,
    /// * the example's classes are the local item's `rdf:type` assertions in
    ///   the local graph, reduced to the most specific ones when
    ///   `most_specific` is set.
    ///
    /// Links whose local item has no known class are kept (they still count
    /// in `|TS|`, exactly as in the paper where every reconciliation
    /// contributes to the denominator of support).
    pub fn from_dataset(
        dataset: &Dataset,
        ontology: &Ontology,
        most_specific: bool,
    ) -> Result<Self> {
        if dataset.link_count() == 0 {
            return Err(CoreError::EmptyTrainingSet);
        }
        let (instances, _unknown) = InstanceStore::from_graph(dataset.local(), ontology);
        let mut examples = Vec::with_capacity(dataset.link_count());
        for (external_item, local_item) in dataset.link_pairs() {
            let facts = literal_facts(dataset.graph(Source::External), &external_item);
            let classes = if most_specific {
                instances.most_specific_types(&local_item, ontology)
            } else {
                instances.types_of(&local_item)
            };
            examples.push(TrainingExample::new(
                external_item,
                local_item,
                facts,
                classes,
            ));
        }
        Ok(TrainingSet::from_examples(examples))
    }
}

/// The literal-valued facts of one item in a graph, as `(property IRI, value)`.
pub fn literal_facts(graph: &Graph, item: &Term) -> Vec<(String, String)> {
    graph
        .triples_matching(Some(item), None, None)
        .filter_map(|t| {
            let p = t.predicate.as_iri()?.to_string();
            let v = t.object.as_literal()?.value.clone();
            Some((p, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_ontology::OntologyBuilder;
    use classilink_rdf::namespace::vocab;
    use classilink_rdf::Triple;

    fn ontology() -> (Ontology, ClassId, ClassId, ClassId) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let resistor = b.class("Resistor", Some(component));
        let capacitor = b.class("Capacitor", Some(component));
        (b.build(), component, resistor, capacitor)
    }

    fn dataset(ontology: &Ontology) -> Dataset {
        let _ = ontology;
        let mut ds = Dataset::new();
        // Local catalog items with types and part numbers.
        for (n, class) in [(1, "Resistor"), (2, "Resistor"), (3, "Capacitor")] {
            let item = format!("http://local.e.org/prod/{n}");
            ds.insert(
                Source::Local,
                Triple::iris(&item, vocab::RDF_TYPE, format!("http://e.org/c#{class}")),
            );
            ds.insert(
                Source::Local,
                Triple::iris(&item, vocab::RDF_TYPE, "http://e.org/c#Component"),
            );
            ds.insert(
                Source::Local,
                Triple::literal(&item, "http://local.e.org/v#pn", format!("LOCAL-{n}")),
            );
        }
        // External provider items with their own vocabulary.
        for (n, pn) in [
            (1, "CRCW0805-10K-ohm"),
            (2, "CRCW0805-22K-ohm"),
            (3, "T83-A225"),
        ] {
            let item = format!("http://provider.e.org/item/{n}");
            ds.insert(
                Source::External,
                Triple::literal(&item, "http://provider.e.org/v#ref", pn),
            );
            ds.insert(
                Source::External,
                Triple::literal(&item, "http://provider.e.org/v#maker", "ACME"),
            );
            // An IRI-valued triple that must be ignored by literal_facts.
            ds.insert(
                Source::External,
                Triple::iris(&item, "http://provider.e.org/v#seeAlso", "http://x.org/a"),
            );
        }
        for n in 1..=3 {
            ds.link(
                &Term::iri(format!("http://provider.e.org/item/{n}")),
                &Term::iri(format!("http://local.e.org/prod/{n}")),
            );
        }
        ds
    }

    #[test]
    fn from_dataset_extracts_facts_and_classes() {
        let (onto, component, resistor, capacitor) = ontology();
        let ds = dataset(&onto);
        let ts = TrainingSet::from_dataset(&ds, &onto, true).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.fact_count(), 6);
        let props = ts.properties();
        assert_eq!(
            props,
            vec![
                "http://provider.e.org/v#maker".to_string(),
                "http://provider.e.org/v#ref".to_string()
            ]
        );
        // Most specific classes only (Component is dropped).
        let freqs = ts.class_frequencies();
        assert_eq!(freqs.get(&resistor), Some(&2));
        assert_eq!(freqs.get(&capacitor), Some(&1));
        assert_eq!(freqs.get(&component), None);
    }

    #[test]
    fn from_dataset_without_most_specific_keeps_all_types() {
        let (onto, component, ..) = ontology();
        let ds = dataset(&onto);
        let ts = TrainingSet::from_dataset(&ds, &onto, false).unwrap();
        let freqs = ts.class_frequencies();
        assert_eq!(freqs.get(&component), Some(&3));
    }

    #[test]
    fn from_dataset_with_no_links_is_an_error() {
        let (onto, ..) = ontology();
        let ds = Dataset::new();
        assert!(matches!(
            TrainingSet::from_dataset(&ds, &onto, true),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn example_accessors() {
        let (onto, _, resistor, _) = ontology();
        let ds = dataset(&onto);
        let ts = TrainingSet::from_dataset(&ds, &onto, true).unwrap();
        let ex = ts
            .examples()
            .iter()
            .find(|e| e.external_item == Term::iri("http://provider.e.org/item/1"))
            .unwrap();
        assert_eq!(ex.local_item, Term::iri("http://local.e.org/prod/1"));
        assert_eq!(
            ex.values_of("http://provider.e.org/v#ref"),
            vec!["CRCW0805-10K-ohm"]
        );
        assert_eq!(ex.values_of("http://provider.e.org/v#maker"), vec!["ACME"]);
        assert!(ex.values_of("http://provider.e.org/v#nope").is_empty());
        assert!(ex.has_class(resistor));
        assert!(!ex.has_class(ClassId(99)));
    }

    #[test]
    fn links_to_untyped_local_items_are_kept() {
        let (onto, ..) = ontology();
        let mut ds = dataset(&onto);
        ds.insert(
            Source::External,
            Triple::literal(
                "http://provider.e.org/item/9",
                "http://provider.e.org/v#ref",
                "X",
            ),
        );
        ds.link(
            &Term::iri("http://provider.e.org/item/9"),
            &Term::iri("http://local.e.org/prod/9"),
        );
        let ts = TrainingSet::from_dataset(&ds, &onto, true).unwrap();
        assert_eq!(ts.len(), 4);
        let ex = ts
            .examples()
            .iter()
            .find(|e| e.external_item == Term::iri("http://provider.e.org/item/9"))
            .unwrap();
        assert!(ex.classes.is_empty());
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let (onto, ..) = ontology();
        let ds = dataset(&onto);
        let ts = TrainingSet::from_dataset(&ds, &onto, true).unwrap();
        let (train, test) = ts.split(0.67);
        assert_eq!(train.len() + test.len(), ts.len());
        assert_eq!(train.len(), 3); // ceil(3 * 0.67) = 3
        let (all, none) = ts.split(1.5);
        assert_eq!(all.len(), 3);
        assert!(none.is_empty());
        let (zero, rest) = ts.split(0.0);
        assert!(zero.is_empty());
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn manual_construction() {
        let mut ts = TrainingSet::new();
        assert!(ts.is_empty());
        ts.push(TrainingExample::new(
            Term::iri("http://p.e.org/1"),
            Term::iri("http://l.e.org/1"),
            vec![("http://p.e.org/v#pn".to_string(), "ohm-10".to_string())],
            vec![ClassId(0)],
        ));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.properties(), vec!["http://p.e.org/v#pn".to_string()]);
        assert_eq!(ts.class_frequencies().get(&ClassId(0)), Some(&1));
    }
}
