//! Subsumption-based rule generalisation — the paper's future-work extension.
//!
//! > "As future work, we plan to study how the learnt classification rules
//! > can be used to infer more general rules by exploiting the semantics of
//! > the subsumption between classes of the ontology."
//!
//! The idea implemented here: a segment may not be discriminative for any
//! single leaf class (e.g. `"uF"` appears in tantalum, ceramic *and*
//! electrolytic capacitors) yet be perfectly discriminative for their common
//! superclass (`Capacitor`). We therefore re-learn rules on a training set
//! whose class assertions are closed under subsumption and keep the rules
//! that conclude on a **more general** class with **strictly better
//! confidence** than every base rule sharing the same premise. Such rules
//! trade a larger linking subspace for higher confidence/recall, which is the
//! trade-off the extension is meant to offer.

use crate::config::LearnerConfig;
use crate::error::Result;
use crate::learner::{LearnOutcome, RuleLearner};
use crate::rule::ClassificationRule;
use crate::training::{TrainingExample, TrainingSet};
use classilink_ontology::Ontology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Configuration of the generalisation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralizeConfig {
    /// Minimum confidence a generalised rule must reach to be kept.
    pub min_confidence: f64,
    /// Required confidence improvement over the best base rule with the same
    /// premise (0.0 keeps any generalised rule at least as good).
    pub min_improvement: f64,
    /// Do not generalise above this depth (0 = the ontology roots are
    /// allowed; a root-level rule rarely reduces the linking space at all).
    pub min_class_depth: usize,
}

impl Default for GeneralizeConfig {
    fn default() -> Self {
        GeneralizeConfig {
            min_confidence: 0.8,
            min_improvement: 0.0,
            min_class_depth: 1,
        }
    }
}

/// The result of a generalisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GeneralizeOutcome {
    /// The generalised rules (concluding on non-leaf classes), ranked.
    pub generalized_rules: Vec<ClassificationRule>,
    /// Number of premises `(property, segment)` that gained a better rule.
    pub improved_premises: usize,
}

/// Close every example's class set under subsumption (add all ancestors).
pub fn generalize_training_set(training: &TrainingSet, ontology: &Ontology) -> TrainingSet {
    let examples = training
        .examples()
        .iter()
        .map(|e| {
            let mut classes: BTreeSet<_> = e.classes.iter().copied().collect();
            for c in &e.classes {
                classes.extend(ontology.ancestors(*c));
            }
            TrainingExample::new(
                e.external_item.clone(),
                e.local_item.clone(),
                e.facts.clone(),
                classes.into_iter().collect(),
            )
        })
        .collect();
    TrainingSet::from_examples(examples)
}

/// Learn generalised rules from `training` and keep those that improve on the
/// base outcome.
pub fn generalize(
    training: &TrainingSet,
    ontology: &Ontology,
    learner_config: &LearnerConfig,
    base: &LearnOutcome,
    config: &GeneralizeConfig,
) -> Result<GeneralizeOutcome> {
    let closed = generalize_training_set(training, ontology);
    // Class assertions are already closed under subsumption, so the learner
    // must not reduce them back to the most specific ones.
    let mut cfg = learner_config.clone();
    cfg.most_specific_classes = false;
    let lifted = RuleLearner::new(cfg).learn(&closed, ontology)?;

    // Best base confidence per premise.
    let mut best_base: HashMap<(&str, &str), f64> = HashMap::new();
    for r in &base.rules {
        let key = (r.property.as_str(), r.segment.as_str());
        let entry = best_base.entry(key).or_insert(0.0);
        if r.confidence() > *entry {
            *entry = r.confidence();
        }
    }

    let base_conclusions: BTreeSet<(&str, &str, classilink_ontology::ClassId)> = base
        .rules
        .iter()
        .map(|r| (r.property.as_str(), r.segment.as_str(), r.class))
        .collect();

    let mut improved: BTreeSet<(String, String)> = BTreeSet::new();
    let mut generalized: Vec<ClassificationRule> = Vec::new();
    for r in &lifted.rules {
        // Only non-leaf classes are "generalisations".
        if ontology.is_leaf(r.class) {
            continue;
        }
        if ontology.depth(r.class) < config.min_class_depth {
            continue;
        }
        // Skip conclusions the base rules already make.
        if base_conclusions.contains(&(r.property.as_str(), r.segment.as_str(), r.class)) {
            continue;
        }
        if r.confidence() < config.min_confidence {
            continue;
        }
        let base_conf = best_base
            .get(&(r.property.as_str(), r.segment.as_str()))
            .copied()
            .unwrap_or(0.0);
        // The generalised rule must reach at least the best base confidence
        // for the same premise, plus the required improvement margin.
        if r.confidence() + 1e-12 < base_conf + config.min_improvement {
            continue;
        }
        improved.insert((r.property.clone(), r.segment.clone()));
        generalized.push(r.clone());
    }
    generalized.sort_by(|a, b| a.ranking_cmp(b));
    Ok(GeneralizeOutcome {
        generalized_rules: generalized,
        improved_premises: improved.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PropertySelection;
    use classilink_ontology::{ClassId, OntologyBuilder};
    use classilink_rdf::Term;

    const PN: &str = "http://provider.e.org/v#partNumber";

    /// Component ── Capacitor ─┬─ TantalumCapacitor
    ///                          └─ CeramicCapacitor
    ///            └─ Resistor  ── FixedFilmResistor
    fn ontology() -> (Ontology, [ClassId; 6]) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let capacitor = b.class("Capacitor", Some(component));
        let tantalum = b.class("TantalumCapacitor", Some(capacitor));
        let ceramic = b.class("CeramicCapacitor", Some(capacitor));
        let resistor = b.class("Resistor", Some(component));
        let fixed = b.class("FixedFilmResistor", Some(resistor));
        (
            b.build(),
            [component, capacitor, tantalum, ceramic, resistor, fixed],
        )
    }

    fn example(n: usize, pn: &str, class: ClassId) -> TrainingExample {
        TrainingExample::new(
            Term::iri(format!("http://p.e.org/{n}")),
            Term::iri(format!("http://l.e.org/{n}")),
            vec![(PN.to_string(), pn.to_string())],
            vec![class],
        )
    }

    /// "uF" appears in both capacitor subclasses (50/50), "ohm" only in
    /// resistors, "t83" only in tantalums.
    fn training(tantalum: ClassId, ceramic: ClassId, fixed: ClassId) -> TrainingSet {
        let mut ts = TrainingSet::new();
        for i in 0..10 {
            ts.push(example(i, &format!("T83-A{i}-22-uF"), tantalum));
        }
        for i in 10..20 {
            ts.push(example(i, &format!("C0G-B{i}-10-uF"), ceramic));
        }
        for i in 20..30 {
            ts.push(example(i, &format!("CRCW-R{i}-10K-ohm"), fixed));
        }
        ts
    }

    fn learner_config() -> LearnerConfig {
        LearnerConfig::default()
            .with_support_threshold(0.05)
            .with_properties(PropertySelection::single(PN))
    }

    #[test]
    fn closure_adds_ancestors() {
        let (onto, [component, capacitor, tantalum, ..]) = ontology();
        let ts = TrainingSet::from_examples(vec![example(0, "T83", tantalum)]);
        let closed = generalize_training_set(&ts, &onto);
        let classes = &closed.examples()[0].classes;
        assert!(classes.contains(&tantalum));
        assert!(classes.contains(&capacitor));
        assert!(classes.contains(&component));
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn uf_segment_generalizes_to_capacitor() {
        let (onto, [_, capacitor, tantalum, ceramic, _, fixed]) = ontology();
        let ts = training(tantalum, ceramic, fixed);
        let cfg = learner_config();
        let base = RuleLearner::new(cfg.clone()).learn(&ts, &onto).unwrap();

        // In the base outcome, "uf" rules have confidence 0.5 at best.
        let best_uf = base
            .rules
            .iter()
            .filter(|r| r.segment == "uf")
            .map(|r| r.confidence())
            .fold(0.0, f64::max);
        assert!((best_uf - 0.5).abs() < 1e-12);

        let out = generalize(&ts, &onto, &cfg, &base, &GeneralizeConfig::default()).unwrap();
        let uf_general = out
            .generalized_rules
            .iter()
            .find(|r| r.segment == "uf" && r.class == capacitor)
            .expect("a generalized Capacitor rule for 'uf'");
        assert_eq!(uf_general.confidence(), 1.0);
        assert!(out.improved_premises >= 1);
    }

    #[test]
    fn already_perfect_rules_do_not_generalize_to_roots() {
        let (onto, [_, _, tantalum, ceramic, _, fixed]) = ontology();
        let ts = training(tantalum, ceramic, fixed);
        let cfg = learner_config();
        let base = RuleLearner::new(cfg.clone()).learn(&ts, &onto).unwrap();
        let out = generalize(&ts, &onto, &cfg, &base, &GeneralizeConfig::default()).unwrap();
        // No generalized rule may conclude on the root Component class
        // (depth 0 < min_class_depth 1).
        assert!(out
            .generalized_rules
            .iter()
            .all(|r| onto.depth(r.class) >= 1));
        // And none of them concludes on a leaf.
        assert!(out.generalized_rules.iter().all(|r| !onto.is_leaf(r.class)));
    }

    #[test]
    fn min_confidence_filters_generalized_rules() {
        let (onto, [_, _, tantalum, ceramic, _, fixed]) = ontology();
        let ts = training(tantalum, ceramic, fixed);
        let cfg = learner_config();
        let base = RuleLearner::new(cfg.clone()).learn(&ts, &onto).unwrap();
        let strict = GeneralizeConfig {
            min_confidence: 1.01, // impossible
            ..GeneralizeConfig::default()
        };
        let out = generalize(&ts, &onto, &cfg, &base, &strict).unwrap();
        assert!(out.generalized_rules.is_empty());
        assert_eq!(out.improved_premises, 0);
    }

    #[test]
    fn generalized_rules_never_lose_confidence_vs_base() {
        let (onto, [_, _, tantalum, ceramic, _, fixed]) = ontology();
        let ts = training(tantalum, ceramic, fixed);
        let cfg = learner_config();
        let base = RuleLearner::new(cfg.clone()).learn(&ts, &onto).unwrap();
        let out = generalize(&ts, &onto, &cfg, &base, &GeneralizeConfig::default()).unwrap();
        let mut best_base: HashMap<(&str, &str), f64> = HashMap::new();
        for r in &base.rules {
            let e = best_base
                .entry((r.property.as_str(), r.segment.as_str()))
                .or_insert(0.0);
            *e = e.max(r.confidence());
        }
        for r in &out.generalized_rules {
            let base_conf = best_base
                .get(&(r.property.as_str(), r.segment.as_str()))
                .copied()
                .unwrap_or(0.0);
            assert!(r.confidence() + 1e-12 >= base_conf);
        }
    }
}
