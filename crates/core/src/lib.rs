//! # classilink-core
//!
//! The primary contribution of *"Classification Rule Learning for Data
//! Linking"* (Pernelle & Saïs, LWDM @ EDBT 2012), implemented as a library:
//! learning **value-based classification rules** from a training set of
//! validated `same-as` links, and using them to shrink the data-linking
//! space.
//!
//! A rule has the form `p(X, Y) ∧ subsegment(Y, a) ⇒ c(X)`: if the value of
//! data property `p` on an external item contains the segment `a`, the item
//! likely belongs to local class `c` — so it only needs to be compared with
//! the instances of `c` instead of the whole catalog.
//!
//! ## Modules
//!
//! * [`training`] — the training set `TS` (linked pairs with the external
//!   item's property facts and the local item's classes).
//! * [`measures`] — support, confidence, lift (plus coverage, specificity,
//!   leverage, conviction) from contingency counts.
//! * [`rule`] — the [`ClassificationRule`] type.
//! * [`config`] — learner configuration (support threshold `th`, property
//!   selection, segmentation).
//! * [`learner`] — Algorithm 1 ([`RuleLearner`]) and run statistics.
//! * [`ordering`] — rule ranking and confidence-tier grouping (Table 1).
//! * [`classifier`] — applying rules to new external items.
//! * [`subspace`] — linking subspaces and reduction statistics.
//! * [`pruning`] — redundancy and quality-based pruning.
//! * [`mod@generalize`] — subsumption-based rule generalisation (the paper's
//!   future-work extension).
//!
//! ## Quick example
//!
//! ```
//! use classilink_core::prelude::*;
//! use classilink_ontology::OntologyBuilder;
//! use classilink_rdf::Term;
//!
//! // A tiny ontology and training set.
//! let mut b = OntologyBuilder::new("http://example.org/classes#");
//! let root = b.class("Component", None);
//! let resistor = b.class("FixedFilmResistor", Some(root));
//! let capacitor = b.class("TantalumCapacitor", Some(root));
//! let ontology = b.build();
//!
//! let pn = "http://provider.example.org/vocab#partNumber";
//! let mut ts = TrainingSet::new();
//! for i in 0..10 {
//!     ts.push(TrainingExample::new(
//!         Term::iri(format!("http://provider.example.org/item/{i}")),
//!         Term::iri(format!("http://local.example.org/prod/{i}")),
//!         vec![(pn.to_string(), format!("CRCW08{i:02}-10K-ohm"))],
//!         vec![resistor],
//!     ));
//! }
//! for i in 10..20 {
//!     ts.push(TrainingExample::new(
//!         Term::iri(format!("http://provider.example.org/item/{i}")),
//!         Term::iri(format!("http://local.example.org/prod/{i}")),
//!         vec![(pn.to_string(), format!("T83-A{i}-22uF"))],
//!         vec![capacitor],
//!     ));
//! }
//!
//! // Learn rules and classify a new external item.
//! let config = LearnerConfig::default().with_support_threshold(0.05);
//! let outcome = RuleLearner::new(config.clone()).learn(&ts, &ontology).unwrap();
//! assert!(!outcome.rules.is_empty());
//!
//! let classifier = RuleClassifier::from_outcome(&outcome, &config);
//! let decision = classifier
//!     .decide(&[(pn.to_string(), "CRCW0899-47K-ohm".to_string())])
//!     .unwrap();
//! assert_eq!(decision.class, resistor);
//! ```

pub mod classifier;
pub mod config;
pub mod error;
pub mod generalize;
pub mod learner;
pub mod measures;
pub mod ordering;
pub mod pruning;
pub mod rule;
pub mod subspace;
pub mod training;

pub use classifier::{Prediction, RuleClassifier};
pub use config::{LearnerConfig, PropertySelection};
pub use error::{CoreError, Result};
pub use generalize::{generalize, GeneralizeConfig, GeneralizeOutcome};
pub use learner::{LearnOutcome, LearnStats, RuleLearner};
pub use measures::{reduction_factor, Contingency, RuleQuality};
pub use ordering::{best_rule_per_class, group_by_confidence_tiers, rank_rules};
pub use pruning::{
    filter_by_quality, prune_hierarchy_redundant, top_k_per_class, HierarchyPreference,
};
pub use rule::ClassificationRule;
pub use subspace::{LinkingSubspace, ReductionStats, SubspaceBuilder};
pub use training::{literal_facts, TrainingExample, TrainingSet};

/// A convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use crate::classifier::{Prediction, RuleClassifier};
    pub use crate::config::{LearnerConfig, PropertySelection};
    pub use crate::learner::{LearnOutcome, LearnStats, RuleLearner};
    pub use crate::measures::{Contingency, RuleQuality};
    pub use crate::rule::ClassificationRule;
    pub use crate::subspace::{LinkingSubspace, ReductionStats, SubspaceBuilder};
    pub use crate::training::{TrainingExample, TrainingSet};
}
