//! Rule ordering and conclusion deduplication (section 4.4 of the paper).
//!
//! "The above quality measures are used to rank the obtained subspaces for
//! each data item of SE. More precisely, the confidence degree is used first.
//! In case of the same confidence degree, the lift measure is used in order
//! to consider first the smaller subspaces. […] the application of two
//! different rules may lead to the same linking subspace. In this case, we
//! ignore the one that is obtained by the rule having the worst confidence
//! degree."

use crate::rule::ClassificationRule;
use classilink_ontology::ClassId;
use std::collections::HashMap;

/// Sort rules in ranking order: confidence descending, then lift descending,
/// then support descending, then a deterministic textual tie-break.
pub fn rank_rules(rules: &mut [ClassificationRule]) {
    rules.sort_by(|a, b| a.ranking_cmp(b));
}

/// Among rules that conclude on the same class (and therefore determine the
/// same linking subspace), keep only the best-ranked one. The input order is
/// irrelevant; the output is in ranking order.
pub fn best_rule_per_class(rules: &[ClassificationRule]) -> Vec<&ClassificationRule> {
    let mut best: HashMap<ClassId, &ClassificationRule> = HashMap::new();
    for rule in rules {
        match best.get(&rule.class) {
            Some(current) if current.ranking_cmp(rule).is_le() => {}
            _ => {
                best.insert(rule.class, rule);
            }
        }
    }
    let mut out: Vec<&ClassificationRule> = best.into_values().collect();
    out.sort_by(|a, b| a.ranking_cmp(b));
    out
}

/// Group rules by descending confidence tier. `thresholds` must be sorted in
/// descending order (e.g. `[1.0, 0.8, 0.6, 0.4]` as in Table 1); a rule falls
/// into the first tier whose threshold it reaches. Rules below every
/// threshold are dropped. Returns one `(threshold, rules)` entry per tier.
pub fn group_by_confidence_tiers<'a>(
    rules: &'a [ClassificationRule],
    thresholds: &[f64],
) -> Vec<(f64, Vec<&'a ClassificationRule>)> {
    let mut tiers: Vec<(f64, Vec<&ClassificationRule>)> =
        thresholds.iter().map(|t| (*t, Vec::new())).collect();
    for rule in rules {
        for (threshold, bucket) in tiers.iter_mut() {
            if rule.confidence() >= *threshold - 1e-12 {
                bucket.push(rule);
                break;
            }
        }
    }
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::Contingency;

    fn rule(segment: &str, class: u32, premise: u64, both: u64) -> ClassificationRule {
        ClassificationRule {
            property: "http://e.org/v#pn".to_string(),
            segment: segment.to_string(),
            class: ClassId(class),
            class_iri: format!("http://e.org/c#C{class}"),
            class_label: format!("C{class}"),
            quality: Contingency::new(1000, premise, 100, both).quality(),
        }
    }

    #[test]
    fn rank_orders_by_confidence_then_lift() {
        let mut rules = vec![
            rule("low", 1, 100, 60), // conf 0.6
            rule("high", 2, 50, 50), // conf 1.0
            rule("mid", 3, 100, 80), // conf 0.8
        ];
        rank_rules(&mut rules);
        let segments: Vec<&str> = rules.iter().map(|r| r.segment.as_str()).collect();
        assert_eq!(segments, vec!["high", "mid", "low"]);
    }

    #[test]
    fn best_rule_per_class_keeps_highest_confidence() {
        let rules = vec![
            rule("weak", 1, 100, 70),  // class 1, conf 0.7
            rule("strong", 1, 50, 50), // class 1, conf 1.0
            rule("only", 2, 80, 40),   // class 2, conf 0.5
        ];
        let best = best_rule_per_class(&rules);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].segment, "strong");
        assert_eq!(best[1].segment, "only");
    }

    #[test]
    fn best_rule_per_class_on_empty_input() {
        assert!(best_rule_per_class(&[]).is_empty());
    }

    #[test]
    fn tiers_follow_table_one_structure() {
        let rules = vec![
            rule("a", 1, 50, 50),   // 1.0
            rule("b", 2, 100, 100), // 1.0
            rule("c", 3, 100, 85),  // 0.85
            rule("d", 4, 100, 65),  // 0.65
            rule("e", 5, 100, 45),  // 0.45
            rule("f", 6, 100, 10),  // 0.1 → dropped
        ];
        let tiers = group_by_confidence_tiers(&rules, &[1.0, 0.8, 0.6, 0.4]);
        assert_eq!(tiers.len(), 4);
        assert_eq!(tiers[0].0, 1.0);
        assert_eq!(tiers[0].1.len(), 2);
        assert_eq!(tiers[1].1.len(), 1);
        assert_eq!(tiers[2].1.len(), 1);
        assert_eq!(tiers[3].1.len(), 1);
        let total: usize = tiers.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn tier_boundaries_are_inclusive() {
        let rules = vec![rule("exact", 1, 100, 80)]; // exactly 0.8
        let tiers = group_by_confidence_tiers(&rules, &[1.0, 0.8]);
        assert!(tiers[0].1.is_empty());
        assert_eq!(tiers[1].1.len(), 1);
    }

    #[test]
    fn empty_thresholds_drop_everything() {
        let rules = vec![rule("a", 1, 50, 50)];
        assert!(group_by_confidence_tiers(&rules, &[]).is_empty());
    }
}
