//! Linking subspaces and linking-space reduction.
//!
//! "The application of a classification rule determines a data linking
//! subspace for each instance of SE. For a given new data item i, and a rule
//! Rk : p(i,v) ∧ subsegment(v,'seg') ⇒ c(i), the application of Rk leads to a
//! data linking subspace d_ik composed of the set of pairs (i, j) such that
//! i ∈ SE, j ∈ SL and c(j). The whole data linking space for the data item i
//! is then composed of the union of all the data linking subspaces obtained
//! thanks to the application of all the classification rules involving i."
//!
//! This module materialises those subspaces from the classifier's
//! predictions and the local instance store, and measures how much smaller
//! they are than the naive `|SE| × |SL|` space.

use crate::classifier::{Prediction, RuleClassifier};
use classilink_ontology::{ClassId, InstanceStore, Ontology};
use classilink_rdf::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The linking subspace of one external item: the local candidates it has to
/// be compared with.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkingSubspace {
    /// The external item.
    pub external_item: Term,
    /// The classes predicted for the item, in ranking order.
    pub classes: Vec<ClassId>,
    /// The local items belonging to (the union of) the predicted classes.
    pub candidates: Vec<Term>,
}

impl LinkingSubspace {
    /// Number of candidate pairs for this item.
    pub fn size(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when no rule fired and the item would fall back to the full
    /// catalog.
    pub fn is_unclassified(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Aggregate statistics over the subspaces of a batch of external items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ReductionStats {
    /// Number of external items considered.
    pub external_items: usize,
    /// Number of items for which at least one rule fired.
    pub classified_items: usize,
    /// Size of the local catalog `|SL|`.
    pub local_items: usize,
    /// Naive linking space: `|SE| × |SL|`.
    pub naive_pairs: u64,
    /// Pairs that remain after classification. Unclassified items contribute
    /// `|SL|` pairs each (they must still be compared to everything).
    pub reduced_pairs: u64,
    /// Pairs that remain counting only the classified items.
    pub reduced_pairs_classified_only: u64,
    /// `1 − reduced/naive`: fraction of comparisons avoided.
    pub reduction_ratio: f64,
    /// Mean factor by which a classified item's candidate list is smaller
    /// than the catalog (the paper argues this is at least the average lift
    /// divided by the confidence).
    pub mean_reduction_factor: f64,
}

/// Builds linking subspaces by combining a classifier with the local
/// instance store.
pub struct SubspaceBuilder<'a> {
    classifier: &'a RuleClassifier,
    instances: &'a InstanceStore,
    ontology: &'a Ontology,
}

impl<'a> SubspaceBuilder<'a> {
    /// Create a builder over the given classifier and local instances.
    pub fn new(
        classifier: &'a RuleClassifier,
        instances: &'a InstanceStore,
        ontology: &'a Ontology,
    ) -> Self {
        SubspaceBuilder {
            classifier,
            instances,
            ontology,
        }
    }

    /// The subspace determined by a set of predictions for `item`.
    pub fn subspace_for_predictions(
        &self,
        item: &Term,
        predictions: &[Prediction],
    ) -> LinkingSubspace {
        let mut candidates: BTreeSet<Term> = BTreeSet::new();
        let mut classes = Vec::with_capacity(predictions.len());
        for p in predictions {
            classes.push(p.class);
            candidates.extend(self.instances.extent(p.class, self.ontology));
        }
        LinkingSubspace {
            external_item: item.clone(),
            classes,
            candidates: candidates.into_iter().collect(),
        }
    }

    /// Classify `facts` and build the corresponding subspace for `item`.
    pub fn subspace(&self, item: &Term, facts: &[(String, String)]) -> LinkingSubspace {
        let predictions = self.classifier.classify_facts(facts);
        self.subspace_for_predictions(item, &predictions)
    }

    /// Compute reduction statistics over a batch of external items given as
    /// `(item, facts)` pairs. `local_size` is `|SL|` (the number of items in
    /// the local catalog).
    pub fn reduction_stats(
        &self,
        batch: &[(Term, Vec<(String, String)>)],
        local_size: usize,
    ) -> ReductionStats {
        let mut classified = 0usize;
        let mut reduced_pairs = 0u64;
        let mut reduced_classified = 0u64;
        let mut factor_sum = 0.0f64;
        for (item, facts) in batch {
            let subspace = self.subspace(item, facts);
            if subspace.is_unclassified() {
                reduced_pairs += local_size as u64;
            } else {
                classified += 1;
                reduced_pairs += subspace.size() as u64;
                reduced_classified += subspace.size() as u64;
                if subspace.size() > 0 {
                    factor_sum += local_size as f64 / subspace.size() as f64;
                } else {
                    // An empty extent removes every comparison for this item.
                    factor_sum += local_size as f64;
                }
            }
        }
        let naive_pairs = batch.len() as u64 * local_size as u64;
        let reduction_ratio = if naive_pairs == 0 {
            0.0
        } else {
            1.0 - reduced_pairs as f64 / naive_pairs as f64
        };
        let mean_reduction_factor = if classified == 0 {
            1.0
        } else {
            factor_sum / classified as f64
        };
        ReductionStats {
            external_items: batch.len(),
            classified_items: classified,
            local_items: local_size,
            naive_pairs,
            reduced_pairs,
            reduced_pairs_classified_only: reduced_classified,
            reduction_ratio,
            mean_reduction_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::Contingency;
    use crate::rule::ClassificationRule;
    use classilink_ontology::OntologyBuilder;
    use classilink_segment::SegmenterKind;

    const PN: &str = "http://provider.e.org/v#partNumber";

    fn setup() -> (Ontology, InstanceStore, ClassId, ClassId) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let resistor = b.class("FixedFilmResistor", Some(root));
        let capacitor = b.class("TantalumCapacitor", Some(root));
        let onto = b.build();
        let mut store = InstanceStore::new();
        // Catalog: 8 resistors, 2 capacitors → |SL| = 10.
        for i in 0..8 {
            store.assert_type(&Term::iri(format!("http://l.e.org/r{i}")), resistor);
        }
        for i in 0..2 {
            store.assert_type(&Term::iri(format!("http://l.e.org/c{i}")), capacitor);
        }
        (onto, store, resistor, capacitor)
    }

    fn rule(segment: &str, class: ClassId, class_name: &str, conf_pct: u64) -> ClassificationRule {
        ClassificationRule {
            property: PN.to_string(),
            segment: segment.to_string(),
            class,
            class_iri: format!("http://e.org/c#{class_name}"),
            class_label: class_name.to_string(),
            quality: Contingency::new(1000, 100, 200, conf_pct).quality(),
        }
    }

    fn facts(pn: &str) -> Vec<(String, String)> {
        vec![(PN.to_string(), pn.to_string())]
    }

    #[test]
    fn subspace_contains_extent_of_predicted_class() {
        let (onto, store, resistor, capacitor) = setup();
        let classifier = RuleClassifier::new(
            vec![
                rule("ohm", resistor, "FixedFilmResistor", 100),
                rule("t83", capacitor, "TantalumCapacitor", 100),
            ],
            SegmenterKind::Separator,
            true,
        );
        let builder = SubspaceBuilder::new(&classifier, &store, &onto);
        let item = Term::iri("http://p.e.org/1");
        let sub = builder.subspace(&item, &facts("10K-ohm"));
        assert_eq!(sub.classes, vec![resistor]);
        assert_eq!(sub.size(), 8);
        assert!(!sub.is_unclassified());

        let sub2 = builder.subspace(&item, &facts("T83-A225"));
        assert_eq!(sub2.size(), 2);

        let none = builder.subspace(&item, &facts("UNKNOWN-99"));
        assert!(none.is_unclassified());
        assert_eq!(none.size(), 0);
    }

    #[test]
    fn subspace_unions_multiple_predictions() {
        let (onto, store, resistor, capacitor) = setup();
        let classifier = RuleClassifier::new(
            vec![
                rule("ohm", resistor, "FixedFilmResistor", 80),
                rule("63v", capacitor, "TantalumCapacitor", 60),
            ],
            SegmenterKind::Separator,
            true,
        );
        let builder = SubspaceBuilder::new(&classifier, &store, &onto);
        let sub = builder.subspace(&Term::iri("http://p.e.org/1"), &facts("ohm-63V"));
        assert_eq!(sub.classes.len(), 2);
        assert_eq!(sub.size(), 10); // union of both extents
    }

    #[test]
    fn ancestor_class_prediction_covers_descendant_instances() {
        let (onto, store, _, _) = setup();
        let root = onto.class("http://e.org/c#Component").unwrap();
        let classifier = RuleClassifier::new(
            vec![rule("part", root, "Component", 90)],
            SegmenterKind::Separator,
            true,
        );
        let builder = SubspaceBuilder::new(&classifier, &store, &onto);
        let sub = builder.subspace(&Term::iri("http://p.e.org/1"), &facts("part-1"));
        assert_eq!(sub.size(), 10);
    }

    #[test]
    fn reduction_stats_account_for_unclassified_items() {
        let (onto, store, resistor, capacitor) = setup();
        let classifier = RuleClassifier::new(
            vec![
                rule("ohm", resistor, "FixedFilmResistor", 100),
                rule("t83", capacitor, "TantalumCapacitor", 100),
            ],
            SegmenterKind::Separator,
            true,
        );
        let builder = SubspaceBuilder::new(&classifier, &store, &onto);
        let batch = vec![
            (Term::iri("http://p.e.org/1"), facts("10K-ohm")), // 8 candidates
            (Term::iri("http://p.e.org/2"), facts("T83-A225")), // 2 candidates
            (Term::iri("http://p.e.org/3"), facts("MYSTERY")), // unclassified → 10
        ];
        let stats = builder.reduction_stats(&batch, 10);
        assert_eq!(stats.external_items, 3);
        assert_eq!(stats.classified_items, 2);
        assert_eq!(stats.naive_pairs, 30);
        assert_eq!(stats.reduced_pairs, 20);
        assert_eq!(stats.reduced_pairs_classified_only, 10);
        assert!((stats.reduction_ratio - (1.0 - 20.0 / 30.0)).abs() < 1e-12);
        // factors: 10/8 and 10/2 → mean 3.125
        assert!((stats.mean_reduction_factor - 3.125).abs() < 1e-12);
    }

    #[test]
    fn reduction_stats_on_empty_batch() {
        let (onto, store, resistor, _) = setup();
        let classifier = RuleClassifier::new(
            vec![rule("ohm", resistor, "FixedFilmResistor", 100)],
            SegmenterKind::Separator,
            true,
        );
        let builder = SubspaceBuilder::new(&classifier, &store, &onto);
        let stats = builder.reduction_stats(&[], 10);
        assert_eq!(stats.naive_pairs, 0);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.mean_reduction_factor, 1.0);
    }
}
