//! Classification metrics for rule-based class prediction.
//!
//! Table 1 of the paper reports, per confidence tier, the number of
//! *decisions* (items for which at least one rule fired), the *precision*
//! (fraction of decisions whose predicted class is the item's actual class)
//! and the *recall* (fraction of all items that were correctly classified).
//! [`ClassificationOutcome`] accumulates those counts.

use classilink_ontology::ClassId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated outcome of classifying a set of items with known gold classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassificationOutcome {
    /// Total number of items presented to the classifier.
    pub total_items: usize,
    /// Items for which at least one rule fired (a "decision" was made).
    pub decisions: usize,
    /// Decisions whose top predicted class equals the gold class.
    pub correct: usize,
    /// Per-gold-class counts: `(decisions, correct)`.
    pub per_class: BTreeMap<ClassId, (usize, usize)>,
}

impl ClassificationOutcome {
    /// Start an empty tally over `total_items` items.
    pub fn new(total_items: usize) -> Self {
        ClassificationOutcome {
            total_items,
            ..Default::default()
        }
    }

    /// Record one item: `predicted` is the classifier's top class (if any),
    /// `gold` the item's actual class (if known).
    pub fn record(&mut self, predicted: Option<ClassId>, gold: Option<ClassId>) {
        let Some(predicted) = predicted else {
            return; // no decision made
        };
        self.decisions += 1;
        if let Some(gold) = gold {
            let entry = self.per_class.entry(gold).or_insert((0, 0));
            entry.0 += 1;
            if predicted == gold {
                self.correct += 1;
                entry.1 += 1;
            }
        }
    }

    /// `correct / decisions` (1.0 when no decision was made, mirroring the
    /// convention that an empty rule set makes no mistakes).
    pub fn precision(&self) -> f64 {
        if self.decisions == 0 {
            1.0
        } else {
            self.correct as f64 / self.decisions as f64
        }
    }

    /// `correct / total_items`.
    pub fn recall(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.correct as f64 / self.total_items as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of items that received a decision.
    pub fn decision_rate(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.decisions as f64 / self.total_items as f64
        }
    }

    /// Number of distinct gold classes that received at least one correct
    /// decision.
    pub fn classes_correctly_predicted(&self) -> usize {
        self.per_class.values().filter(|(_, c)| *c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classification() {
        let mut o = ClassificationOutcome::new(4);
        for i in 0..4 {
            o.record(Some(ClassId(i)), Some(ClassId(i)));
        }
        assert_eq!(o.decisions, 4);
        assert_eq!(o.correct, 4);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 1.0);
        assert_eq!(o.f1(), 1.0);
        assert_eq!(o.decision_rate(), 1.0);
        assert_eq!(o.classes_correctly_predicted(), 4);
    }

    #[test]
    fn partial_coverage_and_errors() {
        let mut o = ClassificationOutcome::new(10);
        // 4 correct decisions, 2 wrong ones, 4 items with no decision.
        for i in 0..4 {
            o.record(
                Some(ClassId(0)),
                Some(if i < 4 { ClassId(0) } else { ClassId(1) }),
            );
        }
        o.record(Some(ClassId(0)), Some(ClassId(1)));
        o.record(Some(ClassId(2)), Some(ClassId(1)));
        for _ in 0..4 {
            o.record(None, Some(ClassId(3)));
        }
        assert_eq!(o.decisions, 6);
        assert_eq!(o.correct, 4);
        assert!((o.precision() - 4.0 / 6.0).abs() < 1e-12);
        assert!((o.recall() - 0.4).abs() < 1e-12);
        assert!((o.decision_rate() - 0.6).abs() < 1e-12);
        assert!(o.f1() > 0.0 && o.f1() < 1.0);
        assert_eq!(o.classes_correctly_predicted(), 1);
    }

    #[test]
    fn degenerate_cases() {
        let o = ClassificationOutcome::new(0);
        assert_eq!(o.precision(), 1.0);
        assert_eq!(o.recall(), 0.0);
        assert_eq!(o.f1(), 0.0);
        assert_eq!(o.decision_rate(), 0.0);

        let mut unknown_gold = ClassificationOutcome::new(3);
        unknown_gold.record(Some(ClassId(0)), None);
        assert_eq!(unknown_gold.decisions, 1);
        assert_eq!(unknown_gold.correct, 0);
    }
}
