//! Parameter sweeps and ablations (experiments E3, E4, A1, A2, A3 of
//! DESIGN.md).
//!
//! * [`reduction_sweep`] — linking-space reduction as a function of the
//!   confidence threshold (the paper's motivation and its in-text claims
//!   about lift > 20 and "linkage space divided by 5").
//! * [`support_sweep`] — number of rules / precision / recall as a function
//!   of the support threshold `th` (ablation A2).
//! * [`segmenter_ablation`] — the same experiment under different
//!   segmentation strategies (ablation A1).
//! * [`generalization_ablation`] — recall gained by subsumption-generalised
//!   rules (extension A3).

use crate::metrics::ClassificationOutcome;
use crate::table1::EvaluationItem;
use classilink_core::{
    generalize, GeneralizeConfig, LearnerConfig, RuleClassifier, RuleLearner, SubspaceBuilder,
    TrainingSet,
};
use classilink_ontology::{InstanceStore, Ontology};
use classilink_rdf::Term;
use classilink_segment::SegmenterKind;
use serde::{Deserialize, Serialize};

/// One point of the reduction sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionPoint {
    /// Minimum rule confidence used for classification.
    pub confidence_threshold: f64,
    /// Number of rules retained.
    pub rules: usize,
    /// Fraction of external items classified by at least one rule.
    pub classified_fraction: f64,
    /// Fraction of the naive `|SE|×|SL|` space that remains
    /// (unclassified items still count the full catalog).
    pub remaining_fraction: f64,
    /// Mean factor by which a classified item's candidate list shrinks.
    pub mean_reduction_factor: f64,
    /// Average lift of the retained rules.
    pub avg_lift: f64,
}

/// Sweep the confidence threshold and measure the linking-space reduction on
/// a batch of external items.
pub fn reduction_sweep(
    outcome: &classilink_core::LearnOutcome,
    learner: &LearnerConfig,
    instances: &InstanceStore,
    ontology: &Ontology,
    batch: &[(Term, Vec<(String, String)>)],
    local_size: usize,
    thresholds: &[f64],
) -> Vec<ReductionPoint> {
    let base = RuleClassifier::from_outcome(outcome, learner);
    thresholds
        .iter()
        .map(|threshold| {
            let classifier = base.with_min_confidence(*threshold);
            let builder = SubspaceBuilder::new(&classifier, instances, ontology);
            let stats = builder.reduction_stats(batch, local_size);
            let rules = classifier.rules().len();
            let avg_lift = if rules == 0 {
                0.0
            } else {
                classifier.rules().iter().map(|r| r.lift()).sum::<f64>() / rules as f64
            };
            ReductionPoint {
                confidence_threshold: *threshold,
                rules,
                classified_fraction: if stats.external_items == 0 {
                    0.0
                } else {
                    stats.classified_items as f64 / stats.external_items as f64
                },
                remaining_fraction: 1.0 - stats.reduction_ratio,
                mean_reduction_factor: stats.mean_reduction_factor,
                avg_lift,
            }
        })
        .collect()
}

/// One point of the support-threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupportPoint {
    /// The support threshold `th`.
    pub support_threshold: f64,
    /// Number of rules learnt.
    pub rules: usize,
    /// Number of frequent `(property, segment)` pairs.
    pub frequent_pairs: usize,
    /// Precision on the evaluation items (using all rules).
    pub precision: f64,
    /// Recall on the evaluation items (using all rules).
    pub recall: f64,
}

/// Sweep the support threshold `th` (ablation A2).
pub fn support_sweep(
    training: &TrainingSet,
    ontology: &Ontology,
    items: &[EvaluationItem],
    base_config: &LearnerConfig,
    thresholds: &[f64],
) -> classilink_core::Result<Vec<SupportPoint>> {
    let mut points = Vec::with_capacity(thresholds.len());
    for th in thresholds {
        let config = base_config.clone().with_support_threshold(*th);
        let outcome = RuleLearner::new(config.clone()).learn(training, ontology)?;
        let classifier = RuleClassifier::from_outcome(&outcome, &config);
        let mut tally = ClassificationOutcome::new(items.len());
        for (gold, facts) in items {
            tally.record(classifier.decide(facts).map(|p| p.class), *gold);
        }
        points.push(SupportPoint {
            support_threshold: *th,
            rules: outcome.rules.len(),
            frequent_pairs: outcome.stats.frequent_pairs,
            precision: tally.precision(),
            recall: tally.recall(),
        });
    }
    Ok(points)
}

/// One row of the segmenter ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmenterPoint {
    /// Name of the segmenter.
    pub segmenter: String,
    /// Number of distinct segments observed.
    pub distinct_segments: usize,
    /// Number of rules learnt.
    pub rules: usize,
    /// Precision on the evaluation items.
    pub precision: f64,
    /// Recall on the evaluation items.
    pub recall: f64,
}

/// Re-run the experiment under different segmentation strategies (ablation A1).
pub fn segmenter_ablation(
    training: &TrainingSet,
    ontology: &Ontology,
    items: &[EvaluationItem],
    base_config: &LearnerConfig,
    segmenters: &[SegmenterKind],
) -> classilink_core::Result<Vec<SegmenterPoint>> {
    let mut points = Vec::with_capacity(segmenters.len());
    for kind in segmenters {
        let config = base_config.clone().with_segmenter(kind.clone());
        let outcome = RuleLearner::new(config.clone()).learn(training, ontology)?;
        let classifier = RuleClassifier::from_outcome(&outcome, &config);
        let mut tally = ClassificationOutcome::new(items.len());
        for (gold, facts) in items {
            tally.record(classifier.decide(facts).map(|p| p.class), *gold);
        }
        points.push(SegmenterPoint {
            segmenter: kind.name(),
            distinct_segments: outcome.stats.distinct_segments,
            rules: outcome.rules.len(),
            precision: tally.precision(),
            recall: tally.recall(),
        });
    }
    Ok(points)
}

/// The result of the generalisation ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralizationPoint {
    /// Decisions / precision / recall with the base (leaf-level) rules only.
    pub base: (usize, f64, f64),
    /// Decisions / precision / recall with base + generalised rules, where a
    /// prediction is counted as correct when the gold class is the predicted
    /// class **or one of its descendants** (a more general prediction is a
    /// correct, if less precise, decision).
    pub generalized: (usize, f64, f64),
    /// Number of generalised rules added.
    pub generalized_rules: usize,
}

/// Measure the coverage gained by subsumption-generalised rules (extension A3).
pub fn generalization_ablation(
    training: &TrainingSet,
    ontology: &Ontology,
    items: &[EvaluationItem],
    config: &LearnerConfig,
    gen_config: &GeneralizeConfig,
) -> classilink_core::Result<GeneralizationPoint> {
    let outcome = RuleLearner::new(config.clone()).learn(training, ontology)?;
    let base_classifier = RuleClassifier::from_outcome(&outcome, config);
    let mut base_tally = ClassificationOutcome::new(items.len());
    for (gold, facts) in items {
        base_tally.record(base_classifier.decide(facts).map(|p| p.class), *gold);
    }

    let gen = generalize(training, ontology, config, &outcome, gen_config)?;
    let mut all_rules = outcome.rules.clone();
    all_rules.extend(gen.generalized_rules.clone());
    let extended_classifier =
        RuleClassifier::new(all_rules, config.segmenter.clone(), config.normalize);

    let mut decisions = 0usize;
    let mut correct = 0usize;
    for (gold, facts) in items {
        let Some(prediction) = extended_classifier.decide(facts) else {
            continue;
        };
        decisions += 1;
        if let Some(gold) = gold {
            // A prediction of an ancestor of the gold class still counts: the
            // item would be compared within a superset of the right class.
            if prediction.class == *gold || ontology.is_subclass_of(*gold, prediction.class) {
                correct += 1;
            }
        }
    }
    let gen_precision = if decisions == 0 {
        1.0
    } else {
        correct as f64 / decisions as f64
    };
    let gen_recall = if items.is_empty() {
        0.0
    } else {
        correct as f64 / items.len() as f64
    };
    Ok(GeneralizationPoint {
        base: (
            base_tally.decisions,
            base_tally.precision(),
            base_tally.recall(),
        ),
        generalized: (decisions, gen_precision, gen_recall),
        generalized_rules: gen.generalized_rules.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_core::PropertySelection;
    use classilink_datagen::scenario::{generate, ScenarioConfig};
    use classilink_datagen::vocab;

    fn scenario_and_items() -> (
        classilink_datagen::GeneratedScenario,
        Vec<EvaluationItem>,
        LearnerConfig,
    ) {
        let scenario = generate(&ScenarioConfig::tiny());
        let items: Vec<EvaluationItem> = scenario
            .training
            .examples()
            .iter()
            .map(|e| (e.classes.first().copied(), e.facts.clone()))
            .collect();
        let config = LearnerConfig::default()
            .with_support_threshold(0.01)
            .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));
        (scenario, items, config)
    }

    #[test]
    fn reduction_sweep_shrinks_with_confidence() {
        let (scenario, _, config) = scenario_and_items();
        let outcome = RuleLearner::new(config.clone())
            .learn(&scenario.training, &scenario.ontology)
            .unwrap();
        let batch: Vec<(Term, Vec<(String, String)>)> = scenario
            .training
            .examples()
            .iter()
            .map(|e| (e.external_item.clone(), e.facts.clone()))
            .collect();
        let points = reduction_sweep(
            &outcome,
            &config,
            &scenario.instances,
            &scenario.ontology,
            &batch,
            scenario.catalog_size(),
            &[1.0, 0.8, 0.5, 0.0],
        );
        assert_eq!(points.len(), 4);
        // Lower thresholds keep more rules and classify more items.
        for pair in points.windows(2) {
            assert!(pair[0].rules <= pair[1].rules);
            assert!(pair[0].classified_fraction <= pair[1].classified_fraction + 1e-9);
        }
        // Classified items see a real reduction.
        let last = points.last().unwrap();
        assert!(last.classified_fraction > 0.3);
        assert!(last.mean_reduction_factor > 1.5);
        assert!(last.remaining_fraction < 1.0);
    }

    #[test]
    fn support_sweep_is_monotone_in_rule_count() {
        let (scenario, items, config) = scenario_and_items();
        let points = support_sweep(
            &scenario.training,
            &scenario.ontology,
            &items,
            &config,
            &[0.005, 0.02, 0.1],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(pair[0].rules >= pair[1].rules);
            assert!(pair[0].frequent_pairs >= pair[1].frequent_pairs);
        }
    }

    #[test]
    fn segmenter_ablation_reports_each_strategy() {
        let (scenario, items, config) = scenario_and_items();
        let points = segmenter_ablation(
            &scenario.training,
            &scenario.ontology,
            &items,
            &config,
            &[
                SegmenterKind::Separator,
                SegmenterKind::AlphaNumTransition,
                SegmenterKind::CharNGram(3),
            ],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        let names: std::collections::HashSet<&str> =
            points.iter().map(|p| p.segmenter.as_str()).collect();
        assert_eq!(names.len(), 3);
        // Finer segmentations observe at least as many distinct segments.
        assert!(points[1].distinct_segments >= points[0].distinct_segments);
        for p in &points {
            assert!(p.precision >= 0.0 && p.precision <= 1.0);
            assert!(p.recall >= 0.0 && p.recall <= 1.0);
        }
    }

    #[test]
    fn generalization_never_reduces_recall() {
        let (scenario, items, config) = scenario_and_items();
        let point = generalization_ablation(
            &scenario.training,
            &scenario.ontology,
            &items,
            &config,
            &GeneralizeConfig::default(),
        )
        .unwrap();
        let (base_dec, _, base_recall) = point.base;
        let (gen_dec, gen_prec, gen_recall) = point.generalized;
        assert!(gen_dec >= base_dec);
        assert!(gen_recall + 1e-9 >= base_recall);
        assert!(gen_prec > 0.0);
    }
}
