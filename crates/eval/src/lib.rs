//! # classilink-eval
//!
//! The evaluation harness of the `classilink` workspace (reproduction of
//! *"Classification Rule Learning for Data Linking"*, Pernelle & Saïs,
//! LWDM @ EDBT 2012).
//!
//! Every table and figure of the paper's evaluation (and the additional
//! experiments listed in DESIGN.md) is regenerated through this crate:
//!
//! * [`metrics`] — decisions, precision, recall, F1 for rule-based
//!   classification.
//! * [`table1`] — the Table 1 experiment: rules grouped by confidence tier,
//!   with #rules / #decisions / precision / recall / lift per row.
//! * [`sweeps`] — the linking-space reduction sweep (E3/E4), the support
//!   threshold sweep (A2), the segmenter ablation (A1) and the
//!   subsumption-generalisation ablation (A3).
//! * [`blocking_eval`] — the comparison with the related-work blocking
//!   baselines (E5).
//! * [`report`] — ASCII and CSV table rendering.
//!
//! ## Quick example
//!
//! ```
//! use classilink_datagen::scenario::{generate, ScenarioConfig};
//! use classilink_eval::table1::Table1Experiment;
//! use classilink_core::{LearnerConfig, PropertySelection};
//! use classilink_datagen::vocab;
//!
//! let scenario = generate(&ScenarioConfig::tiny());
//! let experiment = Table1Experiment::with_learner(
//!     LearnerConfig::default()
//!         .with_support_threshold(0.01)
//!         .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER)),
//! );
//! let (_outcome, report) = experiment
//!     .run_on_training(&scenario.training, &scenario.ontology)
//!     .unwrap();
//! assert_eq!(report.rows.len(), 4);
//! println!("{}", report.to_table().to_ascii());
//! ```

pub mod blocking_eval;
pub mod metrics;
pub mod report;
pub mod sweeps;
pub mod table1;

pub use blocking_eval::{compare_blockers, BlockingComparisonRow};
pub use metrics::ClassificationOutcome;
pub use report::Table;
pub use sweeps::{
    generalization_ablation, reduction_sweep, segmenter_ablation, support_sweep,
    GeneralizationPoint, ReductionPoint, SegmenterPoint, SupportPoint,
};
pub use table1::{Table1Experiment, Table1Report, Table1Row};
