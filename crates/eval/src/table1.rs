//! The Table 1 experiment: classification rule results by confidence tier.
//!
//! The paper's Table 1 reports, for confidence thresholds 1 / 0.8 / 0.6 /
//! 0.4: the number of rules, the number of decisions, the precision, the
//! recall and the average lift. The paper groups rules by confidence and
//! evaluates on `TS` itself ("For each confidence threshold, we have used TS
//! to compute the number of decisions that can be made, the precision, and
//! the recall").
//!
//! Interpretation implemented here (recorded in EXPERIMENTS.md): the
//! `#rules` column counts the rules whose confidence falls in the tier
//! `[threshold, previous threshold)`, exactly as the paper's buckets do
//! (44 + 22 + 13 + 17 ≤ 144); decisions / precision / recall / lift are
//! computed with the **cumulative** rule set of confidence ≥ threshold,
//! which reproduces the monotone behaviour of the published row values
//! (precision decreasing, recall increasing, lift slowly decreasing).

use crate::metrics::ClassificationOutcome;
use crate::report::{float, percent, Table};
use classilink_core::{
    group_by_confidence_tiers, LearnOutcome, LearnerConfig, RuleClassifier, RuleLearner,
    TrainingSet,
};
use classilink_ontology::ClassId;
use classilink_ontology::Ontology;
use classilink_rdf::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The confidence threshold of the tier.
    pub confidence: f64,
    /// Number of rules whose confidence falls in this tier (non-cumulative).
    pub rules_in_tier: usize,
    /// Number of rules with confidence ≥ the threshold (cumulative).
    pub rules_cumulative: usize,
    /// Number of items for which the cumulative rule set made a decision.
    pub decisions: usize,
    /// Precision of those decisions.
    pub precision: f64,
    /// Recall over all evaluated items.
    pub recall: f64,
    /// Average lift of the cumulative rule set.
    pub avg_lift: f64,
}

/// The full Table 1 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Table1Report {
    /// One row per confidence threshold, in the order given.
    pub rows: Vec<Table1Row>,
    /// Number of evaluated items.
    pub evaluated_items: usize,
    /// Total number of learnt rules (the paper: 144 at `th = 0.002`).
    pub total_rules: usize,
    /// Number of distinct classes concluded by at least one rule (the paper:
    /// 16 classes).
    pub classes_with_rules: usize,
    /// Number of frequent classes observed in the training set (the paper:
    /// 67/68).
    pub frequent_classes: usize,
    /// Distinct segments observed while learning (the paper: 7 842).
    pub distinct_segments: usize,
    /// Total segment occurrences (the paper: 26 077).
    pub segment_occurrences: u64,
    /// Occurrences belonging to frequent (selected) pairs (the paper: 7 058).
    pub selected_segment_occurrences: u64,
}

impl Table1Report {
    /// Render the table in the paper's layout.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Table 1: Classification rule results",
            &["conf.", "#rules", "#dec.", "prec.", "recall", "lift"],
        );
        for row in &self.rows {
            table.row(&[
                float(row.confidence, if row.confidence == 1.0 { 0 } else { 1 }),
                row.rules_in_tier.to_string(),
                row.decisions.to_string(),
                percent(row.precision),
                percent(row.recall),
                float(row.avg_lift, 0),
            ]);
        }
        table
    }
}

/// The items used to evaluate the rules: `(gold class, facts)` pairs.
pub type EvaluationItem = (Option<ClassId>, Vec<(String, String)>);

/// Configuration and runner for the Table 1 experiment.
pub struct Table1Experiment {
    /// The learner configuration (the paper's `th = 0.002` by default).
    pub learner: LearnerConfig,
    /// The confidence thresholds of the rows, in descending order.
    pub thresholds: Vec<f64>,
}

impl Default for Table1Experiment {
    fn default() -> Self {
        Table1Experiment {
            learner: LearnerConfig::paper(),
            thresholds: vec![1.0, 0.8, 0.6, 0.4],
        }
    }
}

impl Table1Experiment {
    /// An experiment with a custom learner configuration.
    pub fn with_learner(learner: LearnerConfig) -> Self {
        Table1Experiment {
            learner,
            ..Default::default()
        }
    }

    /// Learn rules on `training` and evaluate them on the training set
    /// itself, as the paper does.
    pub fn run_on_training(
        &self,
        training: &TrainingSet,
        ontology: &Ontology,
    ) -> classilink_core::Result<(LearnOutcome, Table1Report)> {
        let items: Vec<EvaluationItem> = training
            .examples()
            .iter()
            .map(|e| (e.classes.first().copied(), e.facts.clone()))
            .collect();
        self.run(training, ontology, &items)
    }

    /// Learn rules on `training` and evaluate them on explicit items (e.g.
    /// held-out external items with gold classes).
    pub fn run(
        &self,
        training: &TrainingSet,
        ontology: &Ontology,
        items: &[EvaluationItem],
    ) -> classilink_core::Result<(LearnOutcome, Table1Report)> {
        let outcome = RuleLearner::new(self.learner.clone()).learn(training, ontology)?;
        let report = self.evaluate(&outcome, items);
        Ok((outcome, report))
    }

    /// Evaluate an existing learning outcome on the given items.
    pub fn evaluate(&self, outcome: &LearnOutcome, items: &[EvaluationItem]) -> Table1Report {
        let tiers = group_by_confidence_tiers(&outcome.rules, &self.thresholds);
        let tier_counts: BTreeMap<usize, usize> = tiers
            .iter()
            .enumerate()
            .map(|(i, (_, rules))| (i, rules.len()))
            .collect();
        let base_classifier = RuleClassifier::from_outcome(outcome, &self.learner);
        let mut rows = Vec::with_capacity(self.thresholds.len());
        for (i, threshold) in self.thresholds.iter().enumerate() {
            let classifier = base_classifier.with_min_confidence(*threshold);
            let cumulative_rules = classifier.rules().len();
            let avg_lift = if cumulative_rules == 0 {
                0.0
            } else {
                classifier.rules().iter().map(|r| r.lift()).sum::<f64>() / cumulative_rules as f64
            };
            let mut tally = ClassificationOutcome::new(items.len());
            for (gold, facts) in items {
                let predicted = classifier.decide(facts).map(|p| p.class);
                tally.record(predicted, *gold);
            }
            rows.push(Table1Row {
                confidence: *threshold,
                rules_in_tier: tier_counts.get(&i).copied().unwrap_or(0),
                rules_cumulative: cumulative_rules,
                decisions: tally.decisions,
                precision: tally.precision(),
                recall: tally.recall(),
                avg_lift,
            });
        }
        Table1Report {
            rows,
            evaluated_items: items.len(),
            total_rules: outcome.rules.len(),
            classes_with_rules: outcome.stats.classes_with_rules,
            frequent_classes: outcome.stats.frequent_classes,
            distinct_segments: outcome.stats.distinct_segments,
            segment_occurrences: outcome.stats.segment_occurrences,
            selected_segment_occurrences: outcome.stats.selected_segment_occurrences,
        }
    }

    /// Build evaluation items from `(item, facts)` pairs and a gold-class map.
    pub fn items_from_gold(
        batch: &[(Term, Vec<(String, String)>)],
        gold: &BTreeMap<Term, ClassId>,
    ) -> Vec<EvaluationItem> {
        batch
            .iter()
            .map(|(item, facts)| (gold.get(item).copied(), facts.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_core::{PropertySelection, TrainingExample};
    use classilink_ontology::OntologyBuilder;

    const PN: &str = "http://provider.e.org/v#partNumber";

    fn setup() -> (Ontology, TrainingSet) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let resistor = b.class("FixedFilmResistor", Some(root));
        let capacitor = b.class("TantalumCapacitor", Some(root));
        let onto = b.build();
        let mut ts = TrainingSet::new();
        // 20 resistors: half with the discriminative "ohm" segment.
        for i in 0..20 {
            let pn = if i % 2 == 0 {
                format!("CRCW-S{i:03}-ohm")
            } else {
                format!("S{i:03}-63V")
            };
            ts.push(TrainingExample::new(
                Term::iri(format!("http://p.e.org/{i}")),
                Term::iri(format!("http://l.e.org/{i}")),
                vec![(PN.to_string(), pn)],
                vec![resistor],
            ));
        }
        // 20 capacitors: half with "t83", all with the ambiguous "63v"? keep
        // "63V" on half so an ambiguous mid-confidence rule appears.
        for i in 20..40 {
            let pn = if i % 2 == 0 {
                format!("T83-S{i:03}")
            } else {
                format!("S{i:03}-63V-uF")
            };
            ts.push(TrainingExample::new(
                Term::iri(format!("http://p.e.org/{i}")),
                Term::iri(format!("http://l.e.org/{i}")),
                vec![(PN.to_string(), pn)],
                vec![capacitor],
            ));
        }
        (onto, ts)
    }

    fn experiment() -> Table1Experiment {
        Table1Experiment::with_learner(
            LearnerConfig::default()
                .with_support_threshold(0.05)
                .with_properties(PropertySelection::single(PN)),
        )
    }

    #[test]
    fn table_has_one_row_per_threshold() {
        let (onto, ts) = setup();
        let (outcome, report) = experiment().run_on_training(&ts, &onto).unwrap();
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.evaluated_items, 40);
        assert_eq!(report.total_rules, outcome.rules.len());
        assert!(report.total_rules > 0);
    }

    #[test]
    fn precision_decreases_and_recall_increases_with_lower_thresholds() {
        let (onto, ts) = setup();
        let (_, report) = experiment().run_on_training(&ts, &onto).unwrap();
        for pair in report.rows.windows(2) {
            assert!(pair[0].precision >= pair[1].precision - 1e-9);
            assert!(pair[0].recall <= pair[1].recall + 1e-9);
            assert!(pair[0].decisions <= pair[1].decisions);
        }
        // Confidence-1 rules are perfectly precise on the training set.
        assert_eq!(report.rows[0].precision, 1.0);
        assert!(report.rows[0].recall > 0.0);
    }

    #[test]
    fn tier_rule_counts_sum_to_at_most_total() {
        let (onto, ts) = setup();
        let (_, report) = experiment().run_on_training(&ts, &onto).unwrap();
        let tier_sum: usize = report.rows.iter().map(|r| r.rules_in_tier).sum();
        assert!(tier_sum <= report.total_rules);
        // Cumulative counts are non-decreasing down the rows.
        for pair in report.rows.windows(2) {
            assert!(pair[0].rules_cumulative <= pair[1].rules_cumulative);
        }
    }

    #[test]
    fn rendered_table_has_paper_columns() {
        let (onto, ts) = setup();
        let (_, report) = experiment().run_on_training(&ts, &onto).unwrap();
        let ascii = report.to_table().to_ascii();
        assert!(ascii.contains("conf."));
        assert!(ascii.contains("#rules"));
        assert!(ascii.contains("lift"));
        assert!(ascii.contains("Table 1"));
        let csv = report.to_table().to_csv();
        assert!(csv.lines().count() >= 5);
    }

    #[test]
    fn evaluation_on_heldout_items() {
        let (onto, ts) = setup();
        let resistor = onto.class("http://e.org/c#FixedFilmResistor").unwrap();
        let capacitor = onto.class("http://e.org/c#TantalumCapacitor").unwrap();
        let items: Vec<EvaluationItem> = vec![
            (
                Some(resistor),
                vec![(PN.to_string(), "CRCW-X999-ohm".to_string())],
            ),
            (
                Some(capacitor),
                vec![(PN.to_string(), "T83-X998".to_string())],
            ),
            (
                Some(capacitor),
                vec![(PN.to_string(), "NOHINT-X997".to_string())],
            ),
        ];
        let (_, report) = experiment().run(&ts, &onto, &items).unwrap();
        let last = report.rows.last().unwrap();
        assert_eq!(report.evaluated_items, 3);
        assert_eq!(last.decisions, 2);
        assert_eq!(last.precision, 1.0);
        assert!((last.recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn items_from_gold_joins_on_term() {
        let gold: BTreeMap<Term, ClassId> = [(Term::iri("http://p.e.org/x"), ClassId(5))]
            .into_iter()
            .collect();
        let batch = vec![
            (
                Term::iri("http://p.e.org/x"),
                vec![(PN.to_string(), "a".to_string())],
            ),
            (Term::iri("http://p.e.org/unknown"), vec![]),
        ];
        let items = Table1Experiment::items_from_gold(&batch, &gold);
        assert_eq!(items[0].0, Some(ClassId(5)));
        assert_eq!(items[1].0, None);
    }
}
