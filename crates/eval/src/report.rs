//! Plain-text and CSV table rendering.
//!
//! The benchmarks and examples regenerate the paper's tables; this module
//! renders them as aligned ASCII tables (for the terminal) and CSV (for
//! further processing), without any dependency beyond the standard library.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (missing cells are rendered empty, extra cells are
    /// kept).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows built from `&str`.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, width) in widths.iter().enumerate().take(columns) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        let separator = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        out.push_str(&separator);
        out.push('\n');
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&separator);
        out.push('\n');
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal, e.g. `96.9%`.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Format a float with the given number of decimals.
pub fn float(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_rendering_is_aligned() {
        let mut t = Table::new(
            "Table 1: Classification rule results",
            &["conf.", "#rules", "prec."],
        );
        t.row_str(&["1", "44", "100%"]);
        t.row_str(&["0.8", "22", "96.9%"]);
        let out = t.to_ascii();
        assert!(out.contains("Table 1"));
        assert!(out.contains("| conf."));
        assert!(out.contains("| 0.8 "));
        // Every data line has the same length.
        let lines: Vec<&str> = out.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("", &["name", "value"]);
        t.row(&["plain".to_string(), "1".to_string()]);
        t.row(&["with, comma".to_string(), "quote \" inside".to_string()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",\"quote \"\" inside\"");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row_str(&["only one"]);
        let out = t.to_ascii();
        assert!(out.contains("only one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.969), "96.9%");
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(float(27.333, 1), "27.3");
        assert_eq!(float(2.0, 0), "2");
    }
}
