//! Comparing the rule-based reduction with the classic blocking baselines
//! (experiment E5 of DESIGN.md).
//!
//! The related-work section of the paper positions the approach against
//! blocking, sorted neighbourhood and bi-gram indexing. This module runs all
//! of them on the same generated scenario and reports, for each, the number
//! of candidate pairs, the reduction ratio, and the pairs completeness
//! (whether the true `same-as` pairs survive the reduction).
//!
//! All strategies run on the columnar [`RecordStore`] — build it once per
//! side with [`stores_and_truth`] and hand the same pair to every blocker.

use classilink_core::{LearnerConfig, RuleClassifier, RuleLearner};
use classilink_datagen::vocab;
use classilink_datagen::GeneratedScenario;
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, BlockingStats, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{RecordStore, ShardedStore};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The result of one blocking strategy on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockingComparisonRow {
    /// Name of the strategy.
    pub method: String,
    /// Blocking quality statistics.
    pub stats: BlockingStats,
}

/// Build the external/local record stores and the gold pair set (as store
/// indices) from a scenario.
pub fn stores_and_truth(
    scenario: &GeneratedScenario,
) -> (RecordStore, RecordStore, HashSet<(usize, usize)>) {
    let external = scenario.external_store();
    let local = scenario.local_store();
    let truth: HashSet<(usize, usize)> = scenario
        .dataset
        .link_pairs()
        .filter_map(|(e, l)| Some((external.index_of(&e)?, local.index_of(&l)?)))
        .collect();
    (external, local, truth)
}

/// The sharded variant of [`stores_and_truth`]: the catalog is split into
/// `shard_count` shards sharing one schema with the external store, and
/// the gold pairs use **global** catalog ids — the same indices
/// [`stores_and_truth`] produces, so blocking statistics computed against
/// either representation agree.
pub fn sharded_stores_and_truth(
    scenario: &GeneratedScenario,
    shard_count: usize,
) -> (RecordStore, ShardedStore, HashSet<(usize, usize)>) {
    let (external, local) = scenario.sharded_stores(shard_count);
    let truth: HashSet<(usize, usize)> = scenario
        .dataset
        .link_pairs()
        .filter_map(|(e, l)| Some((external.index_of(&e)?, local.index_of(&l)?)))
        .collect();
    (external, local, truth)
}

/// The default blocking key for the generated scenarios: provider reference
/// against catalog part number.
pub fn default_key(prefix: usize) -> BlockingKey {
    BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        prefix,
    )
}

/// Run every strategy (cartesian, standard blocking, sorted neighbourhood,
/// bigram indexing and the paper's rule-based reduction) on the scenario.
///
/// The rule-based reduction is reported twice, following the two readings of
/// the paper: *strict* only compares an external item with the predicted
/// classes (items no rule covers are not compared at all — maximal reduction,
/// bounded completeness), *fallback* compares uncovered items with the whole
/// catalog (full completeness, smaller reduction). Rules below
/// `min_confidence` are ignored, mirroring the confidence tiers of Table 1.
pub fn compare_blockers(
    scenario: &GeneratedScenario,
    learner: &LearnerConfig,
    min_confidence: f64,
    window: usize,
    bigram_threshold: f64,
) -> classilink_core::Result<Vec<BlockingComparisonRow>> {
    let (external, local, truth) = stores_and_truth(scenario);
    let outcome =
        RuleLearner::new(learner.clone()).learn(&scenario.training, &scenario.ontology)?;
    let classifier =
        RuleClassifier::from_outcome(&outcome, learner).with_min_confidence(min_confidence);

    let standard = StandardBlocker::new(default_key(4));
    let sorted = SortedNeighborhoodBlocker::new(default_key(0), window);
    let bigram = BigramBlocker::new(default_key(0), bigram_threshold);
    let rule_strict = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology);
    let rule_fallback = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
        .with_fallback(true);

    let blockers: Vec<(&str, Box<dyn Blocker + '_>)> = vec![
        ("cartesian", Box::new(CartesianBlocker)),
        ("standard-blocking", Box::new(standard)),
        ("sorted-neighborhood", Box::new(sorted)),
        ("bigram-indexing", Box::new(bigram)),
        ("classification-rules", Box::new(rule_strict)),
        ("classification-rules+fallback", Box::new(rule_fallback)),
    ];

    let mut rows = Vec::with_capacity(blockers.len());
    for (name, blocker) in blockers {
        let pairs = blocker.candidate_pairs(&external, &local);
        let stats = BlockingStats::evaluate(&pairs, &truth, external.len(), local.len());
        rows.push(BlockingComparisonRow {
            method: name.to_string(),
            stats,
        });
    }
    Ok(rows)
}

/// Render the comparison as an ASCII table.
pub fn render(rows: &[BlockingComparisonRow]) -> crate::report::Table {
    let mut table = crate::report::Table::new(
        "Candidate-pair generation: rules vs blocking baselines",
        &["method", "pairs", "reduction", "completeness", "quality"],
    );
    for row in rows {
        table.row(&[
            row.method.clone(),
            row.stats.candidate_pairs.to_string(),
            crate::report::percent(row.stats.reduction_ratio),
            crate::report::percent(row.stats.pairs_completeness),
            crate::report::percent(row.stats.pairs_quality),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_core::PropertySelection;
    use classilink_datagen::scenario::{generate, ScenarioConfig};

    fn learner() -> LearnerConfig {
        LearnerConfig::default()
            .with_support_threshold(0.01)
            .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER))
    }

    #[test]
    fn all_strategies_are_compared() {
        let scenario = generate(&ScenarioConfig::tiny());
        let rows = compare_blockers(&scenario, &learner(), 0.4, 5, 0.7).unwrap();
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert!(names.contains(&"cartesian"));
        assert!(names.contains(&"classification-rules"));

        // Cartesian has full completeness and zero reduction.
        let cartesian = rows.iter().find(|r| r.method == "cartesian").unwrap();
        assert_eq!(cartesian.stats.reduction_ratio, 0.0);
        assert_eq!(cartesian.stats.pairs_completeness, 1.0);

        // Every non-cartesian method reduces the space.
        for row in rows.iter().filter(|r| r.method != "cartesian") {
            assert!(
                row.stats.reduction_ratio > 0.0,
                "{} did not reduce the space",
                row.method
            );
        }

        // The strict rule-based method reduces the space sharply; the
        // fallback variant keeps completeness high.
        let strict = rows
            .iter()
            .find(|r| r.method == "classification-rules")
            .unwrap();
        assert!(strict.stats.reduction_ratio > 0.5);
        let fallback = rows
            .iter()
            .find(|r| r.method == "classification-rules+fallback")
            .unwrap();
        assert!(fallback.stats.pairs_completeness > 0.8);
        assert!(fallback.stats.pairs_completeness >= strict.stats.pairs_completeness);
    }

    #[test]
    fn truth_set_matches_training_links() {
        let scenario = generate(&ScenarioConfig::tiny());
        let (_, _, truth) = stores_and_truth(&scenario);
        assert_eq!(truth.len(), scenario.dataset.link_count());
    }

    #[test]
    fn sharded_truth_and_stats_match_single_store() {
        use classilink_linking::blocking::Blocker;
        let scenario = generate(&ScenarioConfig::tiny());
        let (external, local, truth) = stores_and_truth(&scenario);
        let (sharded_external, sharded_local, sharded_truth) =
            sharded_stores_and_truth(&scenario, 3);
        // Global ids are stable across the two representations, so the
        // gold sets are literally equal.
        assert_eq!(sharded_truth, truth);
        assert_eq!(sharded_local.shard_count(), 3);
        // And a blocker evaluated against either representation yields
        // identical statistics.
        let blocker = StandardBlocker::new(default_key(4));
        let single_pairs = blocker.candidate_pairs(&external, &local);
        let sharded_pairs = blocker.candidate_pairs_sharded(&sharded_external, &sharded_local);
        let single_stats =
            BlockingStats::evaluate(&single_pairs, &truth, external.len(), local.len());
        let sharded_stats = BlockingStats::evaluate(
            &sharded_pairs,
            &sharded_truth,
            sharded_external.len(),
            sharded_local.len(),
        );
        assert_eq!(single_stats, sharded_stats);
    }

    #[test]
    fn rendered_table_lists_every_method() {
        let scenario = generate(&ScenarioConfig::tiny());
        let rows = compare_blockers(&scenario, &learner(), 0.4, 5, 0.7).unwrap();
        let ascii = render(&rows).to_ascii();
        for row in &rows {
            assert!(ascii.contains(&row.method));
        }
        assert!(ascii.contains("completeness"));
    }
}
