//! The shard-router contract: a sharded, work-stealing pipeline run is
//! **byte-identical** to the single-store serial run, for every blocker,
//! for any shard layout — even shard sizes, uneven sizes, more shards
//! than records (so trailing shards are empty), and a shared schema.
//!
//! The property test sweeps record counts, shard counts and thread
//! counts; the per-blocker tests pin the five concrete strategies on a
//! dataset big enough to exercise the work-stealing path.

use classilink_core::{ClassificationRule, Contingency, RuleClassifier};
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{
    LinkagePipeline, Record, RecordComparator, RecordStore, SchemaInterner, ShardedStore,
    SimilarityMeasure,
};
use classilink_ontology::{ClassId, InstanceStore, Ontology, OntologyBuilder};
use classilink_rdf::Term;
use classilink_segment::SegmenterKind;
use proptest::prelude::*;

const EXT_PN: &str = "http://provider.e.org/v#ref";
const LOC_PN: &str = "http://local.e.org/v#partNumber";

fn ext_records(n: usize) -> Vec<Record> {
    let families = ["CR", "T8", "LM", "GR"];
    (0..n)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://provider.e.org/item/{i}")));
            r.add(EXT_PN, format!("{}{:04}", families[i % 2], i / 2));
            r
        })
        .collect()
}

fn loc_records(n: usize) -> Vec<Record> {
    let families = ["CR", "T8", "LM", "GR"];
    (0..n)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
            r.add(LOC_PN, format!("{}{:04}", families[i % 2], i / 2));
            r
        })
        .collect()
}

fn comparator() -> RecordComparator {
    RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
        .with_thresholds(0.95, 0.4)
}

fn rule_setup(catalog: usize) -> (Ontology, InstanceStore, RuleClassifier) {
    let mut b = OntologyBuilder::new("http://e.org/c#");
    let root = b.class("Component", None);
    let resistor = b.class("Resistor", Some(root));
    let onto = b.build();
    let mut instances = InstanceStore::new();
    for i in (0..catalog).step_by(2) {
        instances.assert_type(&Term::iri(format!("http://local.e.org/prod/{i}")), resistor);
    }
    let rule = |segment: &str, class: ClassId| ClassificationRule {
        property: EXT_PN.to_string(),
        segment: segment.to_string(),
        class,
        class_iri: "http://e.org/c#Resistor".to_string(),
        class_label: "Resistor".to_string(),
        quality: Contingency::new(100, 10, 20, 10).quality(),
    };
    let rules = (0..20)
        .map(|i| rule(&format!("cr{i:04}"), resistor))
        .collect();
    (
        onto,
        instances,
        RuleClassifier::new(rules, SegmenterKind::Separator, true),
    )
}

/// The contract under test: serial single-store run vs sharded runs at
/// several shard layouts and thread counts.
fn assert_sharded_byte_identical(
    blocker: &dyn Blocker,
    external_records: &[Record],
    local_records: &[Record],
    shard_counts: &[usize],
) {
    let cmp = comparator();
    let external = RecordStore::from_records(external_records);
    let local = RecordStore::from_records(local_records);
    let serial = LinkagePipeline::new(blocker, &cmp).run_stores(&external, &local);
    for &shard_count in shard_counts {
        let sharded = ShardedStore::from_records(local_records, shard_count);
        for threads in [1, 4] {
            let result = LinkagePipeline::new(blocker, &cmp)
                .with_threads(threads)
                .run_sharded(&external, &sharded);
            assert_eq!(
                serial,
                result,
                "{}: {shard_count} shards / {threads} threads diverged from serial single-store",
                blocker.name()
            );
        }
    }
}

/// Shard layouts covering the edge cases: one shard, uneven sizes, and
/// more shards than records (guaranteed empty shards).
fn layouts(records: usize) -> Vec<usize> {
    vec![1, 3, 7, records + 2]
}

#[test]
fn cartesian_sharded_identical() {
    let (external, local) = (ext_records(40), loc_records(40));
    assert_sharded_byte_identical(&CartesianBlocker, &external, &local, &layouts(40));
}

#[test]
fn standard_blocking_sharded_identical() {
    let (external, local) = (ext_records(64), loc_records(64));
    let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 2));
    assert_sharded_byte_identical(&blocker, &external, &local, &layouts(64));
}

#[test]
fn sorted_neighborhood_sharded_identical() {
    let (external, local) = (ext_records(64), loc_records(64));
    // A window large enough that it always straddles shard boundaries.
    let blocker = SortedNeighborhoodBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 60);
    assert_sharded_byte_identical(&blocker, &external, &local, &layouts(64));
}

#[test]
fn bigram_sharded_identical() {
    let (external, local) = (ext_records(64), loc_records(64));
    let blocker = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.2);
    assert_sharded_byte_identical(&blocker, &external, &local, &layouts(64));
}

#[test]
fn rule_based_sharded_identical() {
    let (external, local) = (ext_records(64), loc_records(64));
    let (onto, instances, classifier) = rule_setup(64);
    let blocker = RuleBasedBlocker::new(&classifier, &instances, &onto).with_fallback(true);
    assert_sharded_byte_identical(&blocker, &external, &local, &layouts(64));
}

#[test]
fn sharded_run_against_empty_catalog() {
    let external = ext_records(8);
    assert_sharded_byte_identical(&CartesianBlocker, &external, &[], &[1, 4]);
}

/// One compiled comparator (against the shared schema) must serve every
/// shard — the "compile once, reuse across all store pairs" guarantee.
#[test]
fn compiled_comparator_is_reusable_across_shards() {
    let schema = SchemaInterner::new();
    let mut external_builder = RecordStore::builder_with_schema(schema.clone());
    for r in ext_records(10) {
        external_builder.push(&r);
    }
    let external = external_builder.build();
    let local_records = loc_records(10);
    let sharded = ShardedStore::from_records_with_schema(&local_records, 3, schema);
    let cmp = comparator();
    let shared = cmp.compile_schemas(external.interner(), sharded.schema());
    for (s, shard) in sharded.shards().iter().enumerate() {
        // Per-shard compilation must agree with the shared compilation
        // for every pair — same ids, same schema.
        let per_shard = cmp.compile(&external, shard);
        for e in 0..external.len() {
            for l in 0..shard.len() {
                assert_eq!(
                    shared.compare(&external, e, shard, l),
                    per_shard.compare(&external, e, shard, l),
                    "shard {s}, pair ({e}, {l})"
                );
            }
        }
    }
}

/// The kernel-swap guard: on a *generated* scenario (realistic part
/// numbers, perturbations, multi-attribute records) and a multi-measure
/// comparator covering the string kernels (Levenshtein, Jaro-Winkler)
/// and the token-index kernels (Dice bigrams, Jaccard tokens,
/// Monge-Elkan), the pipeline's results — **scores included, not just
/// decisions** — are
///
/// 1. identical between `run_stores` and `run_sharded` at several shard
///    and thread counts, and
/// 2. bit-identical to a reference scorer built from the naive
///    (pre-kernel-swap) measure implementations in `similarity::naive`.
#[test]
fn generated_scenario_scores_survive_the_kernel_swap() {
    use classilink_datagen::scenario::{generate, ScenarioConfig};
    use classilink_datagen::vocab;
    use classilink_linking::similarity::naive;
    use classilink_linking::MatchDecision;

    let scenario = generate(&ScenarioConfig::tiny());
    let external = scenario.external_store();
    let local = scenario.local_store();
    let rule = |left: &str, right: &str, measure: SimilarityMeasure, weight: f64| {
        classilink_linking::AttributeRule {
            left_property: left.to_string(),
            right_property: right.to_string(),
            measure,
            weight,
        }
    };
    let cmp = RecordComparator::new(vec![
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::JaroWinkler,
            3.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::Levenshtein,
            2.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::DiceBigrams,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_MANUFACTURER,
            SimilarityMeasure::JaccardTokens,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_LABEL,
            SimilarityMeasure::MongeElkan,
            0.5,
        ),
    ])
    .with_thresholds(0.92, 0.6);

    let blocker = StandardBlocker::new(BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        2,
    ));
    let serial = LinkagePipeline::new(&blocker, &cmp).run_stores(&external, &local);
    assert!(
        !serial.matches.is_empty(),
        "guard scenario produced no links — the assertions below would be vacuous"
    );

    // (1) Sharded / threaded runs reproduce the serial scores byte for byte.
    for shard_count in [1, 3, 8] {
        for threads in [1, 4] {
            let (sharded_external, sharded_local) = scenario.sharded_stores(shard_count);
            let sharded = LinkagePipeline::new(&blocker, &cmp)
                .with_threads(threads)
                .run_sharded(&sharded_external, &sharded_local);
            assert_eq!(
                serial, sharded,
                "{shard_count} shards / {threads} threads diverged (scores included)"
            );
        }
    }

    // (2) Every emitted link's score matches a from-scratch naive
    // reference evaluation of the same comparator configuration.
    let naive_score = |e: usize, l: usize| -> (f64, MatchDecision) {
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for r in &cmp.rules {
            let (Some(lp), Some(rp)) = (
                external.property(&r.left_property),
                local.property(&r.right_property),
            ) else {
                continue;
            };
            let left_values: Vec<&str> = external.values(e, lp).collect();
            let right_values: Vec<&str> = local.values(l, rp).collect();
            if left_values.is_empty() || right_values.is_empty() {
                continue;
            }
            let mut best = 0.0f64;
            for lv in &left_values {
                for rv in &right_values {
                    best = best.max(naive::compare(r.measure, lv, rv));
                }
            }
            weighted_sum += best * r.weight;
            weight_total += r.weight;
        }
        let score = if weight_total > 0.0 {
            weighted_sum / weight_total
        } else if let Some(fallback) = cmp.fallback {
            naive::compare(fallback, external.full_text(e), local.full_text(l))
        } else {
            0.0
        };
        let decision = if score >= cmp.match_threshold {
            MatchDecision::Match
        } else if score < cmp.non_match_threshold {
            MatchDecision::NonMatch
        } else {
            MatchDecision::Possible
        };
        (score, decision)
    };
    let compiled = cmp.compile(&external, &local);
    for (link, expected_decision) in serial
        .matches
        .iter()
        .map(|l| (l, MatchDecision::Match))
        .chain(serial.possible.iter().map(|l| (l, MatchDecision::Possible)))
    {
        let e = external.index_of(&link.external).expect("known external");
        let l = local.index_of(&link.local).expect("known local");
        let (score, decision) = naive_score(e, l);
        assert_eq!(
            score.to_bits(),
            link.score.to_bits(),
            "naive reference diverged for pair ({e}, {l})"
        );
        assert_eq!(decision, expected_decision);
        // And the detail-carrying compare agrees with both.
        let full = compiled.compare(&external, e, &local, l);
        assert_eq!(full.score.to_bits(), link.score.to_bits());
    }
}

proptest! {
    /// Random record counts, shard counts and thread counts: the sharded
    /// work-stealing pipeline always reproduces the serial single-store
    /// result byte for byte, for a per-record blocker and for the
    /// window-based sorted-neighbourhood blocker.
    #[test]
    fn prop_sharded_pipeline_byte_identical(
        external_count in 0usize..24,
        local_count in 0usize..24,
        shard_count in 1usize..9,
        window in 2usize..12,
        threads in 1usize..5,
    ) {
        let external_records = ext_records(external_count);
        let local_records = loc_records(local_count);
        let cmp = comparator();
        let external = RecordStore::from_records(&external_records);
        let local = RecordStore::from_records(&local_records);
        let sharded = ShardedStore::from_records(&local_records, shard_count);

        let standard = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 2));
        let sorted = SortedNeighborhoodBlocker::new(
            BlockingKey::per_side(EXT_PN, LOC_PN, 0),
            window,
        );
        let blockers: [&dyn Blocker; 3] = [&CartesianBlocker, &standard, &sorted];
        for blocker in blockers {
            let serial = LinkagePipeline::new(blocker, &cmp).run_stores(&external, &local);
            let result = LinkagePipeline::new(blocker, &cmp)
                .with_threads(threads)
                .run_sharded(&external, &sharded);
            prop_assert_eq!(&serial, &result, "{} diverged", blocker.name());
        }
    }
}
