//! The serving-layer equivalence guard: for every built-in blocker, a
//! [`Linker`] probe of one record returns **exactly** that record's
//! slice of the batch pipeline's `run_sharded` output — same link sets,
//! same decisions, scores compared bit for bit (`f64::to_bits`) — across
//! {1, 3, 8} shard catalogs, including the learned rule-based
//! classifier; plus a property test over random catalogs and probes.
//!
//! The probe path shares the batch scoring code by construction, so
//! this test is the guard that the *surrounding* serving machinery —
//! the in-place probe-store refill, the one-record external streaming,
//! the per-shard queue assembly, the epoch plumbing — introduces no
//! divergence.

use classilink_core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink_datagen::scenario::{generate, GeneratedScenario, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::pipeline::{Link, LinkageResult};
use classilink_linking::record::Record;
use classilink_linking::{
    LinkagePipeline, Linker, ProbeScratch, RecordComparator, RecordStore, ShardedStore,
    SimilarityMeasure,
};
use classilink_rdf::Term;

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];

fn key(prefix: usize) -> BlockingKey {
    BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        prefix,
    )
}

fn comparator() -> RecordComparator {
    let rule = |left: &str, right: &str, measure, weight| classilink_linking::AttributeRule {
        left_property: left.to_string(),
        right_property: right.to_string(),
        measure,
        weight,
    };
    RecordComparator::new(vec![
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::JaroWinkler,
            3.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::DiceBigrams,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_MANUFACTURER,
            SimilarityMeasure::JaccardTokens,
            1.0,
        ),
    ])
    .with_thresholds(0.92, 0.6)
}

fn classifier(scenario: &GeneratedScenario) -> RuleClassifier {
    let learner = LearnerConfig::default()
        .with_support_threshold(0.01)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));
    let outcome = RuleLearner::new(learner.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("rule learning on the tiny scenario");
    RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(0.4)
}

/// The links of `batch` whose external term is `id`, in output order
/// (the batch result is sorted by (external, local) index, so a slice
/// of one external is sorted by global local id — the probe's order).
fn slice_of<'r>(links: &'r [Link], id: &Term) -> Vec<&'r Link> {
    links.iter().filter(|link| &link.external == id).collect()
}

fn assert_links_bit_identical(probe: &[Link], batch: &[&Link], context: &str) {
    assert_eq!(probe.len(), batch.len(), "{context}: link count");
    for (p, b) in probe.iter().zip(batch) {
        assert_eq!(p.external, b.external, "{context}: external term");
        assert_eq!(p.local, b.local, "{context}: local term");
        assert_eq!(
            p.score.to_bits(),
            b.score.to_bits(),
            "{context}: score bits ({} vs {})",
            p.score,
            b.score
        );
    }
}

/// The guard: every record's probe equals its batch slice, and the
/// probes' comparison counts sum to the batch comparison count.
fn assert_probe_equals_batch(
    blocker: &(dyn Blocker + Sync),
    cmp: &RecordComparator,
    external: &RecordStore,
    catalog: &ShardedStore,
    context: &str,
) {
    let batch: LinkageResult = LinkagePipeline::new(blocker, cmp).run_sharded(external, catalog);
    let linker = Linker::new(blocker, cmp, catalog.clone());
    let mut scratch = ProbeScratch::new();
    let mut probed_comparisons = 0u64;
    let mut probed_links = 0usize;
    for e in 0..external.len() {
        let record = external.record(e);
        let hits = linker.probe_with(&record, &mut scratch);
        probed_comparisons += hits.comparisons;
        probed_links += hits.matches.len();
        assert_eq!(hits.epoch, 1, "{context}: initial epoch");
        assert_links_bit_identical(
            &hits.matches,
            &slice_of(&batch.matches, &record.id),
            &format!("{context}, record {e}, matches"),
        );
        assert_links_bit_identical(
            &hits.possible,
            &slice_of(&batch.possible, &record.id),
            &format!("{context}, record {e}, possible"),
        );
        // The convenience path reports the same matches.
        let convenience = linker.probe(&record);
        assert_eq!(convenience, hits.matches, "{context}: probe vs probe_with");
    }
    assert_eq!(
        probed_comparisons, batch.comparisons,
        "{context}: comparison counts"
    );
    assert_eq!(probed_links, batch.matches.len(), "{context}: total links");
    // Swapping in the same catalog bumps the epoch without changing any
    // answer (warm scratch reused across the swap).
    assert_eq!(linker.swap(catalog.clone()), 2, "{context}: swap sequence");
    for e in 0..external.len() {
        let record = external.record(e);
        let hits = linker.probe_with(&record, &mut scratch);
        assert_eq!(hits.epoch, 2, "{context}: post-swap epoch");
        assert_links_bit_identical(
            &hits.matches,
            &slice_of(&batch.matches, &record.id),
            &format!("{context}, record {e}, post-swap matches"),
        );
    }
}

fn assert_blocker_equivalence(blocker: &(dyn Blocker + Sync)) {
    let scenario = generate(&ScenarioConfig::tiny());
    let cmp = comparator();
    let mut asserted_links = false;
    for shard_count in SHARD_COUNTS {
        let (external, catalog) = scenario.sharded_stores(shard_count);
        let batch = LinkagePipeline::new(blocker, &cmp).run_sharded(&external, &catalog);
        asserted_links |= !batch.matches.is_empty();
        assert_probe_equals_batch(
            blocker,
            &cmp,
            &external,
            &catalog,
            &format!("{} / {shard_count} shards", blocker.name()),
        );
    }
    assert!(
        asserted_links,
        "{}: batch produced no links — the guard would be vacuous",
        blocker.name()
    );
}

#[test]
fn cartesian_probe_equals_batch() {
    assert_blocker_equivalence(&CartesianBlocker);
}

#[test]
fn standard_probe_equals_batch() {
    assert_blocker_equivalence(&StandardBlocker::new(key(4)));
}

#[test]
fn sorted_neighborhood_probe_equals_batch() {
    assert_blocker_equivalence(&SortedNeighborhoodBlocker::new(key(0), 7));
}

#[test]
fn bigram_probe_equals_batch() {
    assert_blocker_equivalence(&BigramBlocker::new(key(0), 0.5));
}

#[test]
fn rule_based_probe_equals_batch() {
    let scenario = generate(&ScenarioConfig::tiny());
    let classifier = classifier(&scenario);
    for fallback in [false, true] {
        let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
            .with_fallback(fallback);
        assert_blocker_equivalence(&blocker);
    }
}

#[test]
fn probing_an_empty_catalog_finds_nothing() {
    let cmp = comparator();
    let blocker = StandardBlocker::new(key(4));
    let linker = Linker::new(&blocker, &cmp, ShardedStore::from_records(&[], 3));
    let mut scratch = ProbeScratch::new();
    let mut record = Record::new(Term::iri("http://probe.example.org/item/0"));
    record.add(vocab::PROVIDER_PART_NUMBER, "CRCW0805-10K");
    let hits = linker.probe_with(&record, &mut scratch);
    assert!(hits.matches.is_empty());
    assert!(hits.possible.is_empty());
    assert_eq!(hits.comparisons, 0);
}

#[test]
fn probe_record_without_the_key_property_matches_batch() {
    // A probe record that lacks the blocking key (and every rule's left
    // property): the batch pipeline skips it, so must the probe.
    let cmp = comparator();
    let blocker = StandardBlocker::new(key(4));
    let locals: Vec<Record> = (0..6)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://local.example.org/prod/{i}")));
            r.add(vocab::LOCAL_PART_NUMBER, format!("PN-{i:04}"));
            r
        })
        .collect();
    let catalog = ShardedStore::from_records(&locals, 2);
    let linker = Linker::new(&blocker, &cmp, catalog.clone());
    let mut bare = Record::new(Term::iri("http://probe.example.org/item/bare"));
    bare.add("http://probe.example.org/vocab#unrelated", "no key here");
    let mut scratch = ProbeScratch::new();
    let hits = linker.probe_with(&bare, &mut scratch);
    assert!(hits.matches.is_empty());
    assert_eq!(hits.comparisons, 0);
    let batch = LinkagePipeline::new(&blocker, &cmp)
        .run_sharded(&RecordStore::from_records(&[bare]), &catalog);
    assert_eq!(batch.comparisons, 0);
}

mod properties {
    //! Property test: on random catalogs and probe sets, a probe equals
    //! its batch slice for the standard and sorted-neighbourhood
    //! blockers (the two whose candidate geometry depends most on the
    //! catalog's value distribution).

    use super::*;
    use proptest::prelude::*;

    fn local_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://local.example.org/prod/{i}")));
        if !pn.is_empty() {
            r.add(vocab::LOCAL_PART_NUMBER, pn);
        }
        r
    }

    fn external_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://provider.example.org/item/{i}")));
        if !pn.is_empty() {
            r.add(vocab::PROVIDER_PART_NUMBER, pn);
        }
        r
    }

    proptest! {
        #[test]
        fn prop_probe_equals_batch_slice(
            locals in proptest::collection::vec("[a-d]{0,4}", 1..20),
            externals in proptest::collection::vec("[a-d]{0,4}", 1..6),
            shard_count in 1usize..4,
        ) {
            let local_records: Vec<Record> = locals
                .iter()
                .enumerate()
                .map(|(i, pn)| local_record(i, pn))
                .collect();
            let external_records: Vec<Record> = externals
                .iter()
                .enumerate()
                .map(|(i, pn)| external_record(i, pn))
                .collect();
            let external = RecordStore::from_records(&external_records);
            let catalog = ShardedStore::from_records(&local_records, shard_count);
            let cmp = RecordComparator::single(
                vocab::PROVIDER_PART_NUMBER,
                vocab::LOCAL_PART_NUMBER,
                SimilarityMeasure::JaroWinkler,
            )
            .with_thresholds(0.9, 0.3);
            let standard = StandardBlocker::new(key(2));
            let neighborhood = SortedNeighborhoodBlocker::new(key(0), 3);
            let blockers: [&(dyn Blocker + Sync); 2] = [&standard, &neighborhood];
            for blocker in blockers {
                let batch =
                    LinkagePipeline::new(blocker, &cmp).run_sharded(&external, &catalog);
                let linker = Linker::new(blocker, &cmp, catalog.clone());
                let mut scratch = ProbeScratch::new();
                for (e, record) in external_records.iter().enumerate() {
                    let hits = linker.probe_with(record, &mut scratch);
                    let expected = slice_of(&batch.matches, &record.id);
                    prop_assert_eq!(
                        hits.matches.len(),
                        expected.len(),
                        "{} record {}",
                        blocker.name(),
                        e
                    );
                    for (p, b) in hits.matches.iter().zip(&expected) {
                        prop_assert_eq!(&p.local, &b.local);
                        prop_assert_eq!(p.score.to_bits(), b.score.to_bits());
                    }
                    let possible = slice_of(&batch.possible, &record.id);
                    prop_assert_eq!(hits.possible.len(), possible.len());
                    for (p, b) in hits.possible.iter().zip(&possible) {
                        prop_assert_eq!(&p.local, &b.local);
                        prop_assert_eq!(p.score.to_bits(), b.score.to_bits());
                    }
                }
            }
        }
    }
}
