//! Proptest equivalence suite for the **filtered bigram probe**: on
//! arbitrary generated key sets — including empty keys (the padded
//! `{##}` singleton set) and a heavily skewed gram distribution where
//! ~90% of characters come from a three-letter alphabet, so almost
//! every record shares a handful of ubiquitous grams — the
//! prefix/length/positional-filtered overlap join emits **exactly** the
//! candidate set of an independent string-based exhaustive reference,
//! per `(external, shard)` pair, across thresholds spanning the whole
//! `[0, 1]` range and both the single-store and sharded probe paths.
//!
//! The reference below intersects per-record `HashSet<String>` padded
//! bigram sets and never touches `stream_candidates`, `CandidateRuns`,
//! the `KeyIndex` or any posting layout, so a filter bug cannot cancel
//! out of both sides.

use classilink_linking::blocking::{BigramBlocker, Blocker, BlockingKey};
use classilink_linking::record::Record;
use classilink_linking::{CandidateRuns, RecordStore, ShardedStore};
use classilink_rdf::Term;
use classilink_segment::{CharNGramSegmenter, Segmenter};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

const EXT_PN: &str = "http://provider.e.org/v#ref";
const LOC_PN: &str = "http://local.e.org/v#partNumber";

/// The swept sharing thresholds: the degenerate ends (`0.0` accepts any
/// single shared gram, `1.0` demands the smaller set entirely) plus
/// operating-range interior points.
const THRESHOLDS: [f64; 5] = [0.0, 0.2, 0.6, 0.9, 1.0];

/// Decode one key from a seed with the gram distribution the filters
/// care about: ~90% of characters from a three-letter alphabet (the
/// resulting bigrams are shared by almost every record — exactly the
/// ubiquitous grams the length filter must cut without scanning) and
/// the rest from a wider alphabet (the rare, discriminating grams);
/// about one key in thirteen is empty.
fn key_of(seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let len = (next() % 13) as usize;
    (0..len)
        .map(|_| {
            let roll = next();
            if roll % 10 < 9 {
                b"abc"[(roll >> 8) as usize % 3] as char
            } else {
                (b'0' + ((roll >> 8) % 36) as u8).min(b'z') as char
            }
        })
        .collect()
}

fn store_of(property: &str, prefix: &str, seeds: &[u64]) -> Vec<Record> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let mut record = Record::new(Term::iri(format!("{prefix}/{i}")));
            record.add(property, key_of(seed));
            record
        })
        .collect()
}

/// The exhaustive string-based reference: padded-bigram `HashSet`s per
/// record, one full intersection per (external, local) pair, the
/// paper's sharing rule verbatim.
fn reference_pairs(
    key: &BlockingKey,
    threshold: f64,
    external: &RecordStore,
    local: &RecordStore,
) -> Vec<(usize, usize)> {
    let segmenter = CharNGramSegmenter::padded_bigrams();
    let external_side = key.external_side(external);
    let local_side = key.local_side(local);
    let grams = |k: &str| -> HashSet<String> { segmenter.split_distinct(k).into_iter().collect() };
    let local_grams: Vec<HashSet<String>> = (0..local.len())
        .map(|l| grams(&local_side.key(local, l)))
        .collect();
    let mut pairs = Vec::new();
    for e in 0..external.len() {
        let external_grams = grams(&external_side.key(external, e));
        for (l, lg) in local_grams.iter().enumerate() {
            let shared = external_grams.intersection(lg).count();
            let smaller = external_grams.len().min(lg.len()).max(1);
            let required = ((threshold * smaller as f64).ceil() as usize).max(1);
            if shared >= required {
                pairs.push((e, l));
            }
        }
    }
    pairs
}

proptest! {
    /// For every threshold and shard count, the streamed per-shard
    /// candidate runs decode to exactly the reference pair set of that
    /// shard — the filters are candidate-set-preserving, pair for pair.
    #[test]
    fn filtered_probe_matches_exhaustive_reference(
        external_seeds in vec(0u64..u64::MAX, 1..24),
        local_seeds in vec(0u64..u64::MAX, 1..32),
    ) {
        let key = BlockingKey::per_side(EXT_PN, LOC_PN, 0);
        let external = RecordStore::from_records(&store_of(EXT_PN, "http://provider.e.org/item", &external_seeds));
        let local_records = store_of(LOC_PN, "http://local.e.org/prod", &local_seeds);
        for &threshold in &THRESHOLDS {
            let blocker = BigramBlocker::new(key.clone(), threshold);
            for shards in [1usize, 3] {
                let sharded = ShardedStore::from_records(&local_records, shards);
                let mut runs = CandidateRuns::new();
                blocker.stream_candidates(&external, (&sharded).into(), &mut runs);
                for s in 0..shards {
                    let mut streamed = runs.take_shard(s);
                    streamed.sort_unstable();
                    let expected = reference_pairs(&key, threshold, &external, sharded.shard(s));
                    prop_assert_eq!(
                        &streamed,
                        &expected,
                        "threshold {} shard {}/{} diverged",
                        threshold,
                        s,
                        shards
                    );
                }
            }
        }
    }
}
