//! Fault-injection chaos suite for the persistence layer, compiled only
//! with `--features failpoints` (see `shims/fail`).
//!
//! Each test arms one of the persistence failpoint sites —
//! `persist::serialize_shard` (fault while flattening a shard),
//! `persist::write_shard` (I/O fault on one data file),
//! `persist::commit_manifest` (crash at the commit point itself),
//! `persist::load_shard` (corrupt-on-read during restore) — and asserts
//! the crash-safety contract around it:
//!
//! 1. **The commit point holds**: any fault before the manifest rename
//!    leaves the previous generation the directory's restart point, and
//!    a subsequent [`CatalogSnapshot::open`] restores it bit-identically
//!    (store equality is structural over every column byte).
//! 2. **No debris**: files a failed spill left behind (data files, the
//!    temp manifest) are swept by the next open.
//! 3. **The loader never panics and never serves a half-loaded
//!    catalog**: injected load faults discard the generation as a whole
//!    and fall back, exactly like real corruption; when every generation
//!    is poisoned, open fails with a structured error.
#![cfg(feature = "failpoints")]

use classilink_linking::blocking::{BlockingKey, StandardBlocker};
use classilink_linking::record::Record;
use classilink_linking::{
    AttributeRule, CatalogSnapshot, LinkError, Linker, PersistError, ProbeScratch,
    RecordComparator, ShardedStore, SimilarityMeasure,
};
use classilink_rdf::Term;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

const EXT_PN: &str = "http://provider.example.org/vocab#partNumber";
const LOC_PN: &str = "http://catalog.example.org/vocab#partNumber";

/// The failpoint registry is process-global: every test serialises on
/// this lock so one test's armed sites never leak into another.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Silence the default panic hook for *injected* panics, so a green
/// chaos run doesn't spray backtraces; real panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.contains("failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Arm `site` with `actions` for the guard's lifetime; disarm on drop
/// (even when the test itself panics on an assertion).
struct Armed(&'static str);

impl Armed {
    fn new(site: &'static str, actions: &str) -> Self {
        fail::cfg(site, actions).unwrap_or_else(|e| panic!("arming {site}: {e}"));
        Armed(site)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fail::remove(self.0);
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "classilink_persist_fault_{}_{}_{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn local_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://catalog.example.org/prod/{i}")));
    record.add(LOC_PN, format!("PN-{:02}X", i % 8));
    record
}

/// A 3-shard base catalog and the same catalog grown by two appended
/// shards — snapshotting both gives the two-generation fixture.
fn base_and_appended() -> (ShardedStore, ShardedStore) {
    let records: Vec<Record> = (0..48).map(local_record).collect();
    let base = ShardedStore::from_records(&records, 3);
    let mut delta = base.delta_builder();
    for (i, record) in (48..60).map(local_record).enumerate() {
        if i % 6 == 0 {
            delta.begin_shard();
        }
        delta.push(&record);
    }
    (base.clone(), base.append_shards(delta))
}

/// After a contained spill fault, the directory must still restore the
/// base catalog cleanly (and the re-open after the sweep is pristine).
fn assert_restart_point_is_base(dir: &PathBuf, base: &ShardedStore, context: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::open(dir)))
        .unwrap_or_else(|_| panic!("{context}: the loader panicked"));
    let (loaded, report) = outcome.unwrap_or_else(|e| panic!("{context}: restart point lost: {e}"));
    assert_eq!(&loaded, base, "{context}: wrong catalog restored");
    assert_eq!(report.generation, 1, "{context}");
}

#[test]
fn injected_write_fault_leaves_the_previous_generation_intact() {
    let _guard = serial();
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("write_shard");
    CatalogSnapshot::write(&dir, &base).expect("snapshot base");

    // Call 1 is the schema file, calls 2–4 the (reused) base shards,
    // call 5 the first appended shard, call 6 the second: failing call 6
    // leaves call 5's freshly-spilled shard file orphaned on disk.
    let armed = Armed::new("persist::write_shard", "5*off->1*return(disk full)->off");
    let error = CatalogSnapshot::write(&dir, &appended).expect_err("injected write fault");
    match &error {
        PersistError::Io { op, source, .. } => {
            assert!(op.contains("injected"), "{op}");
            assert!(source.to_string().contains("disk full"), "{source}");
        }
        other => panic!("expected an injected Io error, got {other:?}"),
    }
    drop(armed);

    // No second manifest was committed; the orphaned shard is swept.
    assert!(!dir.join("MANIFEST-00000002").exists());
    let (_, report) = CatalogSnapshot::open(&dir).expect("restart");
    assert!(
        report.swept.iter().any(|name| name.ends_with(".clshard")),
        "the failed spill's orphaned shard was not swept: {:?}",
        report.swept
    );
    assert_restart_point_is_base(&dir, &base, "write_shard return");

    // The fault was transient: the same snapshot now commits and the
    // appended catalog restores bit-identically.
    let receipt = CatalogSnapshot::write(&dir, &appended).expect("clean retry");
    assert_eq!(receipt.generation, 2);
    let (loaded, report) = CatalogSnapshot::open(&dir).expect("open retry");
    assert_eq!(loaded, appended);
    assert_eq!(report.generation, 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serialize_panic_mid_spill_is_survivable() {
    let _guard = serial();
    quiet_injected_panics();
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("serialize_shard");
    CatalogSnapshot::write(&dir, &base).expect("snapshot base");

    // Panic while flattening the 4th shard (the first appended one).
    let armed = Armed::new(
        "persist::serialize_shard",
        "3*off->1*panic(flatten oom)->off",
    );
    let panicked = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::write(&dir, &appended)));
    assert!(panicked.is_err(), "the armed serialize site did not fire");
    drop(armed);

    assert!(!dir.join("MANIFEST-00000002").exists());
    assert_restart_point_is_base(&dir, &base, "serialize_shard panic");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fault_at_the_commit_point_never_commits_and_sweeps_the_temp_manifest() {
    let _guard = serial();
    quiet_injected_panics();
    let (base, appended) = base_and_appended();
    for (context, actions, expect_panic) in [
        ("return", "1*return(power cut)->off", false),
        ("panic", "1*panic(power cut)->off", true),
    ] {
        let dir = fresh_dir("commit_manifest");
        CatalogSnapshot::write(&dir, &base).expect("snapshot base");

        let armed = Armed::new("persist::commit_manifest", actions);
        let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::write(&dir, &appended)));
        drop(armed);
        match (expect_panic, outcome) {
            (true, Err(_)) => {}
            (false, Ok(Err(PersistError::Io { op, .. }))) => {
                assert!(op.contains("injected"), "{context}: {op}")
            }
            (_, other) => panic!("{context}: unexpected outcome {:?}", other.map(|r| r.err())),
        }

        // The temp manifest exists (the crash window), the real one does
        // not — the snapshot did NOT commit.
        assert!(dir.join("MANIFEST-00000002.tmp").exists(), "{context}");
        assert!(!dir.join("MANIFEST-00000002").exists(), "{context}");

        let (_, report) = CatalogSnapshot::open(&dir).expect("restart");
        assert!(
            report
                .swept
                .iter()
                .any(|name| name == "MANIFEST-00000002.tmp"),
            "{context}: temp manifest not swept: {:?}",
            report.swept
        );
        assert_restart_point_is_base(&dir, &base, context);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn injected_load_fault_discards_the_generation_and_falls_back() {
    let _guard = serial();
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("load_shard");
    CatalogSnapshot::write(&dir, &base).expect("snapshot base");
    CatalogSnapshot::write(&dir, &appended).expect("snapshot appended");

    // The first decode (generation 2's first shard) reports corruption;
    // every later decode — generation 1's shards — passes.
    let armed = Armed::new("persist::load_shard", "1*return(latent media error)->off");
    let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::open(&dir)))
        .expect("the loader never panics");
    let (loaded, report) = outcome.expect("fallback to generation 1");
    drop(armed);
    assert_eq!(loaded, base, "half-loaded or wrong catalog served");
    assert_eq!(report.generation, 1);
    assert!(report.recovered_from_fallback);
    let (discarded, reason) = &report.discarded[0];
    assert_eq!(discarded, "MANIFEST-00000002");
    assert!(
        reason.contains("persist::load_shard") && reason.contains("latent media error"),
        "{reason}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn load_faults_on_every_generation_fail_structurally_not_with_a_panic() {
    let _guard = serial();
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("load_all");
    CatalogSnapshot::write(&dir, &base).expect("snapshot base");
    CatalogSnapshot::write(&dir, &appended).expect("snapshot appended");

    let armed = Armed::new("persist::load_shard", "return(total media failure)");
    let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::open(&dir)))
        .expect("the loader never panics");
    drop(armed);
    match outcome {
        Err(PersistError::NoUsableGeneration { detail, .. }) => {
            assert!(detail.contains("MANIFEST-00000002"), "{detail}");
            assert!(detail.contains("MANIFEST-00000001"), "{detail}");
        }
        other => panic!("expected NoUsableGeneration, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_serving_linker_survives_a_failed_snapshot() {
    let _guard = serial();
    let catalog = ShardedStore::from_records(&(0..48).map(local_record).collect::<Vec<_>>(), 3);
    let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 3));
    let cmp = RecordComparator::new(vec![AttributeRule {
        left_property: EXT_PN.to_string(),
        right_property: LOC_PN.to_string(),
        measure: SimilarityMeasure::JaroWinkler,
        weight: 1.0,
    }])
    .with_thresholds(0.95, 0.7);
    let linker = Linker::new(&blocker, &cmp, catalog);
    let mut probe = Record::new(Term::iri("http://provider.example.org/item/7"));
    probe.add(EXT_PN, "PN-07X");

    let mut scratch = ProbeScratch::new();
    let before: Vec<u64> = linker
        .probe_with(&probe, &mut scratch)
        .matches
        .iter()
        .map(|link| link.score.to_bits())
        .collect();
    assert!(
        !before.is_empty(),
        "the probe must link or the guard is vacuous"
    );

    let dir = fresh_dir("linker_snapshot");
    let armed = Armed::new("persist::commit_manifest", "1*return(power cut)->off");
    let error = linker.snapshot(&dir).expect_err("injected commit fault");
    drop(armed);
    match &error {
        LinkError::SnapshotFailed { source } => {
            assert!(source.to_string().contains("power cut"), "{source}");
        }
        other => panic!("expected SnapshotFailed, got {other:?}"),
    }
    assert!(
        error.to_string().contains("restart point"),
        "the error must state the crash-safety contract: {error}"
    );
    use std::error::Error;
    assert!(
        error.source().is_some(),
        "SnapshotFailed chains its PersistError"
    );

    // Serving was never interrupted, and the failed spill left no
    // committed manifest behind.
    let after: Vec<u64> = linker
        .probe_with(&probe, &mut scratch)
        .matches
        .iter()
        .map(|link| link.score.to_bits())
        .collect();
    assert_eq!(before, after, "a failed snapshot perturbed serving");
    assert!(matches!(
        CatalogSnapshot::open(&dir),
        Err(PersistError::NoSnapshot { .. })
    ));

    // Retry cleanly and restore a linker whose probes are bit-identical.
    linker.snapshot(&dir).expect("clean retry");
    let (restored, report) = Linker::open(&dir, &blocker, &cmp).expect("open");
    assert_eq!(report.generation, 1);
    let mut cold = ProbeScratch::new();
    let restored_bits: Vec<u64> = restored
        .probe_with(&probe, &mut cold)
        .matches
        .iter()
        .map(|link| link.score.to_bits())
        .collect();
    assert_eq!(before, restored_bits);
    let _ = fs::remove_dir_all(&dir);
}
