//! Integration coverage of the id-based blocking/comparison engine:
//!
//! * serial vs parallel pipeline agreement across **every** blocker
//!   implementation, on inputs large enough to trigger the parallel path,
//! * the empty-store / empty-property edge-case suite.

use classilink_core::{ClassificationRule, Contingency, RuleClassifier};
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, DisjointnessFilter, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::{
    LinkagePipeline, Record, RecordComparator, RecordStore, SimilarityMeasure,
};
use classilink_ontology::{ClassId, InstanceStore, Ontology, OntologyBuilder};
use classilink_rdf::Term;
use classilink_segment::SegmenterKind;

const EXT_PN: &str = "http://provider.e.org/v#ref";
const LOC_PN: &str = "http://local.e.org/v#partNumber";

/// 64 × 64 records sharing a 2-char prefix per quarter, so that every
/// blocking strategy below emits well over the pipeline's 1024-candidate
/// parallel threshold.
fn large_stores() -> (RecordStore, RecordStore) {
    let families = ["CR", "T8", "LM", "GR"];
    let make = |iri_prefix: &str, property: &str| -> RecordStore {
        let records: Vec<Record> = (0..64)
            .map(|i| {
                let mut r = Record::new(Term::iri(format!("{iri_prefix}/{i}")));
                r.add(property, format!("{}{:04}", families[i % 2], i / 2));
                r
            })
            .collect();
        RecordStore::from_records(&records)
    };
    (
        make("http://provider.e.org/item", EXT_PN),
        make("http://local.e.org/prod", LOC_PN),
    )
}

fn comparator() -> RecordComparator {
    RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
        .with_thresholds(0.95, 0.4)
}

fn rule_setup() -> (Ontology, InstanceStore, RuleClassifier) {
    let mut b = OntologyBuilder::new("http://e.org/c#");
    let root = b.class("Component", None);
    let resistor = b.class("Resistor", Some(root));
    let onto = b.build();
    let mut instances = InstanceStore::new();
    // Half the catalog is typed; the classifier maps the "cr" family there.
    for i in 0..64 {
        if i % 2 == 0 {
            instances.assert_type(&Term::iri(format!("http://local.e.org/prod/{i}")), resistor);
        }
    }
    let rule = |segment: &str, class: ClassId| ClassificationRule {
        property: EXT_PN.to_string(),
        segment: segment.to_string(),
        class,
        class_iri: "http://e.org/c#Resistor".to_string(),
        class_label: "Resistor".to_string(),
        quality: Contingency::new(100, 10, 20, 10).quality(),
    };
    // Segments are alphanumeric runs of the part number; "cr0000" etc.
    // won't all fire, so enable the fallback to exercise dense output.
    let rules = (0..20)
        .map(|i| rule(&format!("cr{:04}", i), resistor))
        .collect();
    (
        onto,
        instances,
        RuleClassifier::new(rules, SegmenterKind::Separator, true),
    )
}

fn assert_serial_parallel_agree(
    blocker: &dyn Blocker,
    external: &RecordStore,
    local: &RecordStore,
) {
    let cmp = comparator();
    let candidates = blocker.candidate_pairs(external, local);
    assert!(
        candidates.len() >= 1024,
        "{}: only {} candidates — parallel path not exercised",
        blocker.name(),
        candidates.len()
    );
    let serial = LinkagePipeline::new(blocker, &cmp).run_stores(external, local);
    let parallel = LinkagePipeline::new(blocker, &cmp)
        .with_threads(4)
        .run_stores(external, local);
    assert_eq!(
        serial,
        parallel,
        "{} serial/parallel mismatch",
        blocker.name()
    );
    assert_eq!(serial.comparisons, candidates.len() as u64);
}

#[test]
fn cartesian_serial_parallel_agree() {
    let (external, local) = large_stores();
    assert_serial_parallel_agree(&CartesianBlocker, &external, &local);
}

#[test]
fn standard_blocking_serial_parallel_agree() {
    let (external, local) = large_stores();
    // 2-char prefix: each family shares one block.
    let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 2));
    assert_serial_parallel_agree(&blocker, &external, &local);
}

#[test]
fn sorted_neighborhood_serial_parallel_agree() {
    let (external, local) = large_stores();
    let blocker = SortedNeighborhoodBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 60);
    assert_serial_parallel_agree(&blocker, &external, &local);
}

#[test]
fn bigram_serial_parallel_agree() {
    let (external, local) = large_stores();
    let blocker = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.2);
    assert_serial_parallel_agree(&blocker, &external, &local);
}

#[test]
fn rule_based_serial_parallel_agree() {
    let (external, local) = large_stores();
    let (onto, instances, classifier) = rule_setup();
    let blocker = RuleBasedBlocker::new(&classifier, &instances, &onto).with_fallback(true);
    assert_serial_parallel_agree(&blocker, &external, &local);
}

// ---------------------------------------------------------------------
// Empty-store / empty-property edge cases.
// ---------------------------------------------------------------------

fn empty() -> RecordStore {
    RecordStore::from_records(&[])
}

/// A store whose records exist but carry no attributes at all.
fn attributeless(n: usize) -> RecordStore {
    let records: Vec<Record> = (0..n)
        .map(|i| Record::new(Term::iri(format!("http://bare.e.org/{i}"))))
        .collect();
    RecordStore::from_records(&records)
}

#[test]
fn every_blocker_handles_empty_stores() {
    let (onto, instances, classifier) = rule_setup();
    let key = || BlockingKey::per_side(EXT_PN, LOC_PN, 4);
    let rule_based = RuleBasedBlocker::new(&classifier, &instances, &onto);
    let blockers: Vec<Box<dyn Blocker>> = vec![
        Box::new(CartesianBlocker),
        Box::new(StandardBlocker::new(key())),
        Box::new(SortedNeighborhoodBlocker::new(key(), 3)),
        Box::new(BigramBlocker::new(key(), 0.7)),
        Box::new(rule_based),
    ];
    let (populated, _) = large_stores();
    for blocker in &blockers {
        assert!(
            blocker.candidate_pairs(&empty(), &empty()).is_empty(),
            "{} emitted pairs on empty × empty",
            blocker.name()
        );
        assert!(
            blocker.candidate_pairs(&populated, &empty()).is_empty(),
            "{} emitted pairs on populated × empty",
            blocker.name()
        );
        assert!(
            blocker.candidate_pairs(&empty(), &populated).is_empty(),
            "{} emitted pairs on empty × populated",
            blocker.name()
        );
    }
}

#[test]
fn key_based_blockers_skip_attributeless_records() {
    let (_, local) = large_stores();
    let bare = attributeless(5);
    let key = BlockingKey::per_side(EXT_PN, LOC_PN, 4);
    assert!(StandardBlocker::new(key.clone())
        .candidate_pairs(&bare, &local)
        .is_empty());
    assert!(BigramBlocker::new(key, 0.7)
        .candidate_pairs(&bare, &local)
        .is_empty());
}

#[test]
fn pipeline_on_empty_stores_is_empty() {
    let cmp = comparator();
    for threads in [1, 4] {
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .with_threads(threads)
            .run_stores(&empty(), &empty());
        assert_eq!(result.comparisons, 0);
        assert_eq!(result.naive_pairs, 0);
        assert!(result.matches.is_empty() && result.possible.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }
}

#[test]
fn comparator_against_attributeless_side_uses_fallback_or_zero() {
    let (external, _) = large_stores();
    let bare = attributeless(1);
    let cmp = comparator();
    // LOC_PN never occurs on the bare store: the rule cannot fire, and
    // the Monge-Elkan full-text fallback sees an empty right-hand text.
    let compiled = cmp.compile(&external, &bare);
    let comparison = compiled.compare(&external, 0, &bare, 0);
    assert_eq!(comparison.details, vec![None]);
    assert!(comparison.score <= 1.0);
    let strict = RecordComparator {
        fallback: None,
        ..comparator()
    };
    let comparison = strict
        .compile(&external, &bare)
        .compare(&external, 0, &bare, 0);
    assert_eq!(comparison.score, 0.0);
}

#[test]
fn disjointness_filter_passes_through_on_empty_classes() {
    let mut b = OntologyBuilder::new("http://e.org/c#");
    let root = b.class("Component", None);
    let a = b.class("A", Some(root));
    let c = b.class("C", Some(root));
    b.disjoint(a, c);
    let onto = b.build();
    let filter = DisjointnessFilter::new(&onto);
    let candidates = vec![(0, 0), (1, 2)];
    // No class information on either side: nothing can be pruned.
    let kept = filter.filter(&candidates, &[], &[]);
    assert_eq!(kept, candidates);
}

#[test]
fn empty_property_lookup_is_none_not_panic() {
    let store = attributeless(2);
    assert_eq!(store.property(EXT_PN), None);
    assert!(store.interner().is_empty());
    assert_eq!(store.full_text(0), "");
    assert_eq!(store.facts(1).count(), 0);
}
