//! The deterministic fault-injection (chaos) suite, compiled only with
//! `--features failpoints` (see `shims/fail`).
//!
//! Every test follows the same contract: arm a failpoint inside one of
//! the pipeline's failure domains, drive the public `try_*` entry
//! points, and assert three things —
//!
//! 1. **Containment**: the injected panic surfaces as the structured
//!    [`LinkError`] variant of its domain, within a watchdog timeout
//!    (never an abort, never a deadlock);
//! 2. **Service continuity**: a serving [`Linker`] keeps answering from
//!    the last good epoch through a failed republish;
//! 3. **Self-healing**: a clean run over the *same* stores/scratch after
//!    the fault is bit-identical (`f64::to_bits`) to a never-faulted
//!    baseline.
#![cfg(feature = "failpoints")]

use classilink_linking::blocking::{BigramBlocker, Blocker, BlockingKey, StandardBlocker};
use classilink_linking::pipeline::{Link, LinkagePipeline, LinkageResult};
use classilink_linking::record::Record;
use classilink_linking::{
    FeedFormat, FeedIngest, LinkError, Linker, ProbeHits, ProbeScratch, RecordComparator,
    RecordStore, SchemaInterner, ShardedStore, ShardedStoreBuilder, SimilarityMeasure,
};
use classilink_rdf::Term;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};
use std::thread;
use std::time::Duration;

const EXT_PN: &str = "http://provider.example.org/vocab#partNumber";
const LOC_PN: &str = "http://catalog.example.org/vocab#partNumber";
const SHARDS: usize = 3;
/// Externals × locals share a common 3-char key prefix ("pn-"), so a
/// prefix-3 standard key yields 40 × 48 = 1920 candidates — above the
/// pipeline's `STEAL_BLOCK` (1024), which is what routes `threads: 4`
/// runs through the work-stealing scheduler.
const EXTERNALS: usize = 40;
const LOCALS: usize = 48;
/// Generous bound: a contained fault returns in milliseconds; only an
/// abort or deadlock (what the suite exists to rule out) would hit it.
const WATCHDOG: Duration = Duration::from_secs(120);

/// The failpoint registry is process-global: every test serialises on
/// this lock so one test's armed sites never leak into another.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Silence the default panic hook for *injected* panics (payloads from
/// `shims/fail` contain "failpoint"), so a green chaos run doesn't spray
/// dozens of backtraces; real, unexpected panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.contains("failpoint"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Arm `site` with `actions` for the guard's lifetime; disarm on drop
/// (even when the test itself panics on an assertion).
struct Armed(&'static str);

impl Armed {
    fn new(site: &'static str, actions: &str) -> Self {
        fail::cfg(site, actions).unwrap_or_else(|e| panic!("arming {site}: {e}"));
        Armed(site)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fail::remove(self.0);
    }
}

fn external_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://provider.example.org/item/{i}")));
    record.add(EXT_PN, format!("PN-{:02}X", i % 8));
    record
}

fn local_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://catalog.example.org/prod/{i}")));
    record.add(LOC_PN, format!("PN-{:02}X", i % 8));
    record
}

/// The shared chaos dataset, in `Arc`s so watchdogged runs can move
/// clones onto detached threads.
fn dataset() -> (Arc<RecordStore>, Arc<ShardedStore>) {
    static DATA: OnceLock<(Arc<RecordStore>, Arc<ShardedStore>)> = OnceLock::new();
    DATA.get_or_init(|| {
        let externals: Vec<Record> = (0..EXTERNALS).map(external_record).collect();
        let locals: Vec<Record> = (0..LOCALS).map(local_record).collect();
        (
            Arc::new(RecordStore::from_records(&externals)),
            Arc::new(ShardedStore::from_records(&locals, SHARDS)),
        )
    })
    .clone()
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum BlockerKind {
    Standard,
    Bigram,
}

impl BlockerKind {
    fn build(self) -> Box<dyn Blocker + Sync> {
        let key = BlockingKey::per_side(EXT_PN, LOC_PN, 3);
        match self {
            BlockerKind::Standard => Box::new(StandardBlocker::new(key)),
            BlockerKind::Bigram => Box::new(BigramBlocker::new(
                BlockingKey::per_side(EXT_PN, LOC_PN, 0),
                0.5,
            )),
        }
    }

    fn site(self) -> &'static str {
        match self {
            BlockerKind::Standard => "blocking::standard",
            BlockerKind::Bigram => "blocking::bigram",
        }
    }
}

fn comparator() -> RecordComparator {
    RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
        .with_thresholds(0.95, 0.5)
}

/// Run `try_run_sharded` on a detached thread under the watchdog: a
/// contained fault must *return*, not hang or abort.
fn watchdog_run(kind: BlockerKind, threads: usize) -> Result<LinkageResult, LinkError> {
    let (external, local) = dataset();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let blocker = kind.build();
        let cmp = comparator();
        let result = LinkagePipeline::new(blocker.as_ref(), &cmp)
            .with_threads(threads)
            .try_run_sharded(&external, &local);
        let _ = tx.send(result);
    });
    rx.recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("watchdog: {kind:?} x{threads} neither returned nor errored"))
}

fn assert_bit_identical(a: &LinkageResult, b: &LinkageResult, context: &str) {
    assert_eq!(a.comparisons, b.comparisons, "{context}: comparisons");
    for (kind, left, right) in [
        ("matches", &a.matches, &b.matches),
        ("possible", &a.possible, &b.possible),
    ] {
        assert_eq!(left.len(), right.len(), "{context}: {kind} count");
        for (l, r) in left.iter().zip(right.iter()) {
            assert_eq!(l.external, r.external, "{context}: {kind} external");
            assert_eq!(l.local, r.local, "{context}: {kind} local");
            assert_eq!(
                l.score.to_bits(),
                r.score.to_bits(),
                "{context}: {kind} score bits"
            );
        }
    }
}

fn assert_hits_bit_identical(a: &ProbeHits, b: &ProbeHits, context: &str) {
    let links = |side: &[Link]| -> Vec<(Term, Term, u64)> {
        side.iter()
            .map(|l| (l.external.clone(), l.local.clone(), l.score.to_bits()))
            .collect()
    };
    assert_eq!(links(&a.matches), links(&b.matches), "{context}: matches");
    assert_eq!(
        links(&a.possible),
        links(&b.possible),
        "{context}: possible"
    );
    assert_eq!(a.comparisons, b.comparisons, "{context}: comparisons");
}

/// The tentpole sweep: every batch-path site × both blockers × serial
/// and work-stealing scoring. Each combination must (a) return the
/// domain's structured error under the watchdog and (b) leave the shared
/// stores in a state where a clean re-run is bit-identical to the
/// never-faulted baseline.
#[test]
fn batch_sites_contain_panics_and_heal() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    for kind in [BlockerKind::Standard, BlockerKind::Bigram] {
        for threads in [1usize, 4] {
            let baseline = watchdog_run(kind, threads).expect("unfaulted baseline");
            assert!(
                baseline.comparisons as usize >= 1024,
                "dataset must exercise the stealing path ({} candidates)",
                baseline.comparisons
            );
            // (site, hit pattern): blocking sites fault mid-stream on
            // the 11th probe; the scoring site faults on its first claim.
            let cases = [
                (kind.site(), "10*off->panic(chaos in blocking)"),
                ("pipeline::score_range", "panic(chaos in scoring)"),
            ];
            for (site, actions) in cases {
                let armed = Armed::new(site, actions);
                let error =
                    watchdog_run(kind, threads).expect_err("injected fault must surface as Err");
                match (site, &error) {
                    (s, LinkError::BlockingPanicked { blocker, payload }) if s == kind.site() => {
                        assert_eq!(blocker, kind.build().name());
                        assert!(payload.contains("chaos in blocking"), "{payload}");
                    }
                    ("pipeline::score_range", LinkError::WorkerPanicked { payload, .. }) => {
                        assert!(payload.contains("chaos in scoring"), "{payload}");
                    }
                    other => panic!("{kind:?} x{threads} at {site}: wrong error {other:?}"),
                }
                drop(armed);
                let healed = watchdog_run(kind, threads).expect("clean re-run after fault");
                assert_bit_identical(
                    &healed,
                    &baseline,
                    &format!("{kind:?} x{threads} after {site}"),
                );
            }
        }
    }
}

/// Single-store entry point: same containment contract as the sharded
/// path (the two share the scoring machinery but not the entry code).
#[test]
fn single_store_runs_contain_panics_and_heal() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let locals: Vec<Record> = (0..LOCALS).map(local_record).collect();
    let local = RecordStore::from_records(&locals);
    let (external, _) = dataset();
    let blocker = BlockerKind::Standard.build();
    let cmp = comparator();
    let pipeline = LinkagePipeline::new(blocker.as_ref(), &cmp).with_threads(4);
    let baseline = pipeline
        .try_run_stores(&external, &local)
        .expect("unfaulted baseline");
    let armed = Armed::new("pipeline::score_range", "1*off->panic(chaos single)->off");
    let error = pipeline.try_run_stores(&external, &local).unwrap_err();
    assert!(
        matches!(error, LinkError::WorkerPanicked { .. }),
        "{error:?}"
    );
    drop(armed);
    let healed = pipeline
        .try_run_stores(&external, &local)
        .expect("clean re-run");
    assert_bit_identical(&healed, &baseline, "single store after score fault");
}

/// Work-stealing diagnostics: with one counted panic, exactly one worker
/// dies; the error reports the surviving workers and the links they
/// drained from the remaining blocks.
#[test]
fn surviving_workers_drain_and_report() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let threads = 4;
    let baseline = watchdog_run(BlockerKind::Standard, threads).expect("baseline");
    let armed = Armed::new("pipeline::score_range", "1*panic(chaos first claim)->off");
    let error = watchdog_run(BlockerKind::Standard, threads).unwrap_err();
    let LinkError::WorkerPanicked {
        worker,
        payload,
        survivors,
        partial_links,
    } = &error
    else {
        panic!("wrong error: {error:?}");
    };
    assert!(*worker < threads);
    assert!(payload.contains("chaos first claim"), "{payload}");
    assert_eq!(
        *survivors,
        threads - 1,
        "exactly one counted panic, so every other worker must finish"
    );
    // The dataset links every record to its key group: the survivors
    // must have drained real work, not bailed out.
    assert!(
        *partial_links > 0,
        "survivors drained no links at all: {error}"
    );
    assert!(*partial_links <= baseline.matches.len() + baseline.possible.len());
    drop(armed);
    let healed = watchdog_run(BlockerKind::Standard, threads).expect("clean re-run");
    assert_bit_identical(&healed, &baseline, "after worker panic");
}

/// Deterministic Nth-hit triggers: serial scoring calls `score_range`
/// exactly once per shard queue, so `2*off->1*panic->off` faults
/// precisely the third (last) shard — and the very next run finds the
/// sequence consumed and completes cleanly *without disarming the site*.
#[test]
fn nth_hit_trigger_is_deterministic_and_consumed() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let baseline = watchdog_run(BlockerKind::Standard, 1).expect("baseline");
    let _armed = Armed::new("pipeline::score_range", "2*off->1*panic(chaos 3rd)->off");
    let error = watchdog_run(BlockerKind::Standard, 1).unwrap_err();
    let LinkError::WorkerPanicked {
        partial_links,
        payload,
        ..
    } = &error
    else {
        panic!("wrong error: {error:?}");
    };
    assert!(payload.contains("chaos 3rd"), "{payload}");
    // Serial scoring claims whole queues in shard order: two full
    // shard ranges scored before the third call died.
    assert!(*partial_links > 0, "two shards scored before the fault");
    // Still armed, but the 1-hit panic step is consumed: clean and
    // bit-identical without touching the registry.
    let healed = watchdog_run(BlockerKind::Standard, 1).expect("consumed trigger");
    assert_bit_identical(&healed, &baseline, "after consumed Nth-hit trigger");
}

/// Shard columnarisation: the worker that hits the fault reports it,
/// the others finish their shards, and rebuilding from the same records
/// matches a sequential, never-faulted build.
#[test]
fn shard_build_contains_panics() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let locals: Vec<Record> = (0..LOCALS).map(local_record).collect();
    let build = |records: &[Record]| {
        let mut builder = ShardedStoreBuilder::default();
        let chunk = records.len().div_ceil(SHARDS).max(1);
        for shard in records.chunks(chunk) {
            builder.begin_shard();
            for record in shard {
                builder.push(record);
            }
        }
        builder
    };
    let baseline = build(&locals).build_with_workers(1);
    let armed = Armed::new("shard::columnarise", "1*off->1*panic(chaos shard)->off");
    let error = build(&locals).try_build_with_workers(2).unwrap_err();
    let LinkError::ShardBuildPanicked { shard, payload } = &error else {
        panic!("wrong error: {error:?}");
    };
    assert!(*shard < SHARDS);
    assert!(payload.contains("chaos shard"), "{payload}");
    drop(armed);
    let rebuilt = build(&locals)
        .try_build_with_workers(2)
        .expect("clean rebuild");
    assert_eq!(rebuilt.shard_count(), baseline.shard_count());
    assert_eq!(rebuilt.len(), baseline.len());
    for s in 0..SHARDS {
        assert_eq!(rebuilt.shard(s), baseline.shard(s), "shard {s}");
        assert_eq!(rebuilt.offset(s), baseline.offset(s), "offset {s}");
    }
}

/// Serving: a republish that panics mid-build returns
/// [`LinkError::EpochBuildPanicked`], the pre-swap epoch keeps
/// answering bit-identically, the sequence does not advance, and the
/// next successful swap continues the monotonic sequence.
#[test]
fn failed_republish_keeps_serving_last_good_epoch() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (_, catalog_a) = dataset();
    let grown: Vec<Record> = (0..LOCALS + 8).map(local_record).collect();
    let catalog_b = ShardedStore::from_records(&grown, SHARDS);
    let blocker = BlockerKind::Standard.build();
    let cmp = comparator();
    let linker = Linker::new(blocker.as_ref(), &cmp, (*catalog_a).clone());
    let mut scratch = ProbeScratch::new();
    let probe = external_record(7);

    let baseline = clone_hits(linker.probe_with(&probe, &mut scratch));
    assert_eq!(baseline.epoch, 1);

    for (site, actions, expect_injected) in [
        ("serve::build_epoch", "panic(chaos epoch build)", false),
        ("serve::build_epoch", "return(chaos injected error)", true),
        ("serve::warm", "panic(chaos warm)", false),
    ] {
        let armed = Armed::new(site, actions);
        let error = linker.try_swap(catalog_b.clone()).unwrap_err();
        match (&error, expect_injected) {
            (LinkError::Injected { site: at, message }, true) => {
                assert_eq!(at, site);
                assert!(message.contains("chaos injected error"), "{message}");
            }
            (LinkError::EpochBuildPanicked { payload }, false) => {
                assert!(payload.contains("chaos"), "{payload}");
            }
            other => panic!("{site}: wrong error {other:?}"),
        }
        drop(armed);
        // The failed republish left the old epoch serving, answers
        // bit-identical, sequence unmoved.
        assert_eq!(linker.catalog().load().sequence(), 1, "{site}");
        let after = linker.probe_with(&probe, &mut scratch);
        assert_hits_bit_identical(after, &baseline, &format!("serving across failed {site}"));
    }

    // Failed swaps left no gap: the next success is simply epoch 2.
    let sequence = linker.try_swap(catalog_b.clone()).expect("clean swap");
    assert_eq!(sequence, 2);
    let hits = linker.probe_with(&probe, &mut scratch);
    assert_eq!(hits.epoch, 2);
}

/// Probe-path faults: refill and mid-stream blocking panics surface as
/// [`LinkError::ProbePanicked`], and the *same scratch* heals — the next
/// probe is bit-identical to the pre-fault baseline.
#[test]
fn probe_scratch_heals_after_probe_faults() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (_, catalog) = dataset();
    let blocker = BlockerKind::Standard.build();
    let cmp = comparator();
    let linker = Linker::new(blocker.as_ref(), &cmp, (*catalog).clone());
    let mut scratch = ProbeScratch::new();
    let probe = external_record(3);
    let baseline = clone_hits(linker.probe_with(&probe, &mut scratch));

    for (site, actions) in [
        ("store::refill_single", "1*panic(chaos refill)->off"),
        // 1*off: the warm-up probe below already consumed... no — armed
        // fresh each loop; fault the very first blocking hit, leaving
        // the sink's previous contents from the baseline probe.
        ("blocking::standard", "1*panic(chaos probe stream)->off"),
    ] {
        let _armed = Armed::new(site, actions);
        let error = linker.try_probe_with(&probe, &mut scratch).unwrap_err();
        let LinkError::ProbePanicked { payload } = &error else {
            panic!("{site}: wrong error {error:?}");
        };
        assert!(payload.contains("chaos"), "{payload}");
        // Counted trigger consumed; same scratch, clean probe.
        let healed = linker
            .try_probe_with(&probe, &mut scratch)
            .expect("healed probe");
        assert_hits_bit_identical(healed, &baseline, &format!("scratch reuse after {site}"));
    }
}

/// The infallible wrappers keep their historical contract: they panic,
/// with the structured error's message, instead of returning.
#[test]
fn infallible_wrappers_panic_with_structured_messages() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (external, local) = dataset();
    let blocker = BlockerKind::Standard.build();
    let cmp = comparator();
    let _armed = Armed::new("blocking::standard", "panic(chaos wrapper)");
    let wrapped = catch_unwind(AssertUnwindSafe(|| {
        LinkagePipeline::new(blocker.as_ref(), &cmp).run_sharded(&external, &local)
    }))
    .unwrap_err();
    let message = wrapped
        .downcast_ref::<String>()
        .expect("wrapper panics with the Display of LinkError");
    assert!(message.contains("blocking phase"), "{message}");
    assert!(message.contains("standard-blocking"), "{message}");
    assert!(message.contains("chaos wrapper"), "{message}");
}

/// Every other instrumented site, swept through the entry point that
/// reaches it, so the whole ~10-site map stays honest: arming any site
/// yields a structured `Err` (not an abort), and disarming restores
/// bit-identical behaviour.
#[test]
fn remaining_sites_all_contain() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (external, local) = dataset();
    let cmp = comparator();

    // Cartesian + sorted-neighborhood + rule-based blockers, batch path.
    let cartesian = classilink_linking::CartesianBlocker;
    let sn = classilink_linking::SortedNeighborhoodBlocker::new(
        BlockingKey::per_side(EXT_PN, LOC_PN, 0),
        3,
    );
    let blockers: [(&str, &(dyn Blocker + Sync)); 2] = [
        ("blocking::cartesian", &cartesian),
        ("blocking::sorted_neighborhood", &sn),
    ];
    for (site, blocker) in blockers {
        let pipeline = LinkagePipeline::new(blocker, &cmp);
        let baseline = pipeline
            .try_run_sharded(&external, &local)
            .expect("baseline");
        let armed = Armed::new(site, "panic(chaos sweep)");
        let error = pipeline.try_run_sharded(&external, &local).unwrap_err();
        assert!(
            matches!(error, LinkError::BlockingPanicked { .. }),
            "{site}: {error:?}"
        );
        drop(armed);
        let healed = pipeline.try_run_sharded(&external, &local).expect("healed");
        assert_bit_identical(&healed, &baseline, site);
    }
}

/// Streaming ingest: a fault at a chunk boundary poisons the feed —
/// the error surfaces, every later `feed` is rejected, and nothing can
/// be published from the half-ingested stream. A fresh ingest over the
/// same bytes (same chunking) equals the batch build.
#[test]
fn mid_feed_fault_poisons_ingest_and_publishes_nothing() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let locals: Vec<Record> = (0..LOCALS).map(local_record).collect();
    let bytes: Vec<u8> = locals
        .iter()
        .enumerate()
        .map(|(i, _)| {
            format!(
                "<http://catalog.example.org/prod/{i}> <{LOC_PN}> \"PN-{:02}X\" .\n",
                i % 8
            )
        })
        .collect::<String>()
        .into_bytes();
    let per_shard = LOCALS.div_ceil(SHARDS);
    // Chunks split lines mid-statement on purpose.
    let chunks: Vec<&[u8]> = bytes.chunks(37).collect();

    for (actions, expect_injected) in [
        ("return(chaos feed)", true),
        ("panic(chaos feed panic)", false),
    ] {
        let mut ingest = FeedIngest::new(FeedFormat::NTriples, SchemaInterner::new(), per_shard);
        ingest.feed(chunks[0]).expect("clean first chunk");
        let before_fault = ingest.records();
        let armed = Armed::new("ingest::chunk", actions);
        let error = ingest.feed(chunks[1]).unwrap_err();
        match (&error, expect_injected) {
            (LinkError::Injected { site, message }, true) => {
                assert_eq!(site, "ingest::chunk");
                assert!(message.contains("chaos feed"), "{message}");
            }
            (LinkError::IngestFailed { payload }, false) => {
                assert!(payload.contains("chaos feed panic"), "{payload}");
            }
            other => panic!("{actions}: wrong error {other:?}"),
        }
        drop(armed);
        // Poisoned: the faulted chunk's work was abandoned whole, later
        // chunks are refused even with the site disarmed, and the
        // half-ingested stream can never publish a catalog.
        assert_eq!(ingest.records(), before_fault, "fault half-applied a chunk");
        let rejected = ingest.feed(chunks[2]).unwrap_err();
        assert!(
            matches!(&rejected, LinkError::IngestFailed { payload } if payload.contains("feed rejected")),
            "{rejected:?}"
        );
        let unpublished = ingest.try_finish().unwrap_err();
        assert!(
            matches!(&unpublished, LinkError::IngestFailed { payload } if payload.contains("nothing to publish")),
            "{unpublished:?}"
        );
    }

    // Self-healing: a fresh ingest of the same chunked bytes equals the
    // batch build record for record.
    let mut clean = FeedIngest::new(FeedFormat::NTriples, SchemaInterner::new(), per_shard);
    for chunk in &chunks {
        clean.feed(chunk).expect("clean chunk");
    }
    let streamed = clean.try_finish().expect("clean finish");
    assert_eq!(streamed, ShardedStore::from_records(&locals, SHARDS));
}

/// Catalog append: a fault inside `try_append_shards` surfaces as the
/// injected error and leaves the base catalog untouched; the retry over
/// a rebuilt delta succeeds.
#[test]
fn append_fault_leaves_base_catalog_untouched() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (_, base) = dataset();
    let delta_records: Vec<Record> = (LOCALS..LOCALS + 6).map(local_record).collect();
    let delta = |base: &ShardedStore| {
        let mut builder = base.delta_builder();
        builder.begin_shard();
        for record in &delta_records {
            builder.push(record);
        }
        builder
    };

    let armed = Armed::new("shard::append", "return(chaos append)");
    let error = base.try_append_shards(delta(&base)).unwrap_err();
    let LinkError::Injected { site, message } = &error else {
        panic!("wrong error: {error:?}");
    };
    assert_eq!(site, "shard::append");
    assert!(message.contains("chaos append"), "{message}");
    assert_eq!(base.shard_count(), SHARDS, "failed append changed the base");
    assert_eq!(base.len(), LOCALS, "failed append changed the base");
    drop(armed);

    let appended = base
        .try_append_shards(delta(&base))
        .expect("clean append after fault");
    assert_eq!(appended.shard_count(), SHARDS + 1);
    assert_eq!(appended.len(), LOCALS + 6);
    assert_eq!(base.shard_count(), SHARDS);
    assert_eq!(base.len(), LOCALS);
}

/// Serving: a failed incremental [`Linker::try_append`] — injected
/// error, append fault, or a panic while warming the new shards — keeps
/// the old epoch serving bit-identically with the sequence unmoved, and
/// the next clean append publishes the grown catalog.
#[test]
fn failed_append_keeps_serving_last_good_epoch() {
    let _serial = serial();
    quiet_injected_panics();
    fail::teardown();
    let (_, catalog) = dataset();
    let blocker = BlockerKind::Standard.build();
    let cmp = comparator();
    let linker = Linker::new(blocker.as_ref(), &cmp, (*catalog).clone());
    let mut scratch = ProbeScratch::new();
    let probe = external_record(7);
    let delta = |linker: &Linker| {
        let mut builder = linker.delta_builder();
        builder.begin_shard();
        for i in LOCALS..LOCALS + 8 {
            builder.push(&local_record(i));
        }
        builder
    };

    let baseline = clone_hits(linker.probe_with(&probe, &mut scratch));
    assert_eq!(baseline.epoch, 1);

    for (site, actions, expect_injected) in [
        ("serve::append", "return(chaos injected error)", true),
        ("shard::append", "return(chaos injected error)", true),
        ("serve::warm_append", "panic(chaos warm append)", false),
    ] {
        let armed = Armed::new(site, actions);
        let error = linker.try_append(delta(&linker)).unwrap_err();
        match (&error, expect_injected) {
            (LinkError::Injected { site: at, message }, true) => {
                assert_eq!(at, site);
                assert!(message.contains("chaos injected error"), "{message}");
            }
            (LinkError::EpochBuildPanicked { payload }, false) => {
                assert!(payload.contains("chaos warm append"), "{payload}");
            }
            other => panic!("{site}: wrong error {other:?}"),
        }
        drop(armed);
        // Old epoch still serving: sequence unmoved, probes answer
        // bit-identically, none of the would-be-appended records exist.
        assert_eq!(linker.catalog().load().sequence(), 1, "{site}");
        assert_eq!(linker.catalog().load().store().len(), LOCALS, "{site}");
        let after = linker.probe_with(&probe, &mut scratch);
        assert_hits_bit_identical(after, &baseline, &format!("serving across failed {site}"));
    }

    // The clean append continues the sequence and the probe now reaches
    // the appended shard: local 55 (55 % 8 == 7) is an exact PN match.
    let sequence = linker.try_append(delta(&linker)).expect("clean append");
    assert_eq!(sequence, 2);
    let hits = linker.probe_with(&probe, &mut scratch);
    assert_eq!(hits.epoch, 2);
    assert_eq!(
        hits.matches.len(),
        baseline.matches.len() + 1,
        "appended exact match must join the hit set"
    );
    assert!(
        hits.matches
            .iter()
            .any(|l| l.local == Term::iri("http://catalog.example.org/prod/55")),
        "probe must see the appended record"
    );
}

fn clone_hits(hits: &ProbeHits) -> ProbeHits {
    ProbeHits {
        matches: hits.matches.clone(),
        possible: hits.possible.clone(),
        comparisons: hits.comparisons,
        epoch: hits.epoch,
    }
}
