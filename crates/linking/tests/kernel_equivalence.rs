//! Equivalence suite for the optimised similarity kernels: every
//! optimised path — ASCII byte fast paths, scratch-buffer DP/bitmap
//! kernels, and the precomputed token-index merge kernels behind
//! `CompiledComparator::score` — must be **bit-identical** (`f64::to_bits`)
//! to the naive reference implementations in
//! `classilink_linking::similarity::naive`, on arbitrary Unicode input.
//!
//! One scratch is deliberately reused across all calls of each test so
//! stale buffer state from a previous pair would surface as a mismatch.

use classilink_linking::record::Record;
use classilink_linking::similarity::scratch::SimScratch;
use classilink_linking::similarity::{edit, jaro, naive, SimilarityMeasure};
use classilink_linking::{RecordComparator, RecordStore};
use classilink_rdf::Term;
use proptest::prelude::*;

const EXT_PN: &str = "http://provider.e.org/v#ref";
const LOC_PN: &str = "http://local.e.org/v#partNumber";

/// Assert every scratch kernel agrees bit-for-bit with its naive oracle
/// on one input pair, using the shared `scratch`.
fn assert_kernels_match(scratch: &mut SimScratch, a: &str, b: &str) {
    assert_eq!(
        edit::levenshtein_with(scratch, a, b),
        naive::levenshtein(a, b),
        "levenshtein({a:?}, {b:?})"
    );
    assert_eq!(
        edit::levenshtein_similarity_with(scratch, a, b).to_bits(),
        naive::levenshtein_similarity(a, b).to_bits(),
        "levenshtein_similarity({a:?}, {b:?})"
    );
    assert_eq!(
        edit::damerau_levenshtein_with(scratch, a, b),
        naive::damerau_levenshtein(a, b),
        "damerau_levenshtein({a:?}, {b:?})"
    );
    assert_eq!(
        edit::damerau_levenshtein_similarity_with(scratch, a, b).to_bits(),
        naive::damerau_levenshtein_similarity(a, b).to_bits(),
        "damerau_levenshtein_similarity({a:?}, {b:?})"
    );
    assert_eq!(
        jaro::jaro_with(scratch, a, b).to_bits(),
        naive::jaro(a, b).to_bits(),
        "jaro({a:?}, {b:?})"
    );
    assert_eq!(
        jaro::jaro_winkler_with(scratch, a, b).to_bits(),
        naive::jaro_winkler(a, b).to_bits(),
        "jaro_winkler({a:?}, {b:?})"
    );
    for &measure in SimilarityMeasure::all() {
        assert_eq!(
            measure.compare_with(scratch, a, b).to_bits(),
            naive::compare(measure, a, b).to_bits(),
            "{}({a:?}, {b:?})",
            measure.name()
        );
        assert_eq!(
            measure.compare(a, b).to_bits(),
            naive::compare(measure, a, b).to_bits(),
            "plain {}({a:?}, {b:?})",
            measure.name()
        );
    }
}

/// Assert the indexed `score` path agrees bit-for-bit with a naive
/// weighted-average scorer for every measure, on single-value stores.
fn assert_score_matches_naive(scratch: &mut SimScratch, a: &str, b: &str) {
    let mut left = Record::new(Term::iri("http://provider.e.org/item/1"));
    left.add(EXT_PN, a);
    let mut right = Record::new(Term::iri("http://local.e.org/prod/1"));
    right.add(LOC_PN, b);
    let external = RecordStore::from_records(&[left]);
    let local = RecordStore::from_records(&[right]);
    for &measure in SimilarityMeasure::all() {
        let comparator = RecordComparator::single(EXT_PN, LOC_PN, measure);
        let compiled = comparator.compile(&external, &local);
        let (score, _) = compiled.score(&external, 0, &local, 0, scratch);
        assert_eq!(
            score.to_bits(),
            naive::compare(measure, a, b).to_bits(),
            "score path {}({a:?}, {b:?})",
            measure.name()
        );
        // The detail-carrying path agrees with the detail-free path.
        let full = compiled.compare(&external, 0, &local, 0);
        assert_eq!(full.score.to_bits(), score.to_bits());
        assert_eq!(full.details, vec![Some(score)]);
    }
}

#[test]
fn non_ascii_regression_cases() {
    // Emoji (4-byte scalars), combining marks vs precomposed chars,
    // lowercase expansions ('İ' → "i̇", 'ß'), RTL text, CJK — the
    // inputs most likely to break an ASCII fast path or a byte/char
    // length confusion.
    let cases = [
        ("café", "cafe"),
        ("e\u{301}tude", "étude"),
        ("😀😀😀", "😀😀"),
        ("part😀number", "partnumber"),
        ("İstanbul", "istanbul"),
        ("STRASSE", "straße"),
        ("ß", "ss"),
        ("日本語テスト", "日本語テスト済"),
        ("מבחן", "מבחני"),
        ("Ωμέγα", "ωμεγα"),
        ("a\u{300}\u{301}", "a\u{301}\u{300}"),
        ("", "😀"),
        ("🇫🇷", "🇫"),
    ];
    let mut scratch = SimScratch::new();
    for (a, b) in cases {
        assert_kernels_match(&mut scratch, a, b);
        assert_kernels_match(&mut scratch, b, a);
        assert_score_matches_naive(&mut scratch, a, b);
    }
}

#[test]
fn jaro_strategy_boundary_at_64_symbols() {
    // Three Jaro implementations are selected by length/encoding:
    // bit-parallel ASCII (|b| ≤ 64), packed-bitmask chars (|b| ≤ 64),
    // and the Vec<bool> general path (|b| > 64). Pin pairs straddling
    // the 63/64/65 boundary, in both argument orders, ASCII and not.
    let mut scratch = SimScratch::new();
    let ascii: String = ('a'..='z').cycle().take(101).collect();
    let unicode: String = "αβγδεζηθικλμνξ".chars().cycle().take(101).collect();
    for len_a in [1usize, 12, 63, 64, 65, 100] {
        for len_b in [1usize, 12, 63, 64, 65, 100] {
            let (a1, b1) = (&ascii[..len_a], &ascii[1..1 + len_b]);
            assert_kernels_match(&mut scratch, a1, b1);
            let a2: String = unicode.chars().take(len_a).collect();
            let b2: String = unicode.chars().skip(1).take(len_b).collect();
            assert_kernels_match(&mut scratch, &a2, &b2);
            // Mixed encodings straddling the fast-path dispatch.
            assert_kernels_match(&mut scratch, a1, &b2);
        }
    }
}

#[test]
fn ascii_and_unicode_paths_agree_on_the_boundary() {
    // Pairs straddling the fast-path condition (one side ASCII, one
    // not) plus pure-ASCII pairs of very different lengths.
    let mut scratch = SimScratch::new();
    for (a, b) in [
        ("CRCW0805-10K", "CRCW0805-10Ω"),
        ("resistor", "résistor"),
        ("", ""),
        ("x", ""),
        ("an extremely long part description with many tokens", "x"),
        ("AAAA", "aaaa"),
    ] {
        assert_kernels_match(&mut scratch, a, b);
        assert_score_matches_naive(&mut scratch, a, b);
    }
}

proptest! {
    /// Scratch kernels ≡ naive oracles on arbitrary printable input
    /// (the shim's `\PC` mixes ASCII and multi-byte characters, so both
    /// the byte and char paths are exercised in one run).
    #[test]
    fn prop_scratch_kernels_bit_identical(a in "\\PC{0,18}", b in "\\PC{0,18}") {
        let mut scratch = SimScratch::new();
        assert_kernels_match(&mut scratch, &a, &b);
    }

    /// The token-indexed score path ≡ a naive scorer on arbitrary
    /// printable input.
    #[test]
    fn prop_score_path_bit_identical(a in "\\PC{0,16}", b in "\\PC{0,16}") {
        let mut scratch = SimScratch::new();
        assert_score_matches_naive(&mut scratch, &a, &b);
    }

    /// Scratch reuse across a *sequence* of pairs never changes results
    /// (catches kernels that forget to re-initialise buffer prefixes).
    #[test]
    fn prop_scratch_reuse_is_stateless(
        a in "\\PC{0,14}",
        b in "\\PC{0,14}",
        c in "\\PC{0,14}",
        d in "\\PC{0,14}",
    ) {
        let mut shared = SimScratch::new();
        for (x, y) in [(&a, &b), (&c, &d), (&a, &d), (&c, &b), (&a, &b)] {
            let with_shared = (
                edit::levenshtein_with(&mut shared, x, y),
                jaro::jaro_with(&mut shared, x, y).to_bits(),
                edit::damerau_levenshtein_with(&mut shared, x, y),
            );
            let mut fresh = SimScratch::new();
            let with_fresh = (
                edit::levenshtein_with(&mut fresh, x, y),
                jaro::jaro_with(&mut fresh, x, y).to_bits(),
                edit::damerau_levenshtein_with(&mut fresh, x, y),
            );
            prop_assert_eq!(with_shared, with_fresh);
        }
    }
}
