//! Crash-safety and round-trip guards for the persistence layer
//! ([`classilink_linking::persist`]):
//!
//! * **Byte-identical spill.** Property-based: arbitrary catalogs —
//!   empty catalogs, empty shards, multi-valued and Unicode-heavy
//!   records, every term kind — survive spill → load → re-spill with
//!   the restored store equal to the original and the second snapshot
//!   directory **byte-for-byte identical** to the first (content
//!   addressing makes the file set deterministic).
//! * **Bit-identical linking.** `run_sharded` over a restored catalog
//!   equals the in-memory run — scores compared as raw `f64` bits —
//!   for every built-in blocker (cartesian, standard key, sorted
//!   neighbourhood, bigram, classification rules), and probes through a
//!   [`Linker`] restored with [`Linker::open`] equal probes through the
//!   linker that was snapshotted.
//! * **Corruption recovery.** A chaos sweep over
//!   {truncate, bit-flip, delete} × {newest manifest, newest-only shard
//!   file} asserts the loader never panics, never returns a half-loaded
//!   catalog, and always falls back to the previous durable generation;
//!   when *every* generation is corrupt it fails with a structured
//!   [`PersistError::NoUsableGeneration`].
//! * **Hygiene.** Orphaned temp/data files are swept on open (unknown
//!   files are left alone), incremental snapshots reuse the previous
//!   generation's shard files, and retention keeps exactly the two
//!   newest generations.

use classilink_core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink_datagen::scenario::{generate, GeneratedScenario, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::pipeline::Link;
use classilink_linking::record::Record;
use classilink_linking::{
    CatalogSnapshot, LinkError, LinkagePipeline, Linker, PersistError, ProbeScratch,
    RecordComparator, ShardedStore, SimilarityMeasure,
};
use classilink_rdf::{Literal, Term};
use proptest::prelude::*;
use std::collections::HashSet;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const EXT_PN: &str = "http://provider.example.org/vocab#partNumber";
const LOC_PN: &str = "http://catalog.example.org/vocab#partNumber";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique, initially-absent scratch directory (left behind only when
/// the test fails, for post-mortem).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "classilink_persist_{}_{}_{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// `(file name, bytes)` for every file in `dir`, sorted by name.
fn dir_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("snapshot directory")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            (
                entry.file_name().into_string().expect("utf-8 file name"),
                fs::read(entry.path()).expect("file bytes"),
            )
        })
        .collect();
    files.sort();
    files
}

fn file_names(dir: &Path) -> HashSet<String> {
    dir_files(dir).into_iter().map(|(name, _)| name).collect()
}

// --- fault injectors (filesystem-level corruption) -------------------

fn truncate(path: &Path) {
    let bytes = fs::read(path).expect("read target");
    fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate target");
}

fn bit_flip(path: &Path) {
    let mut bytes = fs::read(path).expect("read target");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(path, bytes).expect("flip target");
}

fn delete(path: &Path) {
    fs::remove_file(path).expect("delete target");
}

// --- datasets --------------------------------------------------------

fn external_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://provider.example.org/item/{i}")));
    record.add(EXT_PN, format!("PN-{:02}X", i % 8));
    record
}

fn local_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://catalog.example.org/prod/{i}")));
    record.add(LOC_PN, format!("PN-{:02}X", i % 8));
    record
}

fn local_records(range: std::ops::Range<usize>) -> Vec<Record> {
    range.map(local_record).collect()
}

/// A base catalog plus the same catalog grown by two appended shards —
/// the two-generation fixture for the corruption sweep.
fn base_and_appended() -> (ShardedStore, ShardedStore) {
    let base = ShardedStore::from_records(&local_records(0..48), 3);
    let mut delta = base.delta_builder();
    for (i, record) in local_records(48..60).iter().enumerate() {
        if i % 6 == 0 {
            delta.begin_shard();
        }
        delta.push(record);
    }
    (base.clone(), base.append_shards(delta))
}

// --- the five-blocker harness (mirrors tests/delta_linking.rs) -------

fn key(prefix: usize) -> BlockingKey {
    BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        prefix,
    )
}

fn scenario_comparator() -> RecordComparator {
    let rule = |left: &str, right: &str, measure, weight| classilink_linking::AttributeRule {
        left_property: left.to_string(),
        right_property: right.to_string(),
        measure,
        weight,
    };
    RecordComparator::new(vec![
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::JaroWinkler,
            3.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::DiceBigrams,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_MANUFACTURER,
            SimilarityMeasure::JaccardTokens,
            1.0,
        ),
    ])
    .with_thresholds(0.92, 0.6)
}

fn classifier(scenario: &GeneratedScenario) -> RuleClassifier {
    let learner = LearnerConfig::default()
        .with_support_threshold(0.01)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));
    let outcome = RuleLearner::new(learner.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("rule learning on the tiny scenario");
    RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(0.4)
}

/// A link as comparable data: terms verbatim, score as raw bits.
fn bits(link: &Link) -> (String, String, u64) {
    (
        format!("{:?}", link.external),
        format!("{:?}", link.local),
        link.score.to_bits(),
    )
}

// =====================================================================
// Byte-identical spill → load → re-spill (property-based)
// =====================================================================

const PROP_POOL: [&str; 4] = [
    "http://e.org/v#partNumber",
    "http://e.org/v#manufacturer",
    "http://e.org/v#label",
    "http://e.org/v#desc",
];

/// One generated record: an id discriminator (uniqueness comes from the
/// record index; the suffix exercises Unicode ids) plus attribute values
/// drawn from a 4-property pool — repeats make multi-valued attributes.
type GenRecord = (u8, String, Vec<(u8, String)>);

/// Hand-rolled record strategy (the offline `proptest` stand-in has no
/// tuple strategies; see shims/README.md).
struct RecordStrategy;

impl Strategy for RecordStrategy {
    type Value = GenRecord;

    fn generate(&self, rng: &mut TestRng) -> GenRecord {
        let kind = rng.next_u64() as u8;
        let suffix = "\\PC{0,8}".generate(rng);
        let value_count = (rng.next_u64() % 5) as usize;
        let values = (0..value_count)
            .map(|_| {
                (
                    (rng.next_u64() % PROP_POOL.len() as u64) as u8,
                    "\\PC{0,16}".generate(rng),
                )
            })
            .collect();
        (kind, suffix, values)
    }
}

fn catalog_strategy() -> impl Strategy<Value = Vec<Vec<GenRecord>>> {
    proptest::collection::vec(proptest::collection::vec(RecordStrategy, 0..5), 0..4)
}

fn build_catalog(shards: &[Vec<GenRecord>]) -> ShardedStore {
    let mut builder = ShardedStore::builder();
    builder.begin_shard(); // an empty catalog is still one (empty) shard
    let mut n = 0usize;
    for shard in shards {
        builder.begin_shard();
        for (kind, suffix, values) in shard {
            // Unique ids (records are keyed by term), every term kind.
            let id = match kind % 3 {
                0 => Term::iri(format!("http://e.org/item/{n}/{suffix}")),
                1 => Term::blank(format!("b{n}-{suffix}")),
                _ => Term::Literal(Literal {
                    value: format!("{n}:{suffix}"),
                    language: (kind % 2 == 0).then(|| "en".to_string()),
                    datatype: (kind % 5 == 0).then(|| "http://w3.org/xsd#string".to_string()),
                }),
            };
            n += 1;
            let mut record = Record::new(id);
            for (prop, value) in values {
                record.add(PROP_POOL[*prop as usize % PROP_POOL.len()], value.clone());
            }
            builder.push(&record);
        }
    }
    builder.build()
}

proptest! {
    /// Spill → load restores an equal catalog; re-spilling the restored
    /// catalog produces a byte-identical snapshot directory.
    #[test]
    fn arbitrary_catalogs_round_trip_byte_identically(shards in catalog_strategy()) {
        let store = build_catalog(&shards);
        let dir1 = fresh_dir("prop_a");
        let dir2 = fresh_dir("prop_b");
        CatalogSnapshot::write(&dir1, &store).expect("spill");
        let (loaded, report) = CatalogSnapshot::open(&dir1).expect("load");
        prop_assert_eq!(&loaded, &store);
        prop_assert_eq!(report.generation, 1);
        prop_assert!(!report.recovered_from_fallback);
        prop_assert_eq!(report.records, store.len());
        CatalogSnapshot::write(&dir2, &loaded).expect("re-spill");
        prop_assert_eq!(dir_files(&dir1), dir_files(&dir2));
        let _ = fs::remove_dir_all(&dir1);
        let _ = fs::remove_dir_all(&dir2);
    }
}

// =====================================================================
// Bit-identical linking over a restored catalog
// =====================================================================

#[test]
fn run_sharded_over_a_restored_catalog_is_bit_identical_for_every_blocker() {
    let scenario = generate(&ScenarioConfig::tiny());
    let external = scenario.external_store();
    let locals = scenario.local_store().to_records();
    let catalog = ShardedStore::from_records(&locals, 3);

    let dir = fresh_dir("five_blockers");
    CatalogSnapshot::write(&dir, &catalog).expect("spill");
    let (restored, report) = CatalogSnapshot::open(&dir).expect("load");
    assert_eq!(restored, catalog);
    assert_eq!(report.shards, catalog.shard_count());

    let cmp = scenario_comparator();
    let classifier = classifier(&scenario);
    let rule_blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
        .with_fallback(true);
    let blockers: [&dyn Blocker; 5] = [
        &CartesianBlocker,
        &StandardBlocker::new(key(4)),
        &SortedNeighborhoodBlocker::new(key(0), 7),
        &BigramBlocker::new(key(0), 0.5),
        &rule_blocker,
    ];
    for blocker in blockers {
        let pipeline = LinkagePipeline::new(blocker, &cmp);
        let memory = pipeline.run_sharded(&external, &catalog);
        let disk = pipeline.run_sharded(&external, &restored);
        let to_bits = |links: &[Link]| links.iter().map(bits).collect::<Vec<_>>();
        let context = blocker.name().to_string();
        assert_eq!(
            to_bits(&memory.matches),
            to_bits(&disk.matches),
            "{context}: matches diverge after restore"
        );
        assert_eq!(
            to_bits(&memory.possible),
            to_bits(&disk.possible),
            "{context}: possible links diverge after restore"
        );
        assert_eq!(
            memory.comparisons, disk.comparisons,
            "{context}: comparison accounting diverges after restore"
        );
        assert!(
            !memory.matches.is_empty(),
            "{context}: no links — the guard would be vacuous"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn linker_snapshot_then_open_serves_bit_identical_probes() {
    let catalog = ShardedStore::from_records(&local_records(0..48), 3);
    let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 3));
    let cmp = RecordComparator::new(vec![classilink_linking::AttributeRule {
        left_property: EXT_PN.to_string(),
        right_property: LOC_PN.to_string(),
        measure: SimilarityMeasure::JaroWinkler,
        weight: 1.0,
    }])
    .with_thresholds(0.95, 0.7);
    let linker = Linker::new(&blocker, &cmp, catalog);

    let dir = fresh_dir("linker_roundtrip");
    let receipt = linker.snapshot(&dir).expect("snapshot");
    assert_eq!(receipt.generation, 1);
    assert_eq!(receipt.shards_written, 3);

    let (restored, report) = Linker::open(&dir, &blocker, &cmp).expect("open");
    assert_eq!(report.generation, 1);
    assert_eq!(report.records, 48);

    let mut live = ProbeScratch::new();
    let mut cold = ProbeScratch::new();
    let mut linked = 0usize;
    for i in 0..40 {
        let record = external_record(i);
        let a = linker.probe_with(&record, &mut live);
        let a = (
            a.matches.iter().map(bits).collect::<Vec<_>>(),
            a.possible.iter().map(bits).collect::<Vec<_>>(),
            a.comparisons,
        );
        let b = restored.probe_with(&record, &mut cold);
        let b = (
            b.matches.iter().map(bits).collect::<Vec<_>>(),
            b.possible.iter().map(bits).collect::<Vec<_>>(),
            b.comparisons,
        );
        linked += a.0.len();
        assert_eq!(a, b, "probe {i} diverges on the restored linker");
    }
    assert!(linked > 0, "no probe linked — the guard would be vacuous");
    let _ = fs::remove_dir_all(&dir);
}

// =====================================================================
// Corruption recovery
// =====================================================================

/// The chaos sweep: {truncate, bit-flip, delete} × {newest manifest,
/// a shard file only the newest generation references}. In every cell
/// the loader must not panic, must not serve the corrupt generation,
/// and must restore the previous generation exactly; after the sweep a
/// re-open is clean (the corruption has been deleted from the
/// directory).
#[test]
fn corrupting_the_newest_generation_falls_back_to_the_previous() {
    let (base, appended) = base_and_appended();
    type Fault = (&'static str, fn(&Path));
    let faults: [Fault; 3] = [
        ("truncate", truncate),
        ("bit-flip", bit_flip),
        ("delete", delete),
    ];
    for (fault_name, fault) in faults {
        for target_kind in ["manifest", "shard"] {
            let context = format!("{fault_name} × {target_kind}");
            let dir = fresh_dir("chaos");
            let gen1 = CatalogSnapshot::write(&dir, &base).expect("snapshot base");
            let gen1_files = file_names(&dir);
            let gen2 = CatalogSnapshot::write(&dir, &appended).expect("snapshot appended");
            assert_eq!((gen1.generation, gen2.generation), (1, 2), "{context}");
            assert!(gen2.shards_reused >= base.shard_count(), "{context}");

            let target = match target_kind {
                "manifest" => gen2.manifest.clone(),
                _ => {
                    // A data file the appended generation introduced —
                    // corrupting it must not take generation 1 down.
                    let new_shard = file_names(&dir)
                        .into_iter()
                        .find(|name| name.ends_with(".clshard") && !gen1_files.contains(name))
                        .expect("the append spilled at least one new shard file");
                    dir.join(new_shard)
                }
            };
            fault(&target);

            let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::open(&dir)))
                .unwrap_or_else(|_| panic!("{context}: the loader panicked"));
            let (loaded, report) =
                outcome.unwrap_or_else(|e| panic!("{context}: no fallback to generation 1: {e}"));
            assert_eq!(loaded, base, "{context}: wrong catalog restored");
            assert_eq!(report.generation, 1, "{context}");
            // Deleting the manifest itself erases generation 2 outright —
            // generation 1 is then simply the newest, not a fallback.
            let erased = fault_name == "delete" && target_kind == "manifest";
            assert_eq!(report.recovered_from_fallback, !erased, "{context}");
            if !erased {
                let (discarded_file, reason) = &report.discarded[0];
                assert_eq!(discarded_file, "MANIFEST-00000002", "{context}");
                assert!(!reason.is_empty(), "{context}");
            }

            // The corruption was swept: a second open is clean and
            // identical, and the bad generation's files are gone.
            let (again, report) = CatalogSnapshot::open(&dir).expect("clean re-open");
            assert_eq!(again, base, "{context}: re-open diverges");
            assert_eq!(report.generation, 1, "{context}");
            assert!(!report.recovered_from_fallback, "{context}");
            assert!(report.discarded.is_empty(), "{context}");
            assert!(
                !dir.join("MANIFEST-00000002").exists(),
                "{context}: corrupt manifest survived the sweep"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn when_every_generation_is_corrupt_open_fails_structurally_without_panicking() {
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("all_corrupt");
    CatalogSnapshot::write(&dir, &base).expect("snapshot base");
    CatalogSnapshot::write(&dir, &appended).expect("snapshot appended");
    for name in file_names(&dir) {
        if name.starts_with("MANIFEST-") {
            bit_flip(&dir.join(name));
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| CatalogSnapshot::open(&dir)))
        .expect("the loader never panics on corrupt input");
    match outcome {
        Err(PersistError::NoUsableGeneration { detail, .. }) => {
            assert!(detail.contains("MANIFEST-00000002"), "{detail}");
            assert!(detail.contains("MANIFEST-00000001"), "{detail}");
        }
        other => panic!("expected NoUsableGeneration, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restore_errors_name_the_directory_and_chain_their_sources() {
    use std::error::Error;
    let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 3));
    let cmp = RecordComparator::new(vec![classilink_linking::AttributeRule {
        left_property: EXT_PN.to_string(),
        right_property: LOC_PN.to_string(),
        measure: SimilarityMeasure::JaroWinkler,
        weight: 1.0,
    }]);
    let dir = fresh_dir("no_snapshot");
    let err = match Linker::open(&dir, &blocker, &cmp) {
        Ok(_) => panic!("opened a snapshot from an empty directory"),
        Err(err) => err,
    };
    assert!(
        matches!(
            &err,
            LinkError::RestoreFailed {
                source: PersistError::NoSnapshot { .. }
            }
        ),
        "{err:?}"
    );
    let text = err.to_string();
    assert!(text.contains("restore failed"), "{text}");
    assert!(text.contains("no_snapshot"), "{text}");
    let source = err.source().expect("RestoreFailed chains its PersistError");
    assert!(source.to_string().contains("no manifest"), "{source}");
}

// =====================================================================
// Hygiene: orphan sweep, incremental reuse, retention
// =====================================================================

#[test]
fn orphaned_files_are_swept_on_open_and_unknown_files_are_left_alone() {
    let catalog = ShardedStore::from_records(&local_records(0..12), 2);
    let dir = fresh_dir("orphans");
    CatalogSnapshot::write(&dir, &catalog).expect("snapshot");
    // A torn data-file spill and a torn manifest commit…
    fs::write(
        dir.join("shard-00000000deadbeef.clshard.tmp"),
        b"torn spill",
    )
    .unwrap();
    fs::write(dir.join("MANIFEST-00000009.tmp"), b"torn commit").unwrap();
    // …a data file no manifest references…
    fs::write(dir.join("shard-00000000deadbeef.clshard"), b"orphan").unwrap();
    // …and an operator's file this module never named.
    fs::write(dir.join("operator-notes.txt"), b"keep me").unwrap();

    let (loaded, report) = CatalogSnapshot::open(&dir).expect("open");
    assert_eq!(loaded, catalog);
    for swept in [
        "MANIFEST-00000009.tmp",
        "shard-00000000deadbeef.clshard",
        "shard-00000000deadbeef.clshard.tmp",
    ] {
        assert!(
            report.swept.iter().any(|name| name == swept),
            "{swept} not reported swept: {:?}",
            report.swept
        );
        assert!(!dir.join(swept).exists(), "{swept} survived the sweep");
    }
    assert!(
        dir.join("operator-notes.txt").exists(),
        "the sweep deleted a file it does not own"
    );
    assert!(!report.swept.iter().any(|name| name == "operator-notes.txt"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshotting_an_appended_catalog_spills_only_the_new_shards() {
    let (base, appended) = base_and_appended();
    let dir = fresh_dir("incremental");
    let gen1 = CatalogSnapshot::write(&dir, &base).expect("snapshot base");
    assert_eq!(gen1.shards_written, base.shard_count());
    assert_eq!(gen1.shards_reused, 0);

    let gen2 = CatalogSnapshot::write(&dir, &appended).expect("snapshot appended");
    assert_eq!(gen2.generation, 2);
    assert_eq!(
        gen2.shards_reused,
        base.shard_count(),
        "the surviving shards' files should be reused byte-for-byte"
    );
    assert_eq!(
        gen2.shards_written,
        appended.shard_count() - base.shard_count()
    );
    assert!(
        gen2.bytes_written < gen2.total_bytes,
        "an incremental snapshot writes less than it references"
    );

    let (loaded, report) = CatalogSnapshot::open(&dir).expect("open");
    assert_eq!(loaded, appended);
    assert_eq!(report.generation, 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retention_keeps_exactly_the_two_newest_generations() {
    let catalog = ShardedStore::from_records(&local_records(0..12), 2);
    let dir = fresh_dir("retention");
    for expected_gen in 1..=4u64 {
        let receipt = CatalogSnapshot::write(&dir, &catalog).expect("snapshot");
        assert_eq!(receipt.generation, expected_gen);
        if expected_gen == 4 {
            assert!(
                receipt.swept.iter().any(|name| name == "MANIFEST-00000002"),
                "{:?}",
                receipt.swept
            );
        }
    }
    let names = file_names(&dir);
    assert!(!names.contains("MANIFEST-00000001"));
    assert!(!names.contains("MANIFEST-00000002"));
    assert!(names.contains("MANIFEST-00000003"));
    assert!(names.contains("MANIFEST-00000004"));
    let (_, report) = CatalogSnapshot::open(&dir).expect("open");
    assert_eq!(report.generation, 4);
    let _ = fs::remove_dir_all(&dir);
}
