//! The streaming-blocking equivalence guard: on a **generated scenario**
//! (realistic part numbers, perturbations, a learned rule classifier),
//! the streamed per-shard candidate runs of every built-in blocker —
//! cartesian, standard key, sorted neighbourhood, bigram indexing and
//! classification rules — are identical to an independent, naive
//! **materialised reference** implementation of the same strategy, and
//! the pipeline results built on those runs (scores included, bit for
//! bit) match a from-scratch reference scorer over the reference
//! candidate set, across {1, 3, 8} shards × {1, 4} threads.
//!
//! The reference implementations below are deliberately string- and
//! hash-based and do not touch `stream_candidates`, `CandidateRuns` or
//! the store-level `KeyIndex`, so a regression anywhere in the streaming
//! stack cannot cancel out of both sides.

use classilink_core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink_datagen::scenario::{generate, GeneratedScenario, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::pipeline::{Link, LinkageResult};
use classilink_linking::{
    CandidateRuns, LinkagePipeline, MatchDecision, RecordComparator, RecordStore, SimScratch,
    SimilarityMeasure,
};
use classilink_segment::{CharNGramSegmenter, Segmenter};
use std::collections::{BTreeSet, HashMap, HashSet};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn key(prefix: usize) -> BlockingKey {
    BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        prefix,
    )
}

fn comparator() -> RecordComparator {
    let rule = |left: &str, right: &str, measure, weight| classilink_linking::AttributeRule {
        left_property: left.to_string(),
        right_property: right.to_string(),
        measure,
        weight,
    };
    RecordComparator::new(vec![
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::JaroWinkler,
            3.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::DiceBigrams,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_MANUFACTURER,
            SimilarityMeasure::JaccardTokens,
            1.0,
        ),
    ])
    .with_thresholds(0.92, 0.6)
}

fn classifier(scenario: &GeneratedScenario) -> RuleClassifier {
    let learner = LearnerConfig::default()
        .with_support_threshold(0.01)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));
    let outcome = RuleLearner::new(learner.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("rule learning on the tiny scenario");
    RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(0.4)
}

// ---------------------------------------------------------------------
// Naive reference implementations (global ids, single store).
// ---------------------------------------------------------------------

fn reference_cartesian(external: &RecordStore, local: &RecordStore) -> BTreeSet<(usize, usize)> {
    (0..external.len())
        .flat_map(|e| (0..local.len()).map(move |l| (e, l)))
        .collect()
}

fn reference_standard(
    key: &BlockingKey,
    external: &RecordStore,
    local: &RecordStore,
) -> BTreeSet<(usize, usize)> {
    let external_side = key.external_side(external);
    let local_side = key.local_side(local);
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for l in 0..local.len() {
        let k = local_side.key(local, l);
        if !k.is_empty() {
            blocks.entry(k).or_default().push(l);
        }
    }
    let mut pairs = BTreeSet::new();
    for e in 0..external.len() {
        let k = external_side.key(external, e);
        if k.is_empty() {
            continue;
        }
        for &l in blocks.get(&k).map(Vec::as_slice).unwrap_or(&[]) {
            pairs.insert((e, l));
        }
    }
    pairs
}

fn reference_bigram(
    key: &BlockingKey,
    threshold: f64,
    external: &RecordStore,
    local: &RecordStore,
) -> BTreeSet<(usize, usize)> {
    let segmenter = CharNGramSegmenter::padded_bigrams();
    let external_side = key.external_side(external);
    let local_side = key.local_side(local);
    let grams = |k: &str| -> HashSet<String> { segmenter.split_distinct(k).into_iter().collect() };
    let local_grams: Vec<HashSet<String>> = (0..local.len())
        .map(|l| grams(&local_side.key(local, l)))
        .collect();
    let mut pairs = BTreeSet::new();
    for e in 0..external.len() {
        let external_grams = grams(&external_side.key(external, e));
        for (l, lg) in local_grams.iter().enumerate() {
            let shared = external_grams.intersection(lg).count();
            let smaller = external_grams.len().min(lg.len()).max(1);
            let required = (threshold * smaller as f64).ceil() as usize;
            if shared >= required.max(1) {
                pairs.insert((e, l));
            }
        }
    }
    pairs
}

fn reference_sorted_neighborhood(
    key: &BlockingKey,
    window: usize,
    external: &RecordStore,
    local: &RecordStore,
) -> BTreeSet<(usize, usize)> {
    let external_side = key.external_side(external);
    let local_side = key.local_side(local);
    // The locals-only ladder, ordered by (sort value, id); each external
    // inserts after every local whose sort value is ≤ its own and pairs
    // with the `window − 1` nearest locals on each side.
    let mut ladder: Vec<(String, usize)> = (0..local.len())
        .map(|l| (local_side.sort_value(local, l), l))
        .collect();
    ladder.sort();
    let mut pairs = BTreeSet::new();
    for e in 0..external.len() {
        let value = external_side.sort_value(external, e);
        let position = ladder.partition_point(|(v, _)| *v <= value);
        for (_, l) in &ladder[position.saturating_sub(window.max(1) - 1)..position] {
            pairs.insert((e, *l));
        }
        for (_, l) in ladder[position..].iter().take(window.max(1) - 1) {
            pairs.insert((e, *l));
        }
    }
    pairs
}

fn reference_rule_based(
    scenario: &GeneratedScenario,
    classifier: &RuleClassifier,
    fallback: bool,
    external: &RecordStore,
    local: &RecordStore,
) -> BTreeSet<(usize, usize)> {
    let mut pairs = BTreeSet::new();
    for e in 0..external.len() {
        let facts: Vec<(String, String)> = external
            .facts(e)
            .map(|(p, v)| (p.to_string(), v.to_string()))
            .collect();
        let predictions = classifier.classify_facts(&facts);
        if predictions.is_empty() {
            if fallback {
                for l in 0..local.len() {
                    pairs.insert((e, l));
                }
            }
            continue;
        }
        for prediction in predictions {
            for item in scenario
                .instances
                .extent(prediction.class, &scenario.ontology)
            {
                if let Some(l) = local.index_of(&item) {
                    pairs.insert((e, l));
                }
            }
        }
    }
    pairs
}

/// Score the reference candidate set pair by pair and build the result
/// the pipeline should produce — candidates in index order, scores from
/// the compiled comparator, links sorted by (external, local) index.
fn reference_result(
    comparator: &RecordComparator,
    external: &RecordStore,
    local: &RecordStore,
    candidates: &BTreeSet<(usize, usize)>,
) -> LinkageResult {
    let compiled = comparator.compile(external, local);
    let mut scratch = SimScratch::new();
    let mut matches = Vec::new();
    let mut possible = Vec::new();
    for &(e, l) in candidates {
        let (score, decision) = compiled.score(external, e, local, l, &mut scratch);
        let link = || Link {
            external: external.id(e).clone(),
            local: local.id(l).clone(),
            score,
        };
        match decision {
            MatchDecision::Match => matches.push(link()),
            MatchDecision::Possible => possible.push(link()),
            MatchDecision::NonMatch => {}
        }
    }
    let comparisons = candidates.len() as u64;
    let naive_pairs = external.len() as u64 * local.len() as u64;
    let reduction_ratio = if naive_pairs == 0 {
        0.0
    } else {
        1.0 - comparisons as f64 / naive_pairs as f64
    };
    LinkageResult {
        matches,
        possible,
        comparisons,
        naive_pairs,
        reduction_ratio,
    }
}

/// Structural invariants of the run-block representation: per shard,
/// the block lengths sum to the shard total (and the totals to the
/// sink total), every block decodes to exactly `len` pairs, and
/// [`LocalRun`] random access agrees with its iterator — so the pair
/// sets asserted below really did travel through the compressed
/// encoding, not around it.
fn assert_block_invariants(runs: &CandidateRuns, blocker: &str) {
    let mut total = 0u64;
    for shard in 0..runs.shard_count() {
        let mut shard_total = 0u64;
        let mut decoded = 0u64;
        for (index, block) in runs.blocks(shard).iter().enumerate() {
            assert!(!block.is_empty(), "{blocker}: empty block emitted");
            shard_total += block.len() as u64;
            let (external, run) = runs.run(shard, index);
            assert_eq!(external, block.external(), "{blocker}: external mismatch");
            assert_eq!(run.len(), block.len(), "{blocker}: run/block len mismatch");
            let ids: Vec<usize> = run.iter().collect();
            assert_eq!(ids.len(), run.len(), "{blocker}: iterator length");
            for (i, &l) in ids.iter().enumerate() {
                assert_eq!(run.get(i), l, "{blocker}: get({i}) vs iterator");
            }
            decoded += ids.len() as u64;
        }
        assert_eq!(
            shard_total,
            runs.shard_total(shard),
            "{blocker}: shard {shard} total"
        );
        assert_eq!(
            decoded, shard_total,
            "{blocker}: shard {shard} decode count"
        );
        total += shard_total;
    }
    assert_eq!(total, runs.total(), "{blocker}: sink total");
}

/// The guard itself: streamed runs == reference candidate set (as sets
/// *and* in count, so duplicates cannot hide), and every pipeline result
/// built on the streamed runs == the reference scorer's result, for all
/// shard and thread counts.
fn assert_streaming_matches_reference(
    scenario: &GeneratedScenario,
    blocker: &dyn Blocker,
    reference: &BTreeSet<(usize, usize)>,
) {
    let external = scenario.external_store();
    let local = scenario.local_store();
    let cmp = comparator();
    let expected = reference_result(&cmp, &external, &local, reference);
    assert!(
        !expected.matches.is_empty(),
        "{}: reference produced no links — the guard would be vacuous",
        blocker.name()
    );

    // Single-store streaming (run_stores path), decoded **through the
    // block representation**.
    let mut runs = CandidateRuns::new();
    blocker.stream_candidates(
        &external,
        classilink_linking::LocalShards::single(&local),
        &mut runs,
    );
    assert_eq!(
        runs.total() as usize,
        reference.len(),
        "{}: single-store streamed candidate count",
        blocker.name()
    );
    assert_block_invariants(&runs, blocker.name());
    let streamed: BTreeSet<(usize, usize)> = runs.pairs(0).collect();
    assert_eq!(
        &streamed,
        reference,
        "{}: single-store candidate set",
        blocker.name()
    );

    for shard_count in SHARD_COUNTS {
        let (sharded_external, sharded_local) = scenario.sharded_stores(shard_count);
        // Streamed runs, globalised, must be the reference set exactly.
        let mut runs = CandidateRuns::new();
        blocker.stream_candidates(&sharded_external, (&sharded_local).into(), &mut runs);
        assert_eq!(
            runs.total() as usize,
            reference.len(),
            "{}: {shard_count} shards streamed candidate count",
            blocker.name()
        );
        assert_block_invariants(&runs, blocker.name());
        let globalised = runs.into_global_pairs((&sharded_local).into());
        assert_eq!(globalised.len(), reference.len());
        let streamed: BTreeSet<(usize, usize)> = globalised.into_iter().collect();
        assert_eq!(
            &streamed,
            reference,
            "{}: {shard_count} shards candidate set",
            blocker.name()
        );
        // And the legacy materialising API agrees too.
        let materialised: BTreeSet<(usize, usize)> = blocker
            .candidate_pairs_sharded(&sharded_external, &sharded_local)
            .into_iter()
            .collect();
        assert_eq!(
            &materialised,
            reference,
            "{}: {shard_count} shards materialised candidate set",
            blocker.name()
        );

        for threads in THREAD_COUNTS {
            let result = LinkagePipeline::new(blocker, &cmp)
                .with_threads(threads)
                .run_sharded(&sharded_external, &sharded_local);
            assert_eq!(
                expected,
                result,
                "{}: {shard_count} shards / {threads} threads diverged from the \
                 reference scorer (scores compared bit for bit)",
                blocker.name()
            );
        }
    }

    // run_stores agrees with the reference as well.
    let result = LinkagePipeline::new(blocker, &cmp).run_stores(&external, &local);
    assert_eq!(expected, result, "{}: run_stores diverged", blocker.name());
}

#[test]
fn cartesian_streaming_matches_reference() {
    let scenario = generate(&ScenarioConfig::tiny());
    let reference = reference_cartesian(&scenario.external_store(), &scenario.local_store());
    assert_streaming_matches_reference(&scenario, &CartesianBlocker, &reference);
}

#[test]
fn standard_streaming_matches_reference() {
    let scenario = generate(&ScenarioConfig::tiny());
    let blocker = StandardBlocker::new(key(4));
    let reference =
        reference_standard(&key(4), &scenario.external_store(), &scenario.local_store());
    assert_streaming_matches_reference(&scenario, &blocker, &reference);
}

#[test]
fn sorted_neighborhood_streaming_matches_reference() {
    let scenario = generate(&ScenarioConfig::tiny());
    let blocker = SortedNeighborhoodBlocker::new(key(0), 7);
    let reference = reference_sorted_neighborhood(
        &key(0),
        7,
        &scenario.external_store(),
        &scenario.local_store(),
    );
    assert_streaming_matches_reference(&scenario, &blocker, &reference);
}

#[test]
fn bigram_streaming_matches_reference() {
    let scenario = generate(&ScenarioConfig::tiny());
    let blocker = BigramBlocker::new(key(0), 0.5);
    let reference = reference_bigram(
        &key(0),
        0.5,
        &scenario.external_store(),
        &scenario.local_store(),
    );
    assert_streaming_matches_reference(&scenario, &blocker, &reference);
}

mod local_run_decode {
    //! Proptest: whatever mixture of explicit pushes and span blocks a
    //! producer emits, decoding the `LocalRun` blocks reproduces the
    //! explicit pair enumeration exactly — per shard, in order, with
    //! totals intact; and for keyed blocks, the decoded slice equals
    //! the key index's explicit `records_with_key` enumeration.

    use super::*;
    use classilink_linking::record::Record;
    use classilink_rdf::Term;
    use proptest::prelude::*;

    /// One emitted candidate unit: an explicit pair or a span run,
    /// decoded deterministically from one seed (the shimmed proptest
    /// has no `prop_oneof`/`prop_map`).
    #[derive(Debug, Clone)]
    enum Op {
        Push {
            shard: usize,
            e: usize,
            l: usize,
        },
        Span {
            shard: usize,
            e: usize,
            start: usize,
            len: usize,
        },
    }

    fn decode_op(seed: u64, shards: usize) -> Op {
        let shard = (seed % shards as u64) as usize;
        let e = ((seed >> 8) % 24) as usize;
        if seed & 1 == 0 {
            Op::Push {
                shard,
                e,
                l: ((seed >> 16) % 24) as usize,
            }
        } else {
            Op::Span {
                shard,
                e,
                start: ((seed >> 16) % 16) as usize,
                len: ((seed >> 24) % 9) as usize,
            }
        }
    }

    proptest! {
        #[test]
        fn decode_equals_explicit_enumeration(
            shards in 1usize..5,
            seeds in proptest::collection::vec(0u64..u64::MAX, 1..64),
        ) {
            let mut runs = CandidateRuns::new();
            runs.reset(shards);
            let mut expected: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
            for &seed in &seeds {
                match decode_op(seed, shards) {
                    Op::Push { shard, e, l } => {
                        runs.push(shard, e, l);
                        expected[shard].push((e, l));
                    }
                    Op::Span { shard, e, start, len } => {
                        runs.push_span(shard, e, start, len);
                        expected[shard].extend((start..start + len).map(|l| (e, l)));
                    }
                }
            }
            let expected_total: usize = expected.iter().map(Vec::len).sum();
            prop_assert_eq!(runs.total() as usize, expected_total);
            for (shard, shard_expected) in expected.iter().enumerate() {
                // Decoded pairs equal the explicit enumeration, in
                // emission order.
                let decoded: Vec<(usize, usize)> = runs.pairs(shard).collect();
                prop_assert_eq!(&decoded, shard_expected, "shard {}", shard);
                prop_assert_eq!(runs.shard_total(shard) as usize, shard_expected.len());
                // Block-by-block: run.get(i) == iterator == slice of the
                // explicit enumeration.
                let mut cursor = 0usize;
                for index in 0..runs.blocks(shard).len() {
                    let (external, run) = runs.run(shard, index);
                    for (i, l) in run.iter().enumerate() {
                        prop_assert_eq!(run.get(i), l);
                        prop_assert_eq!(shard_expected[cursor], (external, l));
                        cursor += 1;
                    }
                }
                prop_assert_eq!(cursor, shard_expected.len());
            }
            // Retain keeps exactly the accepted pairs, re-encoded.
            let kept: Vec<Vec<(usize, usize)>> = expected
                .iter()
                .map(|pairs| {
                    pairs.iter().copied().filter(|&(e, l)| (e + l) % 2 == 0).collect()
                })
                .collect();
            runs.retain(|_, e, l| (e + l) % 2 == 0);
            for (shard, shard_kept) in kept.iter().enumerate() {
                let decoded: Vec<(usize, usize)> = runs.pairs(shard).collect();
                prop_assert_eq!(&decoded, shard_kept, "retained shard {}", shard);
            }
            prop_assert_eq!(
                runs.total() as usize,
                kept.iter().map(Vec::len).sum::<usize>()
            );
        }

        #[test]
        fn keyed_decode_equals_records_with_key(
            values in proptest::collection::vec("[a-c]{0,3}", 1..20),
            probes in proptest::collection::vec("[a-c]{0,3}", 1..8),
        ) {
            let records: Vec<Record> = values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut r = Record::new(Term::iri(format!("http://e.org/i/{i}")));
                    r.add(vocab::LOCAL_PART_NUMBER, v.as_str());
                    r
                })
                .collect();
            let store = RecordStore::from_records(&records);
            let side = key(0).local_side(&store);
            let index = store.key_index(&side);
            let mut runs = CandidateRuns::new();
            runs.reset(1);
            runs.set_key_table(0, index.clone());
            let mut expected: Vec<(usize, usize)> = Vec::new();
            for (e, probe) in probes.iter().enumerate() {
                let range = index.key_range(probe);
                runs.push_keyed(0, e, range.start, range.len());
                expected.extend(
                    index
                        .records_with_key(probe)
                        .iter()
                        .map(|&l| (e, l as usize)),
                );
            }
            let decoded: Vec<(usize, usize)> = runs.pairs(0).collect();
            prop_assert_eq!(decoded, expected);
        }
    }
}

#[test]
fn rule_based_streaming_matches_reference() {
    let scenario = generate(&ScenarioConfig::tiny());
    let classifier = classifier(&scenario);
    for fallback in [false, true] {
        let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
            .with_fallback(fallback);
        let reference = reference_rule_based(
            &scenario,
            &classifier,
            fallback,
            &scenario.external_store(),
            &scenario.local_store(),
        );
        assert_streaming_matches_reference(&scenario, &blocker, &reference);
    }
}
