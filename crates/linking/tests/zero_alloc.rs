//! Proof of the zero-allocation contract: once the pipeline is in
//! steady state (scratch buffers grown, token indexes built), scoring a
//! candidate pair through `CompiledComparator::score` performs **no
//! heap allocation**, for every similarity measure — including the
//! set measures (token-index merges) and the full-text fallback.
//!
//! The same contract now covers **blocking**: after the store-level
//! `KeyIndex`es are warm and the `CandidateRuns` sink has grown its
//! buffers, streaming candidate generation with `StandardBlocker` and
//! `BigramBlocker` performs zero allocations — not just per record pair,
//! but for the entire run.
//!
//! This test binary installs a counting global allocator and asserts
//! the allocation counter does not move across a post-warmup scoring
//! sweep. It lives in its own integration-test binary so no concurrent
//! test can pollute the counter.

use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, StandardBlocker,
};
use classilink_linking::record::Record;
use classilink_linking::{
    CandidateRuns, Linker, LocalShards, ProbeScratch, RecordComparator, RecordStore, ShardedStore,
    SimScratch, SimilarityMeasure,
};
use classilink_rdf::Term;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, with every allocation counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global, so the tests serialise on
/// this mutex: a concurrent test's warmup must not allocate inside
/// another test's measurement window.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

const EXT_PN: &str = "http://provider.e.org/v#ref";
const EXT_MFR: &str = "http://provider.e.org/v#maker";
const LOC_PN: &str = "http://local.e.org/v#partNumber";
const LOC_MFR: &str = "http://local.e.org/v#manufacturer";

fn stores() -> (RecordStore, RecordStore) {
    let series = ["CRCW0805", "ERJ6", "T83A225", "LM317", "GRM188", "1N4148"];
    let external: Vec<Record> = (0..24)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://provider.e.org/item/{i}")));
            r.add(
                EXT_PN,
                format!("{}-{:05}-{}", series[i % series.len()], i, i % 7),
            );
            r.add(EXT_MFR, "Vishay Intertechnology fixed film");
            r
        })
        .collect();
    let local: Vec<Record> = (0..24)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
            r.add(
                LOC_PN,
                format!("{}-{:05}-{}", series[(i + 1) % series.len()], i, i % 5),
            );
            r.add(LOC_MFR, "Vishay fixed film resistor");
            r
        })
        .collect();
    (
        RecordStore::from_records(&external),
        RecordStore::from_records(&local),
    )
}

#[test]
fn steady_state_score_never_allocates() {
    let _serial = SERIAL.lock().unwrap();
    let (external, local) = stores();
    let mut scratch = SimScratch::new();
    for &measure in SimilarityMeasure::all() {
        let comparator = RecordComparator::new(vec![classilink_linking::AttributeRule {
            left_property: EXT_PN.to_string(),
            right_property: LOC_PN.to_string(),
            measure,
            weight: 1.0,
        }]);
        let compiled = comparator.compile(&external, &local);
        if compiled.uses_token_index() {
            external.token_index();
            local.token_index();
        }
        // Warmup: grow the scratch buffers to the longest inputs and
        // fault in every lazily-built structure.
        let mut warmup = 0.0;
        for e in 0..external.len() {
            for l in 0..local.len() {
                warmup += compiled.score(&external, e, &local, l, &mut scratch).0;
            }
        }
        assert!(warmup.is_finite());

        // Steady state: the same sweep must not allocate at all.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut total = 0.0;
        for e in 0..external.len() {
            for l in 0..local.len() {
                total += compiled.score(&external, e, &local, l, &mut scratch).0;
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(total.is_finite());
        assert_eq!(
            after - before,
            0,
            "measure {} allocated {} times across {} steady-state scores",
            measure.name(),
            after - before,
            external.len() * local.len()
        );
    }
}

#[test]
fn steady_state_fallback_score_never_allocates() {
    // A rule whose property exists on neither store forces the
    // full-text fallback (Monge-Elkan — a set kernel) on every pair.
    let _serial = SERIAL.lock().unwrap();
    let (external, local) = stores();
    let mut scratch = SimScratch::new();
    let comparator = RecordComparator::single(
        "http://nowhere.org/v#x",
        "http://nowhere.org/v#y",
        SimilarityMeasure::Jaro,
    );
    let compiled = comparator.compile(&external, &local);
    let mut warmup = 0.0;
    for e in 0..external.len() {
        warmup += compiled.score(&external, e, &local, e, &mut scratch).0;
    }
    assert!(
        warmup > 0.0,
        "fallback should produce non-zero similarities"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for e in 0..external.len() {
        compiled.score(&external, e, &local, e, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "fallback path allocated in steady state");
}

/// Stream a blocker's candidates twice into one sink and assert the
/// second (steady-state) run performs zero allocations: the first call
/// builds the store-level key indexes and grows the sink's output and
/// scratch buffers; after that, candidate generation is pure index
/// probing into retained capacity.
fn assert_blocking_steady_state(
    blocker: &dyn Blocker,
    external: &RecordStore,
    local: LocalShards<'_>,
    runs: &mut CandidateRuns,
) {
    blocker.stream_candidates(external, local, runs);
    let warm_total = runs.total();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    blocker.stream_candidates(external, local, runs);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        runs.total(),
        warm_total,
        "{}: runs diverged",
        blocker.name()
    );
    assert!(
        warm_total > 0,
        "{}: no candidates — the zero-alloc assertion would be vacuous",
        blocker.name()
    );
    assert_eq!(
        after - before,
        0,
        "{} allocated {} times across a steady-state streaming run of {} candidates",
        blocker.name(),
        after - before,
        warm_total
    );
}

#[test]
fn steady_state_blocking_never_allocates() {
    let _serial = SERIAL.lock().unwrap();
    let (external, local) = stores();
    let standard = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
    let bigram = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.3);
    // A second threshold forces a second cached `ThresholdLayout` per
    // shard index: the warm call must find it without allocating.
    let bigram_high = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.7);
    let mut runs = CandidateRuns::new();
    // Single-store view: the run_stores blocking path. Standard emits
    // keyed blocks, bigram explicit runs, cartesian span blocks — all
    // three encodings of the block sink stay allocation-free warm.
    assert_blocking_steady_state(&standard, &external, LocalShards::single(&local), &mut runs);
    assert_blocking_steady_state(&bigram, &external, LocalShards::single(&local), &mut runs);
    assert_blocking_steady_state(
        &bigram_high,
        &external,
        LocalShards::single(&local),
        &mut runs,
    );
    assert_blocking_steady_state(
        &CartesianBlocker,
        &external,
        LocalShards::single(&local),
        &mut runs,
    );
    // Sharded view: the run_sharded blocking path (per-shard key
    // indexes, external-side artifacts shared across shards).
    let sharded = ShardedStore::from_records(
        &(0..24)
            .map(|i| {
                let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
                r.add(LOC_PN, format!("CRCW0805-{i:05}-{}", i % 5));
                r
            })
            .collect::<Vec<_>>(),
        3,
    );
    assert_blocking_steady_state(&standard, &external, (&sharded).into(), &mut runs);
    assert_blocking_steady_state(&bigram, &external, (&sharded).into(), &mut runs);
    assert_blocking_steady_state(&bigram_high, &external, (&sharded).into(), &mut runs);
    assert_blocking_steady_state(&CartesianBlocker, &external, (&sharded).into(), &mut runs);
}

// ---------------------------------------------------------------------
// The serving layer: warm `Linker::probe_with` calls.
// ---------------------------------------------------------------------

/// The catalog side of [`stores`] as a sharded store.
fn catalog(shard_count: usize) -> ShardedStore {
    let series = ["CRCW0805", "ERJ6", "T83A225", "LM317", "GRM188", "1N4148"];
    let locals: Vec<Record> = (0..24)
        .map(|i| {
            let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
            r.add(
                LOC_PN,
                format!("{}-{:05}-{}", series[(i + 1) % series.len()], i, i % 5),
            );
            r
        })
        .collect();
    ShardedStore::from_records(&locals, shard_count)
}

/// A string-kernel-only comparator (the set kernels re-tokenise the
/// refilled probe store per probe, which allocates by design; the
/// serving zero-allocation contract is stated for string kernels).
fn probe_comparator(match_threshold: f64, non_match_threshold: f64) -> RecordComparator {
    RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
        .with_thresholds(match_threshold, non_match_threshold)
}

/// Warm up a linker + scratch on `probes`, then measure one full sweep.
/// Returns (allocations, links materialised) across the measured sweep.
fn measure_probe_sweep(
    linker: &Linker<'_>,
    scratch: &mut ProbeScratch,
    probes: &[Record],
) -> (u64, usize) {
    let mut comparisons = 0;
    for probe in probes {
        comparisons += linker.probe_with(probe, scratch).comparisons;
    }
    assert!(
        comparisons > 0,
        "no candidates — the probe assertion would be vacuous"
    );
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut links = 0;
    for probe in probes {
        let hits = linker.probe_with(probe, scratch);
        links += hits.matches.len() + hits.possible.len();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    (after - before, links)
}

#[test]
fn warm_probe_never_allocates() {
    // Thresholds no score can reach: every candidate is scored but no
    // link materialises, so a warm probe must be *fully* allocation-free
    // — refill, blocking, queueing, scoring and the cleared result
    // buffers included — for both blockers, single-store and sharded.
    let _serial = SERIAL.lock().unwrap();
    let (external, _) = stores();
    let probes: Vec<Record> = (0..6).map(|e| external.record(e)).collect();
    let cmp = probe_comparator(2.0, 2.0);
    let standard = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
    let bigram = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.3);
    for shard_count in [1, 3] {
        let catalog = catalog(shard_count);
        for blocker in [&standard as &(dyn Blocker + Sync), &bigram] {
            let linker = Linker::new(blocker, &cmp, catalog.clone());
            let mut scratch = ProbeScratch::new();
            let (allocations, links) = measure_probe_sweep(&linker, &mut scratch, &probes);
            assert_eq!(links, 0, "{}: thresholds unreachable", blocker.name());
            assert_eq!(
                allocations,
                0,
                "{} / {shard_count} shards: warm probes allocated {allocations} times",
                blocker.name()
            );
        }
    }
}

#[test]
fn warm_probe_allocates_exactly_the_link_terms() {
    // Thresholds every score clears: each link costs exactly two
    // allocations — the external and local `Term` IRI clones — and
    // nothing else (the `Vec<Link>` itself reuses its capacity).
    let _serial = SERIAL.lock().unwrap();
    let (external, _) = stores();
    let probes: Vec<Record> = (0..6).map(|e| external.record(e)).collect();
    let cmp = probe_comparator(0.0, 0.0);
    let standard = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
    let bigram = BigramBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 0), 0.3);
    for shard_count in [1, 3] {
        let catalog = catalog(shard_count);
        for blocker in [&standard as &(dyn Blocker + Sync), &bigram] {
            let linker = Linker::new(blocker, &cmp, catalog.clone());
            let mut scratch = ProbeScratch::new();
            let (allocations, links) = measure_probe_sweep(&linker, &mut scratch, &probes);
            assert!(links > 0, "{}: no links materialised", blocker.name());
            assert_eq!(
                allocations,
                2 * links as u64,
                "{} / {shard_count} shards: {links} links should cost exactly \
                 two term clones each, measured {allocations} allocations",
                blocker.name()
            );
        }
    }
}
