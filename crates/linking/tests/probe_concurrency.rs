//! The serving-layer concurrency guard: reader threads hammer
//! [`Linker::probe_with`] while a writer thread swaps in a sequence of
//! grown catalogs. Every probe must return a link set that is *exactly*
//! correct for the epoch it reports (precomputed per epoch via the
//! batch pipeline) — never a blend of two catalogs — and once the final
//! swap is published, a fresh probe must see the records added last.
//!
//! Epoch swaps are atomic `Arc` publications, so a torn read would
//! manifest here as a link set matching no precomputed epoch.

use classilink_linking::blocking::{BigramBlocker, Blocker, BlockingKey, StandardBlocker};
use classilink_linking::pipeline::{Link, LinkagePipeline};
use classilink_linking::record::Record;
use classilink_linking::{
    Linker, ProbeScratch, RecordComparator, RecordStore, ShardedStore, SimilarityMeasure,
};
use classilink_rdf::Term;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

const READERS: usize = 4;
const SWAPS: usize = 8;
const BASE_LOCALS: usize = 24;
const GROWTH_STEP: usize = 8;
const SHARDS: usize = 3;

const PROBE_PN: &str = "http://probe.example.org/vocab#partNumber";
const LOCAL_PN: &str = "http://catalog.example.org/vocab#partNumber";

fn local_record(i: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://catalog.example.org/prod/{i}")));
    record.add(LOCAL_PN, format!("{i:04}-PN"));
    record
}

fn probe_record(local: usize) -> Record {
    let mut record = Record::new(Term::iri(format!("http://probe.example.org/item/{local}")));
    record.add(PROBE_PN, format!("{local:04}-PN"));
    record
}

/// Catalog for epoch `t` (t = 0 is the pre-swap catalog): the base
/// locals plus `t` growth steps.
fn catalog_records(t: usize) -> Vec<Record> {
    (0..BASE_LOCALS + t * GROWTH_STEP)
        .map(local_record)
        .collect()
}

fn assert_links_bit_identical(probe: &[Link], expected: &[Link], context: &str) {
    assert_eq!(probe.len(), expected.len(), "{context}: link count");
    for (p, e) in probe.iter().zip(expected) {
        assert_eq!(p.external, e.external, "{context}: external term");
        assert_eq!(p.local, e.local, "{context}: local term");
        assert_eq!(
            p.score.to_bits(),
            e.score.to_bits(),
            "{context}: score bits"
        );
    }
}

/// Readers probe continuously while the writer publishes `SWAPS` grown
/// catalogs; every probe is checked against the batch-pipeline answer
/// for the exact epoch it reports.
fn stress(blocker: &(dyn Blocker + Sync)) {
    let cmp = RecordComparator::single(PROBE_PN, LOCAL_PN, SimilarityMeasure::JaroWinkler)
        .with_thresholds(0.95, 0.5);

    // Probe 0 matches a base local; probe j (1..=SWAPS) matches the last
    // local added by swap j, so its link set flips from empty to
    // non-empty at epoch j + 1 — a probe served from a stale or torn
    // catalog cannot satisfy the per-epoch expectation by accident.
    let probes: Vec<Record> = std::iter::once(probe_record(0))
        .chain((1..=SWAPS).map(|j| probe_record(BASE_LOCALS + j * GROWTH_STEP - 1)))
        .collect();
    let probe_store = RecordStore::from_records(&probes);

    let catalogs: Vec<ShardedStore> = (0..=SWAPS)
        .map(|t| ShardedStore::from_records(&catalog_records(t), SHARDS))
        .collect();

    // expected[t][j]: the matches for probe j against catalog t, via the
    // batch pipeline the probe path is pinned to.
    let expected: Vec<Vec<Vec<Link>>> = catalogs
        .iter()
        .map(|catalog| {
            let batch = LinkagePipeline::new(blocker, &cmp).run_sharded(&probe_store, catalog);
            probes
                .iter()
                .map(|probe| {
                    batch
                        .matches
                        .iter()
                        .filter(|link| link.external == probe.id)
                        .cloned()
                        .collect()
                })
                .collect()
        })
        .collect();
    for (j, (start, end)) in expected[0].iter().zip(&expected[SWAPS]).enumerate().skip(1) {
        assert!(start.is_empty(), "probe {j} must start unmatched");
        assert!(!end.is_empty(), "probe {j} must end matched");
    }

    let linker = Linker::new(blocker, &cmp, catalogs[0].clone());
    let warmed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let final_epoch = (SWAPS + 1) as u64;

    thread::scope(|scope| {
        for reader in 0..READERS {
            let (linker, probes, expected) = (&linker, &probes, &expected);
            let (warmed, done) = (&warmed, &done);
            scope.spawn(move || {
                let mut scratch = ProbeScratch::new();
                let mut observed = BTreeSet::new();
                for iteration in 0usize.. {
                    let j = (reader + iteration) % probes.len();
                    let hits = linker.probe_with(&probes[j], &mut scratch);
                    let t = usize::try_from(hits.epoch).unwrap() - 1;
                    assert!(
                        t <= SWAPS,
                        "reader {reader}: epoch {} out of range",
                        hits.epoch
                    );
                    assert_links_bit_identical(
                        &hits.matches,
                        &expected[t][j],
                        &format!("reader {reader}, probe {j}, epoch {}", hits.epoch),
                    );
                    observed.insert(hits.epoch);
                    if iteration == 0 {
                        warmed.fetch_add(1, Ordering::SeqCst);
                    }
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                }
                // The final swap is published: a fresh probe must run
                // against the last catalog and see its newest record.
                let j = probes.len() - 1;
                let hits = linker.probe_with(&probes[j], &mut scratch);
                assert_eq!(hits.epoch, final_epoch, "reader {reader}: final epoch");
                assert_links_bit_identical(
                    &hits.matches,
                    &expected[SWAPS][j],
                    &format!("reader {reader}: final probe"),
                );
                observed
            });
        }

        // Writer: wait until every reader has probed the initial epoch at
        // least once, then publish each grown catalog in order.
        while warmed.load(Ordering::SeqCst) < READERS {
            thread::yield_now();
        }
        for (t, catalog) in catalogs.iter().enumerate().skip(1) {
            let sequence = linker.swap(catalog.clone());
            assert_eq!(sequence as usize, t + 1, "swap sequence");
            thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::SeqCst);
    });

    assert_eq!(linker.catalog().load().sequence(), final_epoch);
}

/// With `--features failpoints` the failpoint registry is process-global
/// and the stress tests cross instrumented sites (`serve::build_epoch`,
/// the blocker streams), so every test in this binary serialises on one
/// lock; without the feature the guard is uncontended noise.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn concurrent_probes_see_consistent_epochs_standard() {
    let _serial = serial();
    let blocker = StandardBlocker::new(BlockingKey::per_side(PROBE_PN, LOCAL_PN, 4));
    stress(&blocker);
}

#[test]
fn concurrent_probes_see_consistent_epochs_bigram() {
    let _serial = serial();
    let blocker = BigramBlocker::new(BlockingKey::per_side(PROBE_PN, LOCAL_PN, 0), 0.6);
    stress(&blocker);
}

/// Chaos variant (failpoint builds only): the writer's first republish
/// panics mid-`build_epoch` while 4 readers hammer `probe_with`. The
/// readers must never observe a poisoned lock (`probe_with` would
/// panic), a partial epoch (their links are checked against the exact
/// epoch they report), or a sequence regression; the writer's retry then
/// publishes epoch 2 with no gap.
#[cfg(feature = "failpoints")]
#[test]
fn readers_survive_a_panicked_swap() {
    use classilink_linking::LinkError;

    let _serial = serial();
    fail::teardown();
    let cmp = RecordComparator::single(PROBE_PN, LOCAL_PN, SimilarityMeasure::JaroWinkler)
        .with_thresholds(0.95, 0.5);
    let blocker = StandardBlocker::new(BlockingKey::per_side(PROBE_PN, LOCAL_PN, 4));
    let catalogs: Vec<ShardedStore> = (0..2)
        .map(|t| ShardedStore::from_records(&catalog_records(t), SHARDS))
        .collect();
    // Probe 0 matches in both epochs; the growth probe flips from
    // unmatched to matched at epoch 2 — a torn or stale answer cannot
    // satisfy its reported epoch's expectation.
    let probes: Vec<Record> = vec![probe_record(0), probe_record(BASE_LOCALS + GROWTH_STEP - 1)];
    let probe_store = RecordStore::from_records(&probes);
    let expected: Vec<Vec<Vec<Link>>> = catalogs
        .iter()
        .map(|catalog| {
            let batch = LinkagePipeline::new(&blocker, &cmp).run_sharded(&probe_store, catalog);
            probes
                .iter()
                .map(|probe| {
                    batch
                        .matches
                        .iter()
                        .filter(|link| link.external == probe.id)
                        .cloned()
                        .collect()
                })
                .collect()
        })
        .collect();

    let linker = Linker::new(&blocker, &cmp, catalogs[0].clone());
    let warmed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);

    thread::scope(|scope| {
        for reader in 0..READERS {
            let (linker, probes, expected) = (&linker, &probes, &expected);
            let (warmed, done) = (&warmed, &done);
            scope.spawn(move || {
                let mut scratch = ProbeScratch::new();
                let mut last_epoch = 0u64;
                for iteration in 0usize.. {
                    let j = (reader + iteration) % probes.len();
                    // A poisoned catalog lock or partial epoch would
                    // panic (or mis-answer) right here.
                    let hits = linker.probe_with(&probes[j], &mut scratch);
                    assert!(
                        hits.epoch >= last_epoch,
                        "reader {reader}: sequence regressed {last_epoch} -> {}",
                        hits.epoch
                    );
                    assert!(hits.epoch <= 2, "reader {reader}: epoch out of range");
                    last_epoch = hits.epoch;
                    let t = usize::try_from(hits.epoch).unwrap() - 1;
                    assert_links_bit_identical(
                        &hits.matches,
                        &expected[t][j],
                        &format!("reader {reader}, probe {j}, epoch {}", hits.epoch),
                    );
                    if iteration == 0 {
                        warmed.fetch_add(1, Ordering::SeqCst);
                    }
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                }
            });
        }

        while warmed.load(Ordering::SeqCst) < READERS {
            thread::yield_now();
        }
        // First republish dies mid-build; old epoch keeps serving.
        fail::cfg("serve::build_epoch", "1*panic(chaos mid-swap)->off").unwrap();
        let error = linker.try_swap(catalogs[1].clone()).unwrap_err();
        assert!(
            matches!(error, LinkError::EpochBuildPanicked { .. }),
            "{error:?}"
        );
        assert_eq!(
            linker.catalog().load().sequence(),
            1,
            "failed swap must not publish"
        );
        // Let the readers hammer the surviving epoch for a while before
        // the (now disarmed) retry succeeds with no sequence gap.
        thread::sleep(Duration::from_millis(5));
        fail::remove("serve::build_epoch");
        let sequence = linker.try_swap(catalogs[1].clone()).expect("retry swap");
        assert_eq!(sequence, 2);
        thread::sleep(Duration::from_millis(5));
        done.store(true, Ordering::SeqCst);
    });

    let mut scratch = ProbeScratch::new();
    let hits = linker.probe_with(&probes[1], &mut scratch);
    assert_eq!(hits.epoch, 2);
    assert_links_bit_identical(&hits.matches, &expected[1][1], "post-retry probe");
    assert!(
        !hits.matches.is_empty(),
        "growth probe must match in epoch 2"
    );
}
