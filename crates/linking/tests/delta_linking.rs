//! The delta-linking equivalence guard: on a generated scenario, a
//! catalog grown by [`ShardedStore::append_shards`] and linked
//! incrementally with [`LinkagePipeline::run_sharded_delta`] produces
//! **exactly the new-shard slice of a full re-run** — same links, same
//! scores bit for bit (`f64::to_bits`) — for every built-in blocker
//! (cartesian, standard key, sorted neighbourhood, bigram indexing,
//! classification rules), across {1, 3, 8} base shards × {1, 4}
//! threads. Also pins the append algebra itself: an appended catalog
//! equals a from-scratch build with the same shard boundaries, so the
//! full re-run used as the reference is the honest one.

use classilink_core::{LearnerConfig, PropertySelection, RuleClassifier, RuleLearner};
use classilink_datagen::scenario::{generate, GeneratedScenario, ScenarioConfig};
use classilink_datagen::vocab;
use classilink_linking::blocking::{
    BigramBlocker, Blocker, BlockingKey, CartesianBlocker, RuleBasedBlocker,
    SortedNeighborhoodBlocker, StandardBlocker,
};
use classilink_linking::pipeline::Link;
use classilink_linking::record::Record;
use classilink_linking::{LinkagePipeline, RecordComparator, ShardedStore, SimilarityMeasure};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn key(prefix: usize) -> BlockingKey {
    BlockingKey::per_side(
        vocab::PROVIDER_PART_NUMBER,
        vocab::LOCAL_PART_NUMBER,
        prefix,
    )
}

fn comparator() -> RecordComparator {
    let rule = |left: &str, right: &str, measure, weight| classilink_linking::AttributeRule {
        left_property: left.to_string(),
        right_property: right.to_string(),
        measure,
        weight,
    };
    RecordComparator::new(vec![
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::JaroWinkler,
            3.0,
        ),
        rule(
            vocab::PROVIDER_PART_NUMBER,
            vocab::LOCAL_PART_NUMBER,
            SimilarityMeasure::DiceBigrams,
            1.0,
        ),
        rule(
            vocab::PROVIDER_MANUFACTURER,
            vocab::LOCAL_MANUFACTURER,
            SimilarityMeasure::JaccardTokens,
            1.0,
        ),
    ])
    .with_thresholds(0.92, 0.6)
}

fn classifier(scenario: &GeneratedScenario) -> RuleClassifier {
    let learner = LearnerConfig::default()
        .with_support_threshold(0.01)
        .with_properties(PropertySelection::single(vocab::PROVIDER_PART_NUMBER));
    let outcome = RuleLearner::new(learner.clone())
        .learn(&scenario.training, &scenario.ontology)
        .expect("rule learning on the tiny scenario");
    RuleClassifier::from_outcome(&outcome, &learner).with_min_confidence(0.4)
}

/// A link as comparable data: terms verbatim, score as raw bits — any
/// score divergence between the delta and full paths, however small,
/// fails the equality.
fn bits(link: &Link) -> (String, String, u64) {
    (
        format!("{:?}", link.external),
        format!("{:?}", link.local),
        link.score.to_bits(),
    )
}

/// Grow `base` by the delta records as two appended shards and return
/// `(appended catalog, first new shard index)`.
fn append(base: &ShardedStore, delta_records: &[Record]) -> (ShardedStore, usize) {
    let first_new = base.shard_count();
    let mut delta = base.delta_builder();
    let half = delta_records.len().div_ceil(2).max(1);
    for (i, record) in delta_records.iter().enumerate() {
        if i % half == 0 {
            delta.begin_shard();
        }
        delta.push(record);
    }
    (base.append_shards(delta), first_new)
}

/// The guard: for every base shard count and thread count, the delta
/// run over the appended catalog equals the ≥-first-new-shard slice of
/// the full run, links and accounting both.
fn assert_delta_equals_full_slice(scenario: &GeneratedScenario, blocker: &dyn Blocker) {
    let external = scenario.external_store();
    let locals = scenario.local_store().to_records();
    // ~10% of the catalog arrives as the delta batch — sampled across
    // the whole catalog (not the tail) so the delta is guaranteed to
    // contain linked records and the guard can't go vacuous.
    let (base_records, delta_records): (Vec<Record>, Vec<Record>) = {
        let mut base = Vec::new();
        let mut delta = Vec::new();
        for (i, record) in locals.iter().enumerate() {
            if i % 10 == 7 {
                delta.push(record.clone());
            } else {
                base.push(record.clone());
            }
        }
        (base, delta)
    };
    let cmp = comparator();

    for shard_count in SHARD_COUNTS {
        let base = ShardedStore::from_records(&base_records, shard_count);
        let (appended, first_new) = append(&base, &delta_records);

        // The appended catalog IS a from-scratch catalog with the same
        // boundaries — the full re-run below is an honest reference.
        let mut rebuilt = ShardedStore::builder();
        for s in 0..appended.shard_count() {
            rebuilt.begin_shard();
            for record in appended.shard(s).to_records() {
                rebuilt.push(&record);
            }
        }
        assert_eq!(appended, rebuilt.build(), "append != from-scratch build");

        let delta_start = appended.offset(first_new);
        for threads in THREAD_COUNTS {
            let pipeline = LinkagePipeline::new(blocker, &cmp).with_threads(threads);
            let full = pipeline.run_sharded(&external, &appended);
            let delta = pipeline.run_sharded_delta(&external, &appended, first_new);

            // The full run's links with a local side in the new shards.
            let slice = |links: &[Link]| -> Vec<(String, String, u64)> {
                links
                    .iter()
                    .filter(|link| {
                        appended
                            .index_of(&link.local)
                            .expect("full-run link local is in the catalog")
                            >= delta_start
                    })
                    .map(bits)
                    .collect()
            };
            let context = format!(
                "{}: {shard_count} base shards / {threads} threads",
                blocker.name()
            );
            let delta_matches: Vec<_> = delta.matches.iter().map(bits).collect();
            let delta_possible: Vec<_> = delta.possible.iter().map(bits).collect();
            assert_eq!(delta_matches, slice(&full.matches), "{context}: matches");
            assert_eq!(delta_possible, slice(&full.possible), "{context}: possible");
            assert!(
                !delta_matches.is_empty(),
                "{context}: no delta links — the guard would be vacuous"
            );

            // Accounting covers only the delta work.
            assert_eq!(
                delta.naive_pairs,
                external.len() as u64 * (appended.len() - delta_start) as u64,
                "{context}: naive pairs"
            );
            assert!(
                delta.comparisons <= full.comparisons,
                "{context}: delta compared more than the full run"
            );

            // Degenerate bounds: an at-or-past-the-end first shard is an
            // empty delta; first shard 0 is exactly the full run.
            let empty = pipeline.run_sharded_delta(&external, &appended, appended.shard_count());
            assert_eq!(empty.comparisons, 0, "{context}: empty delta compared");
            assert!(empty.matches.is_empty() && empty.possible.is_empty());
            let everything = pipeline.run_sharded_delta(&external, &appended, 0);
            assert_eq!(everything, full, "{context}: first_new_shard = 0");
        }
    }
}

#[test]
fn cartesian_delta_equals_full_slice() {
    let scenario = generate(&ScenarioConfig::tiny());
    assert_delta_equals_full_slice(&scenario, &CartesianBlocker);
}

#[test]
fn standard_delta_equals_full_slice() {
    let scenario = generate(&ScenarioConfig::tiny());
    assert_delta_equals_full_slice(&scenario, &StandardBlocker::new(key(4)));
}

#[test]
fn sorted_neighborhood_delta_equals_full_slice() {
    // The one blocker whose window walk crosses shard boundaries: the
    // delta restriction must not change which new-shard records fall
    // inside each external's window.
    let scenario = generate(&ScenarioConfig::tiny());
    assert_delta_equals_full_slice(&scenario, &SortedNeighborhoodBlocker::new(key(0), 7));
}

#[test]
fn bigram_delta_equals_full_slice() {
    let scenario = generate(&ScenarioConfig::tiny());
    assert_delta_equals_full_slice(&scenario, &BigramBlocker::new(key(0), 0.5));
}

#[test]
fn rule_based_delta_equals_full_slice() {
    let scenario = generate(&ScenarioConfig::tiny());
    let classifier = classifier(&scenario);
    for fallback in [false, true] {
        let blocker = RuleBasedBlocker::new(&classifier, &scenario.instances, &scenario.ontology)
            .with_fallback(fallback);
        assert_delta_equals_full_slice(&scenario, &blocker);
    }
}
