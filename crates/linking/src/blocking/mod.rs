//! Blocking: generating candidate pairs without comparing everything.
//!
//! The related-work section of the paper surveys the classic families of
//! methods for reducing the number of comparisons — blocking on a key,
//! sorted neighbourhood, bi-gram indexing — and the paper's own contribution
//! is an alternative based on learnt classification rules. This module
//! implements all of them behind one [`Blocker`] trait so that the
//! benchmarks can compare them on the same data (experiment E5 of
//! DESIGN.md).
//!
//! Blockers run on the columnar [`RecordStore`]: they resolve property
//! IRIs to interned ids once per call, emit candidate pairs as record
//! *indices*, and never clone a term or hash an IRI per record.
//!
//! Candidate generation is **streaming and shard-aware**: the pipeline
//! calls [`Blocker::stream_candidates`], which emits per-shard runs of
//! shard-local pairs into a [`CandidateRuns`] sink — those runs are the
//! comparison scheduler's task queues, so no global pair vector is ever
//! materialised. The built-in blockers compute their external-side
//! artifacts (key tables, bigram postings, rule classifications) once
//! per run and read per-record keys and bigrams from the store-level
//! [`KeyIndex`](crate::token_index::KeyIndex) cache, making steady-state
//! blocking allocation-free. The materialising
//! [`Blocker::candidate_pairs`] / [`Blocker::candidate_pairs_sharded`]
//! APIs remain as thin adapters for external callers.

pub mod bigram;
pub mod disjointness;
pub mod key;
pub mod rule_based;
pub mod sorted_neighborhood;
pub mod standard;

pub use bigram::BigramBlocker;
pub use disjointness::DisjointnessFilter;
pub use key::{BlockingKey, KeySide};
pub use rule_based::RuleBasedBlocker;
pub use sorted_neighborhood::SortedNeighborhoodBlocker;
pub use standard::StandardBlocker;

use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;

/// A candidate pair, given as indexes into the external and local record
/// stores handed to the blocker.
pub type CandidatePair = (usize, usize);

/// The streaming blocking sink: per-shard runs of **shard-local**
/// candidate pairs, produced by
/// [`Blocker::stream_candidates`] and consumed directly as the
/// work-stealing comparison scheduler's task queues — the global pair
/// vector, its sort, and the route-back binary search of the old
/// materialising path never exist.
///
/// The sink is reusable: [`stream_candidates`](Blocker::stream_candidates)
/// clears it (capacity retained) before producing, so a long-lived sink
/// makes repeated blocking runs allocation-free in steady state (the
/// output buffers grow once). It also carries the shared per-call
/// scratch (counters, marks) the built-in blockers use, so their probe
/// loops allocate nothing per record either — proved by
/// `crates/linking/tests/zero_alloc.rs`.
#[derive(Debug, Default)]
pub struct CandidateRuns {
    /// Per-shard candidate pairs, shard-local local ids.
    per_shard: Vec<Vec<CandidatePair>>,
    /// Sum of all run lengths — the comparison count, by construction.
    total: u64,
    /// Reusable probe scratch shared by the built-in blockers.
    pub(crate) scratch: RunScratch,
}

/// Reusable per-sink scratch: intersection counters and epoch-stamped
/// visit marks, grown once and reused across streaming calls.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Per-external shared-gram counters (bigram blocking).
    pub counts: Vec<u32>,
    /// Externals with a non-zero counter, for O(touched) reset.
    pub touched: Vec<u32>,
    /// Epoch-stamped marks (rule-based dedup): `marks[i] == epoch` means
    /// "seen in the current epoch".
    pub marks: Vec<u32>,
    epoch: u32,
}

impl RunScratch {
    /// Open a new mark epoch over `len` slots and return its stamp;
    /// stale stamps from earlier epochs read as "unseen".
    pub(crate) fn next_epoch(&mut self, len: usize) -> u32 {
        if self.marks.len() < len {
            self.marks.resize(len, 0);
        }
        if self.epoch == u32::MAX {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

impl CandidateRuns {
    /// An empty sink; the first streaming call sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every run and re-size to `shard_count` shards, retaining
    /// buffer capacity. Called by
    /// [`stream_candidates`](Blocker::stream_candidates) implementations
    /// before producing.
    pub fn reset(&mut self, shard_count: usize) {
        self.per_shard.truncate(shard_count);
        for run in &mut self.per_shard {
            run.clear();
        }
        while self.per_shard.len() < shard_count {
            self.per_shard.push(Vec::new());
        }
        self.total = 0;
    }

    /// Emit one candidate: external record `external` against
    /// **shard-local** record `local` of shard `shard`.
    #[inline]
    pub fn push(&mut self, shard: usize, external: usize, local: usize) {
        self.per_shard[shard].push((external, local));
        self.total += 1;
    }

    /// Number of shards the sink currently holds runs for.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// One shard's candidate run (shard-local local ids).
    pub fn shard(&self, shard: usize) -> &[CandidatePair] {
        &self.per_shard[shard]
    }

    /// Total number of candidates across all shards — the comparison
    /// count of the run.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Keep only the pairs `keep(shard, external, local)` accepts,
    /// updating the total (see
    /// [`DisjointnessFilter::retain_runs`](crate::blocking::DisjointnessFilter::retain_runs)).
    pub fn retain(&mut self, mut keep: impl FnMut(usize, usize, usize) -> bool) {
        let mut total = 0u64;
        for (shard, run) in self.per_shard.iter_mut().enumerate() {
            run.retain(|&(e, l)| keep(shard, e, l));
            total += run.len() as u64;
        }
        self.total = total;
    }

    /// Move one shard's run out of the sink (the single-store adapter
    /// path), leaving an empty run behind.
    pub fn take_shard(&mut self, shard: usize) -> Vec<CandidatePair> {
        let run = std::mem::take(&mut self.per_shard[shard]);
        self.total -= run.len() as u64;
        run
    }

    /// Flatten into one **global**-id pair vector in the legacy
    /// materialised layout: each shard's run sorted by index pair, shards
    /// concatenated in catalog order (exactly what the default
    /// per-shard [`Blocker::candidate_pairs_sharded`] used to produce for
    /// blockers whose per-shard output is sorted).
    pub fn into_global_pairs(self, local: LocalShards<'_>) -> Vec<CandidatePair> {
        let mut pairs = Vec::with_capacity(self.total as usize);
        for (s, mut run) in self.per_shard.into_iter().enumerate() {
            run.sort_unstable();
            let base = local.offset(s);
            pairs.extend(run.into_iter().map(|(e, l)| (e, base + l)));
        }
        pairs
    }
}

/// A strategy that selects which (external, local) record pairs are worth
/// comparing.
pub trait Blocker {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Produce candidate pairs as indexes into `external` and `local`.
    /// Implementations must not return duplicates.
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair>;

    /// Produce candidate pairs against a sharded catalog, with the local
    /// side given as **global** record ids.
    ///
    /// The default implementation runs [`candidate_pairs`](Self::candidate_pairs)
    /// per shard and offsets the shard-local ids back to global ids. For
    /// blockers whose decision for a pair depends only on the two records
    /// themselves (cartesian, standard key blocking, bigram indexing,
    /// rule-based), the per-shard union is **exactly** the single-store
    /// candidate set. Blockers with cross-record state spanning the whole
    /// catalog must override this to preserve that equivalence — see
    /// [`SortedNeighborhoodBlocker`], whose sliding window crosses shard
    /// boundaries.
    ///
    /// This is the **materialising** API, kept for external callers and
    /// as the equivalence reference; the pipeline itself consumes
    /// [`stream_candidates`](Self::stream_candidates).
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut pairs = Vec::new();
        for (s, shard) in local.shards().iter().enumerate() {
            let base = local.offset(s);
            pairs.extend(
                self.candidate_pairs(external, shard)
                    .into_iter()
                    .map(|(e, l)| (e, base + l)),
            );
        }
        pairs
    }

    /// Stream candidate pairs as **per-shard runs of shard-local ids**
    /// into `out` — the pipeline's blocking entry point. The runs feed
    /// the work-stealing scheduler's per-shard task queues directly, so
    /// no global pair vector is materialised, nothing is sorted, and no
    /// global id is ever routed back to a shard; the sum of run lengths
    /// is the comparison count.
    ///
    /// Implementations must clear `out` (via [`CandidateRuns::reset`])
    /// and then produce, across all shards, exactly the candidate set of
    /// the materialising APIs: the built-in blockers stream natively
    /// (external-side artifacts computed once and shared across shards,
    /// keys and bigrams served by the store-level
    /// [`KeyIndex`](crate::token_index::KeyIndex)); the default
    /// implementation adapts the materialising path — per-shard
    /// [`candidate_pairs`](Self::candidate_pairs) for a single-store
    /// view, a routed [`candidate_pairs_sharded`](Self::candidate_pairs_sharded)
    /// call otherwise — so external `Blocker` impls (including ones that
    /// override the sharded method with cross-shard semantics) stay
    /// correct unchanged.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        match local.sharded() {
            Some(store) => {
                for (e, global) in self.candidate_pairs_sharded(external, store) {
                    let (shard, shard_local) = store.locate(global);
                    out.push(shard, e, shard_local);
                }
            }
            None => {
                for (e, l) in self.candidate_pairs(external, local.shard(0)) {
                    out.push(0, e, l);
                }
            }
        }
    }
}

/// The exhaustive baseline: every external record is compared with every
/// local record (`|SE| × |SL|` pairs). This is the naive linking space the
/// paper sets out to reduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianBlocker;

impl Blocker for CartesianBlocker {
    fn name(&self) -> &'static str {
        "cartesian"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut pairs = Vec::with_capacity(external.len() * local.len());
        for e in 0..external.len() {
            for l in 0..local.len() {
                pairs.push((e, l));
            }
        }
        pairs
    }

    /// Native streaming: every external × every shard record, emitted
    /// per shard without an intermediate global vector.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        for (s, shard) in local.shards().iter().enumerate() {
            for e in 0..external.len() {
                for l in 0..shard.len() {
                    out.push(s, e, l);
                }
            }
        }
    }
}

/// Summary statistics of one blocking run, evaluated against a gold standard
/// of true pairs.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct BlockingStats {
    /// Number of candidate pairs produced.
    pub candidate_pairs: u64,
    /// Size of the cartesian product.
    pub total_pairs: u64,
    /// Number of true pairs covered by the candidates.
    pub true_pairs_found: u64,
    /// Number of true pairs in the gold standard.
    pub true_pairs_total: u64,
    /// `1 − candidates / total`: fraction of comparisons avoided.
    pub reduction_ratio: f64,
    /// `found / total true pairs` (recall of the blocking step).
    pub pairs_completeness: f64,
    /// `found / candidates` (precision of the blocking step).
    pub pairs_quality: f64,
}

impl BlockingStats {
    /// Evaluate a candidate set against a gold standard of true index pairs.
    pub fn evaluate(
        candidates: &[CandidatePair],
        true_pairs: &std::collections::HashSet<CandidatePair>,
        external_count: usize,
        local_count: usize,
    ) -> Self {
        let candidate_pairs = candidates.len() as u64;
        let total_pairs = external_count as u64 * local_count as u64;
        let found = candidates.iter().filter(|p| true_pairs.contains(p)).count() as u64;
        let reduction_ratio = if total_pairs == 0 {
            0.0
        } else {
            1.0 - candidate_pairs as f64 / total_pairs as f64
        };
        let pairs_completeness = if true_pairs.is_empty() {
            1.0
        } else {
            found as f64 / true_pairs.len() as f64
        };
        let pairs_quality = if candidate_pairs == 0 {
            0.0
        } else {
            found as f64 / candidate_pairs as f64
        };
        BlockingStats {
            candidate_pairs,
            total_pairs,
            true_pairs_found: found,
            true_pairs_total: true_pairs.len() as u64,
            reduction_ratio,
            pairs_completeness,
            pairs_quality,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::record::Record;
    use classilink_rdf::Term;

    pub const EXT_PN: &str = "http://provider.e.org/v#ref";
    pub const LOC_PN: &str = "http://local.e.org/v#partNumber";

    pub fn ext_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://provider.e.org/item/{i}")));
        r.add(EXT_PN, pn);
        r
    }

    pub fn loc_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
        r.add(LOC_PN, pn);
        r
    }

    /// 4 external and 5 local records; externals 0..4 truly match locals 0..4.
    pub fn small_dataset() -> (Vec<Record>, Vec<Record>) {
        let external = vec![
            ext_record(0, "CRCW0805-10K"),
            ext_record(1, "CRCW0603-22K"),
            ext_record(2, "T83-A225"),
            ext_record(3, "LM317-TO220"),
        ];
        let local = vec![
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "CRCW0603-22K"),
            loc_record(2, "T83-A225"),
            loc_record(3, "LM317-TO220"),
            loc_record(4, "1N4148-DO35"),
        ];
        (external, local)
    }

    /// The small dataset, columnarised.
    pub fn small_stores() -> (RecordStore, RecordStore) {
        let (external, local) = small_dataset();
        (
            RecordStore::from_records(&external),
            RecordStore::from_records(&local),
        )
    }

    /// An empty pair of stores.
    pub fn empty_stores() -> (RecordStore, RecordStore) {
        (
            RecordStore::from_records(&[]),
            RecordStore::from_records(&[]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cartesian_produces_all_pairs() {
        let (external, local) = small_stores();
        let pairs = CartesianBlocker.candidate_pairs(&external, &local);
        assert_eq!(pairs.len(), 20);
        assert_eq!(CartesianBlocker.name(), "cartesian");
        let unique: HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn cartesian_with_empty_sides() {
        let (external, empty) = {
            let (e, _) = small_stores();
            (e, RecordStore::from_records(&[]))
        };
        assert!(CartesianBlocker
            .candidate_pairs(&external, &empty)
            .is_empty());
        assert!(CartesianBlocker
            .candidate_pairs(&empty, &external)
            .is_empty());
    }

    #[test]
    fn stats_for_perfect_blocking() {
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates: Vec<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.candidate_pairs, 4);
        assert_eq!(stats.total_pairs, 20);
        assert_eq!(stats.true_pairs_found, 4);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 1.0);
        assert!((stats.reduction_ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_for_cartesian_blocking() {
        let (external, local) = small_stores();
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates = CartesianBlocker.candidate_pairs(&external, &local);
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!((stats.pairs_quality - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_cases() {
        let stats = BlockingStats::evaluate(&[], &HashSet::new(), 0, 0);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 0.0);
    }

    #[test]
    fn candidate_runs_push_reset_and_totals() {
        let mut runs = CandidateRuns::new();
        runs.reset(3);
        assert_eq!(runs.shard_count(), 3);
        runs.push(0, 1, 2);
        runs.push(2, 0, 0);
        runs.push(2, 4, 1);
        assert_eq!(runs.total(), 3);
        assert_eq!(runs.shard(0), &[(1, 2)]);
        assert!(runs.shard(1).is_empty());
        assert_eq!(runs.shard(2), &[(0, 0), (4, 1)]);
        // Retain drops pairs and keeps the total honest.
        runs.retain(|shard, e, _l| shard == 2 && e > 0);
        assert_eq!(runs.total(), 1);
        assert_eq!(runs.shard(2), &[(4, 1)]);
        // take_shard moves a run out.
        let run = runs.take_shard(2);
        assert_eq!(run, vec![(4, 1)]);
        assert_eq!(runs.total(), 0);
        // Reset re-sizes (down and up) and clears.
        runs.push(1, 9, 9);
        runs.reset(1);
        assert_eq!(runs.shard_count(), 1);
        assert_eq!(runs.total(), 0);
        assert!(runs.shard(0).is_empty());
    }

    #[test]
    fn candidate_runs_globalise_in_legacy_order() {
        let records: Vec<_> = (0..6).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&records, 3); // shards of 2
        let mut runs = CandidateRuns::new();
        runs.reset(3);
        runs.push(0, 1, 1); // global (1, 1)
        runs.push(0, 0, 0); // global (0, 0) — sorted within the shard
        runs.push(1, 0, 1); // global (0, 3)
        runs.push(2, 2, 0); // global (2, 4)
        let pairs = runs.into_global_pairs((&sharded).into());
        assert_eq!(pairs, vec![(0, 0), (1, 1), (0, 3), (2, 4)]);
    }

    /// A blocker that only overrides the materialising sharded API (the
    /// pre-streaming extension point, e.g. with cross-shard semantics):
    /// the default `stream_candidates` must route its global pairs back
    /// to shard-local runs unchanged.
    struct LegacySharded;

    impl Blocker for LegacySharded {
        fn name(&self) -> &'static str {
            "legacy-sharded"
        }

        fn candidate_pairs(
            &self,
            external: &RecordStore,
            local: &RecordStore,
        ) -> Vec<CandidatePair> {
            // Pair record i with record i (what the sharded override
            // below would NOT produce per shard — the test relies on the
            // two APIs disagreeing to prove which one streaming adapts).
            (0..external.len().min(local.len()))
                .map(|i| (i, i))
                .collect()
        }

        fn candidate_pairs_sharded(
            &self,
            external: &RecordStore,
            local: &ShardedStore,
        ) -> Vec<CandidatePair> {
            // Cross-shard semantics: every external with the *last* record.
            (0..external.len()).map(|e| (e, local.len() - 1)).collect()
        }
    }

    #[test]
    fn default_stream_adapts_the_materialising_apis() {
        let (external, _) = small_stores();
        let local_records: Vec<_> = (0..5).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&local_records, 2);
        let mut runs = CandidateRuns::new();
        // Sharded view → routed candidate_pairs_sharded (last record is
        // shard 1, local id 1 with shards of 3 + 2).
        LegacySharded.stream_candidates(&external, (&sharded).into(), &mut runs);
        assert_eq!(runs.total(), 4);
        assert!(runs.shard(0).is_empty());
        assert_eq!(runs.shard(1), &[(0, 1), (1, 1), (2, 1), (3, 1)]);
        // Single-store view → candidate_pairs.
        let local = RecordStore::from_records(&local_records);
        LegacySharded.stream_candidates(
            &external,
            crate::shard::LocalShards::single(&local),
            &mut runs,
        );
        assert_eq!(runs.shard_count(), 1);
        assert_eq!(runs.shard(0), &[(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn cartesian_stream_covers_every_shard_pair() {
        let (external, _) = small_stores();
        let local_records: Vec<_> = (0..5).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&local_records, 2);
        let mut runs = CandidateRuns::new();
        CartesianBlocker.stream_candidates(&external, (&sharded).into(), &mut runs);
        assert_eq!(runs.total(), 20);
        let globalised: HashSet<_> = runs
            .into_global_pairs((&sharded).into())
            .into_iter()
            .collect();
        let local = RecordStore::from_records(&local_records);
        let expected: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(globalised, expected);
    }
}
