//! Blocking: generating candidate pairs without comparing everything.
//!
//! The related-work section of the paper surveys the classic families of
//! methods for reducing the number of comparisons — blocking on a key,
//! sorted neighbourhood, bi-gram indexing — and the paper's own contribution
//! is an alternative based on learnt classification rules. This module
//! implements all of them behind one [`Blocker`] trait so that the
//! benchmarks can compare them on the same data (experiment E5 of
//! DESIGN.md).
//!
//! Blockers run on the columnar [`RecordStore`]: they resolve property
//! IRIs to interned ids once per call, emit candidate pairs as record
//! *indices*, and never clone a term or hash an IRI per record.
//!
//! Candidate generation is **streaming and shard-aware**: the pipeline
//! calls [`Blocker::stream_candidates`], which emits per-shard runs of
//! shard-local pairs into a [`CandidateRuns`] sink — those runs are the
//! comparison scheduler's task queues, so no global pair vector is ever
//! materialised. The built-in blockers compute their external-side
//! artifacts (key tables, bigram postings, rule classifications) once
//! per run and read per-record keys and bigrams from the store-level
//! [`KeyIndex`] cache, making steady-state
//! blocking allocation-free. The materialising
//! [`Blocker::candidate_pairs`] / [`Blocker::candidate_pairs_sharded`]
//! APIs remain as thin adapters for external callers.

pub mod bigram;
pub mod disjointness;
pub mod key;
pub mod rule_based;
pub mod sorted_neighborhood;
pub mod standard;

pub use bigram::BigramBlocker;
pub use disjointness::DisjointnessFilter;
pub use key::{BlockingKey, KeySide};
pub use rule_based::RuleBasedBlocker;
pub use sorted_neighborhood::SortedNeighborhoodBlocker;
pub use standard::StandardBlocker;

use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;
use crate::token_index::KeyIndex;
use std::sync::Arc;

/// A candidate pair, given as indexes into the external and local record
/// stores handed to the blocker.
pub type CandidatePair = (usize, usize);

/// How one [`CandidateBlock`]'s local side is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunKind {
    /// A contiguous span of shard-local ids, `start .. start + len`.
    Span,
    /// `len` entries of the shard [`KeyIndex`]'s key-sorted record
    /// table, starting at `start`.
    Keyed,
    /// `len` entries of the sink's per-shard explicit-locals arena,
    /// starting at `start`.
    Explicit,
}

/// One run-length candidate block: one external record against a run of
/// shard-local records — the unit the comparison scheduler claims and
/// decodes (see [`CandidateRuns`]).
///
/// The left side of a block is constant *by construction*, which is
/// what lets the comparison phase hoist the external record's resolved
/// column values and token views once per block instead of re-fetching
/// them per pair. The local side is one of three encodings
/// ([`LocalRun`]): a contiguous span (cartesian, rule-based fallback),
/// a slice of the shard [`KeyIndex`]'s key-sorted record table
/// (standard blocking: one block per external × equal-range), or a
/// slice of the sink's explicit-locals arena (sparse producers: bigram,
/// sorted-neighbourhood windows, rule extents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateBlock {
    /// The external record every pair of this block shares.
    pub(crate) external: u32,
    /// Encoding-specific start (span origin, key-table index, or
    /// explicit-arena index).
    pub(crate) start: u32,
    /// Number of local records — the block's comparison count.
    pub(crate) len: u32,
    /// Which encoding `start`/`len` address.
    pub(crate) kind: RunKind,
}

impl CandidateBlock {
    /// The external record id shared by every pair of this block.
    pub fn external(&self) -> usize {
        self.external as usize
    }

    /// Number of candidate pairs this block encodes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the block encodes no pair (never produced by the
    /// built-in blockers — empty runs are skipped at push time).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Crate-internal decode against the backing arenas the comparison
    /// scheduler borrows from the sink (`locals` = the shard's explicit
    /// arena, `table` = the shard key index's sorted record table,
    /// empty when no keyed block exists).
    ///
    /// # Panics
    /// Panics when the block's range exceeds its backing arena (sink
    /// API misuse; the scheduler validates with
    /// [`bounds_valid`](Self::bounds_valid) first).
    pub(crate) fn decode<'a>(&self, locals: &'a [u32], table: &'a [u32]) -> LocalRun<'a> {
        match self.kind {
            RunKind::Span => LocalRun::Span {
                start: self.start as usize,
                len: self.len as usize,
            },
            RunKind::Keyed => LocalRun::Keyed(&table[self.start as usize..][..self.len as usize]),
            RunKind::Explicit => {
                LocalRun::Explicit(&locals[self.start as usize..][..self.len as usize])
            }
        }
    }

    /// Crate-internal once-per-run bounds check: `true` when every pair
    /// this block decodes to stays inside a local store of `store_len`
    /// records. `table_matches_store` asserts the key table was built
    /// from that store (its ids are then `< store_len` by
    /// construction); explicit ids are covered by the sink's tracked
    /// per-shard maximum, so only the arena range is checked here.
    pub(crate) fn bounds_valid(
        &self,
        store_len: usize,
        locals_len: usize,
        table_len: usize,
        table_matches_store: bool,
    ) -> bool {
        let end = self.start as usize + self.len as usize;
        match self.kind {
            RunKind::Span => end <= store_len,
            RunKind::Keyed => table_matches_store && end <= table_len,
            RunKind::Explicit => end <= locals_len,
        }
    }

    /// Crate-internal: `true` when [`decode`](Self::decode) will not
    /// panic against arenas of these lengths (the cold-path guard for
    /// externally built sinks; span blocks always decode).
    pub(crate) fn decodable(&self, locals_len: usize, table_len: usize) -> bool {
        let end = self.start as usize + self.len as usize;
        match self.kind {
            RunKind::Span => true,
            RunKind::Keyed => end <= table_len,
            RunKind::Explicit => end <= locals_len,
        }
    }
}

/// A decoded view of one [`CandidateBlock`]'s local side.
#[derive(Debug, Clone, Copy)]
pub enum LocalRun<'a> {
    /// A contiguous span of shard-local ids.
    Span {
        /// First shard-local id of the span.
        start: usize,
        /// Number of consecutive ids.
        len: usize,
    },
    /// Shard-local ids from the shard [`KeyIndex`]'s key-sorted record
    /// table (one standard-blocking block).
    Keyed(&'a [u32]),
    /// Explicitly enumerated shard-local ids (sparse producers).
    Explicit(&'a [u32]),
}

impl<'a> LocalRun<'a> {
    /// Number of local records in the run.
    pub fn len(&self) -> usize {
        match self {
            LocalRun::Span { len, .. } => *len,
            LocalRun::Keyed(ids) | LocalRun::Explicit(ids) => ids.len(),
        }
    }

    /// `true` when the run holds no local record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th shard-local id of the run.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> usize {
        match self {
            LocalRun::Span { start, len } => {
                assert!(i < *len, "run index {i} out of range ({len})");
                start + i
            }
            LocalRun::Keyed(ids) | LocalRun::Explicit(ids) => ids[i] as usize,
        }
    }

    /// Iterate the shard-local ids in run order (the iterator borrows
    /// the backing arena, not this — run-of-a-temporary decoding works).
    pub fn iter(&self) -> LocalRunIter<'a> {
        LocalRunIter {
            inner: match self {
                LocalRun::Span { start, len } => RunIterInner::Span(*start..*start + *len),
                LocalRun::Keyed(ids) | LocalRun::Explicit(ids) => RunIterInner::Slice(ids.iter()),
            },
        }
    }
}

impl<'a> IntoIterator for &LocalRun<'a> {
    type Item = usize;
    type IntoIter = LocalRunIter<'a>;

    fn into_iter(self) -> LocalRunIter<'a> {
        self.iter()
    }
}

/// Iterator over one [`LocalRun`]'s shard-local ids.
#[derive(Debug, Clone)]
pub struct LocalRunIter<'a> {
    inner: RunIterInner<'a>,
}

#[derive(Debug, Clone)]
enum RunIterInner<'a> {
    Span(std::ops::Range<usize>),
    Slice(std::slice::Iter<'a, u32>),
}

impl Iterator for LocalRunIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match &mut self.inner {
            RunIterInner::Span(range) => range.next(),
            RunIterInner::Slice(ids) => ids.next().map(|&l| l as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            RunIterInner::Span(range) => range.size_hint(),
            RunIterInner::Slice(ids) => ids.size_hint(),
        }
    }
}

impl ExactSizeIterator for LocalRunIter<'_> {}

/// One shard's share of the sink: its candidate blocks, the
/// explicit-locals arena they slice, and (for keyed blocks) the shard's
/// key index.
#[derive(Debug, Default)]
struct ShardRun {
    /// The run-length candidate blocks, in emission order.
    blocks: Vec<CandidateBlock>,
    /// Explicit shard-local ids; [`RunKind::Explicit`] blocks own
    /// disjoint consecutive slices of this arena.
    locals: Vec<u32>,
    /// The key index whose sorted record table [`RunKind::Keyed`]
    /// blocks slice (set by the blocker before pushing keyed blocks).
    key_table: Option<Arc<KeyIndex>>,
    /// Largest id in `locals` — one per-run bound for the whole arena,
    /// so the comparison decode loop needs no per-pair check.
    explicit_max: u32,
    /// Sum of this shard's block lengths — its comparison count.
    count: u64,
}

impl ShardRun {
    fn clear(&mut self) {
        self.blocks.clear();
        self.locals.clear();
        self.key_table = None;
        self.explicit_max = 0;
        self.count = 0;
    }

    /// Decode one block's local side (the block must belong to this
    /// shard).
    ///
    /// # Panics
    /// Panics on a keyed block when no key table was attached, or when
    /// the block's range exceeds its backing table/arena — both are
    /// sink-API misuse, impossible through the built-in blockers.
    fn local_run(&self, block: &CandidateBlock) -> LocalRun<'_> {
        block.decode(&self.locals, block_table(block, self.key_table.as_ref()))
    }

    /// Append one explicit pair, coalescing with the last block when it
    /// is the explicit run of the same external ending at the arena tip
    /// — the single owner of the explicit-encoding invariant, shared by
    /// [`CandidateRuns::push`] and [`CandidateRuns::retain`].
    #[inline]
    fn push_explicit(&mut self, external: u32, local: u32) {
        self.explicit_max = self.explicit_max.max(local);
        match self.blocks.last_mut() {
            Some(block)
                if block.kind == RunKind::Explicit
                    && block.external == external
                    && block.start as usize + block.len as usize == self.locals.len() =>
            {
                block.len += 1;
            }
            _ => self.blocks.push(CandidateBlock {
                external,
                start: run_u32(self.locals.len()),
                len: 1,
                kind: RunKind::Explicit,
            }),
        }
        self.locals.push(local);
        self.count += 1;
    }
}

/// The streaming blocking sink: per-shard **run-length candidate
/// blocks** over **shard-local** ids, produced by
/// [`Blocker::stream_candidates`] and consumed directly as the
/// work-stealing comparison scheduler's task queues — the global pair
/// vector, its sort, and the route-back binary search of the old
/// materialising path never exist, and dense blockers no longer pay one
/// sink entry per pair.
///
/// Every block pairs **one external record** with a [`LocalRun`]:
///
/// * [`push_span`](Self::push_span) — a contiguous span of shard-local
///   ids (cartesian, rule-based fallback): one block per external ×
///   shard, O(1) however many pairs it encodes;
/// * [`push_keyed`](Self::push_keyed) — a range of the shard
///   [`KeyIndex`]'s key-sorted record table (standard blocking): one
///   block per external × equal-range, again O(1);
/// * [`push`](Self::push) — one explicit pair; consecutive pushes for
///   the same (shard, external) coalesce into one explicit block over
///   the sink's locals arena (bigram, sorted-neighbourhood, rule
///   extents).
///
/// For dense producers queue memory is therefore O(runs), not
/// O(candidates) — [`queue_bytes`](Self::queue_bytes) vs
/// [`pair_bytes`](Self::pair_bytes) quantifies the drop (~100–5000×
/// for cartesian and big standard blocks on the paper preset). The
/// sparse producers keep their pushes per external consecutive (bigram
/// emits per probe, sorted neighbourhood anchors its window walk on
/// the external entries), so even they coalesce into one block per
/// (shard, external) and stay below the flat encoding — the bench
/// validator asserts `queue_bytes ≤ pair_bytes` for every
/// non-cartesian blocker.
///
/// The sink is reusable: [`stream_candidates`](Blocker::stream_candidates)
/// clears it (capacity retained) before producing, so a long-lived sink
/// makes repeated blocking runs allocation-free in steady state (the
/// output buffers grow once). It also carries the shared per-call
/// scratch (counters, marks) the built-in blockers use, so their probe
/// loops allocate nothing per record either — proved by
/// `crates/linking/tests/zero_alloc.rs`.
#[derive(Debug, Default)]
pub struct CandidateRuns {
    /// Per-shard candidate blocks and their backing arenas.
    per_shard: Vec<ShardRun>,
    /// Sum of all block lengths — the comparison count, by construction.
    total: u64,
    /// First shard the sink accepts candidates for (see
    /// [`restrict_to_shards_from`](Self::restrict_to_shards_from));
    /// pushes to earlier shards are silently dropped. 0 = accept all.
    first_active: usize,
    /// Reusable probe scratch shared by the built-in blockers.
    pub(crate) scratch: RunScratch,
}

/// Reusable per-sink scratch: intersection counters and epoch-stamped
/// visit marks, grown once and reused across streaming calls.
#[derive(Debug, Default)]
pub(crate) struct RunScratch {
    /// Per-local shared-gram counter cells (bigram blocking), packed
    /// `(count_epoch << 5) | count` so the array stays `u32` (and
    /// L1-sized on paper-scale shards): a new probe invalidates every
    /// cell by bumping the epoch instead of resetting — cells tagged
    /// with an older epoch read as count 0. The 5-bit count saturates
    /// at 30 (the decide loop falls back to the exact verification scan
    /// past that), and count 31 is the positional filter's *dropped*
    /// sentinel: re-touching a dropped record is one compare instead of
    /// a re-derived bound.
    pub counts: Vec<u32>,
    /// Locals whose count reached their decision floor
    /// `min(PREFIX_ORDER, required)` — exactly the records the decide
    /// loop must visit (free rejections never enter).
    pub touched: Vec<u32>,
    /// Epoch-stamped marks (rule-based dedup): `marks[i] == epoch` means
    /// "seen in the current epoch".
    pub marks: Vec<u32>,
    /// `tceil[m] = ceil(threshold · m)` — the integer overlap-threshold
    /// table the filtered bigram probe replaces per-pair float math
    /// with. Rebuilt per streaming call (the threshold is per-blocker),
    /// within retained capacity.
    pub tceil: Vec<u32>,
    /// External gram id → shard gram id translation (`u32::MAX` =
    /// absent from the shard), rebuilt per shard by a sorted merge of
    /// the two gram tables.
    pub gram_map: Vec<u32>,
    /// One external's grams resolved to the probed shard, re-sorted
    /// into the shard's (df, gram id) order.
    pub probe: Vec<ProbeGram>,
    /// Filter effectiveness counters of the last bigram streaming call.
    pub filter_stats: BigramFilterStats,
    epoch: u32,
    /// Epoch of the packed [`counts`](Self::counts) cells — 27 usable
    /// bits; the wrap clears the array.
    count_epoch: u32,
}

/// One probe-side gram of the filtered bigram join: an external gram
/// translated to the shard's gram table, carrying the shard document
/// frequency it is ordered by (`df == 0` ⟺ absent from the shard).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProbeGram {
    /// Shard document frequency (0 when the shard lacks the gram).
    pub df: u32,
    /// Shard gram id, or `u32::MAX` when absent.
    pub shard_gram: u32,
}

/// How hard the filtered bigram probe's pruning worked on one
/// streaming call, summed over every (external, shard) probe — the
/// `blocking/bigram/filter_stats` bench line tracks these across PRs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BigramFilterStats {
    /// Df-ordered probe grams never walked because no unseen local
    /// could still reach its overlap threshold (prefix filter), plus
    /// walked grams whose length-filtered window was empty.
    pub grams_skipped_prefix: u64,
    /// Posting entries outside the per-gram maximum-set-size window
    /// (length filter).
    pub postings_skipped_length: u64,
    /// Posting entries whose first touch could no longer reach the
    /// threshold given both records' remaining df-ordered grams
    /// (positional filter).
    pub postings_skipped_position: u64,
    /// Counted-but-undecided candidates finished by the exact
    /// mark-probing verification scan.
    pub verify_merges: u64,
}

impl RunScratch {
    /// Open a new mark epoch over `len` slots and return its stamp;
    /// stale stamps from earlier epochs read as "unseen". The
    /// (theoretical) wrap clears the array — an epoch value may
    /// otherwise alias a stale pre-wrap stamp.
    pub(crate) fn next_epoch(&mut self, len: usize) -> u32 {
        if self.marks.len() < len {
            self.marks.resize(len, 0);
        }
        if self.epoch == u32::MAX {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Open a new epoch for the packed [`counts`](Self::counts) cells
    /// over `len` slots and return its tag. The 27-bit wrap (once per
    /// ~134 M probes) clears the array, so a fresh epoch can never
    /// alias a stale cell.
    pub(crate) fn next_count_epoch(&mut self, len: usize) -> u32 {
        if self.counts.len() < len {
            self.counts.resize(len, 0);
        }
        if self.count_epoch >= (1 << 27) - 1 {
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.count_epoch = 0;
        }
        self.count_epoch += 1;
        self.count_epoch
    }
}

/// Convert an emitted id to the sink's `u32` encoding, failing loudly
/// on overflow (stores are `u32`-bounded, so built-in blockers never
/// hit this).
#[inline]
fn run_u32(n: usize) -> u32 {
    u32::try_from(n).expect("candidate block field exceeds u32::MAX; shard the store")
}

/// The arena a block's decode reads besides the explicit locals: the
/// shard key table's sorted records for keyed blocks, nothing
/// otherwise — the single owner of the keyed-decode rule, shared by
/// [`ShardRun::local_run`] and [`CandidateRuns::retain`].
///
/// # Panics
/// Panics on a keyed block with no attached key table (sink API
/// misuse).
fn block_table<'a>(block: &CandidateBlock, key_table: Option<&'a Arc<KeyIndex>>) -> &'a [u32] {
    match block.kind {
        RunKind::Keyed => key_table
            .expect("keyed candidate block without a key table")
            .sorted_records(),
        _ => &[],
    }
}

impl CandidateRuns {
    /// An empty sink; the first streaming call sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every run and re-size to `shard_count` shards, retaining
    /// buffer capacity. Called by
    /// [`stream_candidates`](Blocker::stream_candidates) implementations
    /// before producing.
    pub fn reset(&mut self, shard_count: usize) {
        self.per_shard.truncate(shard_count);
        for run in &mut self.per_shard {
            run.clear();
        }
        while self.per_shard.len() < shard_count {
            self.per_shard.push(ShardRun::default());
        }
        self.total = 0;
        // Deliberately NOT cleared: the restriction is a property of the
        // sink's consumer (the delta pipeline), not of one producer call,
        // and `reset` is what every `stream_candidates` impl runs first.
    }

    /// Restrict the sink to shards `first..`: candidates a blocker emits
    /// for earlier shards are **silently dropped** (not an error — a
    /// blocker with global state, like sorted neighbourhood, must still
    /// walk the whole catalog to emit the right new-shard candidates).
    /// This is the delta-linking contract of
    /// [`LinkagePipeline::run_sharded_delta`](crate::pipeline::LinkagePipeline::run_sharded_delta):
    /// the surviving blocks are exactly the `first..` slice of an
    /// unrestricted run. The restriction is sticky across
    /// [`reset`](Self::reset); construct a fresh sink to lift it.
    pub fn restrict_to_shards_from(&mut self, first: usize) {
        self.first_active = first;
    }

    /// `true` when the sink accepts candidates for `shard` — blockers
    /// whose per-shard work is independent check this to skip the
    /// entire shard's probe loop (and its index builds) under a delta
    /// restriction.
    #[inline]
    pub fn shard_active(&self, shard: usize) -> bool {
        shard >= self.first_active
    }

    /// Emit one candidate: external record `external` against
    /// **shard-local** record `local` of shard `shard`. Consecutive
    /// pushes for the same `(shard, external)` coalesce into one
    /// explicit block.
    #[inline]
    pub fn push(&mut self, shard: usize, external: usize, local: usize) {
        if shard < self.first_active {
            return;
        }
        self.per_shard[shard].push_explicit(run_u32(external), run_u32(local));
        self.total += 1;
    }

    /// Emit one **span** block: `external` against the contiguous
    /// shard-local ids `start .. start + len` of shard `shard` (the
    /// cartesian / fallback-to-all encoding — O(1) per block, however
    /// many pairs it covers). Empty spans are skipped.
    #[inline]
    pub fn push_span(&mut self, shard: usize, external: usize, start: usize, len: usize) {
        if len == 0 || shard < self.first_active {
            return;
        }
        let run = &mut self.per_shard[shard];
        run.blocks.push(CandidateBlock {
            external: run_u32(external),
            start: run_u32(start),
            len: run_u32(len),
            kind: RunKind::Span,
        });
        run.count += len as u64;
        self.total += len as u64;
    }

    /// Emit one **keyed** block: `external` against the `len` records
    /// at `table_start` of the shard's key-sorted record table (the
    /// standard-blocking encoding: one block per external ×
    /// equal-range). The shard's [`KeyIndex`] must have been attached
    /// with [`set_key_table`](Self::set_key_table) first. Empty ranges
    /// are skipped.
    #[inline]
    pub fn push_keyed(&mut self, shard: usize, external: usize, table_start: usize, len: usize) {
        if len == 0 || shard < self.first_active {
            return;
        }
        let run = &mut self.per_shard[shard];
        debug_assert!(
            run.key_table.is_some(),
            "push_keyed before set_key_table({shard}, …)"
        );
        run.blocks.push(CandidateBlock {
            external: run_u32(external),
            start: run_u32(table_start),
            len: run_u32(len),
            kind: RunKind::Keyed,
        });
        run.count += len as u64;
        self.total += len as u64;
    }

    /// Attach the [`KeyIndex`] whose sorted record table this shard's
    /// keyed blocks slice. Must precede any
    /// [`push_keyed`](Self::push_keyed) for the shard; the sink keeps
    /// the `Arc` alive for the decode path.
    pub fn set_key_table(&mut self, shard: usize, table: Arc<KeyIndex>) {
        self.per_shard[shard].key_table = Some(table);
    }

    /// Number of shards the sink currently holds runs for.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// One shard's candidate blocks, in emission order.
    pub fn blocks(&self, shard: usize) -> &[CandidateBlock] {
        &self.per_shard[shard].blocks
    }

    /// Decode one shard's `index`-th block: its external record id and
    /// its local run.
    pub fn run(&self, shard: usize, index: usize) -> (usize, LocalRun<'_>) {
        let run = &self.per_shard[shard];
        let block = &run.blocks[index];
        (block.external as usize, run.local_run(block))
    }

    /// Decode one shard's candidates as explicit pairs, in block
    /// emission order (the materialising adapters' and tests' view of
    /// the compressed runs).
    pub fn pairs(&self, shard: usize) -> impl Iterator<Item = CandidatePair> + '_ {
        let run = &self.per_shard[shard];
        run.blocks.iter().flat_map(move |block| {
            let external = block.external as usize;
            run.local_run(block).iter().map(move |l| (external, l))
        })
    }

    /// Filter effectiveness counters of the last
    /// [`BigramBlocker`] streaming call into this sink (all zero for
    /// other producers — only the filtered bigram probe writes them).
    pub fn bigram_filter_stats(&self) -> BigramFilterStats {
        self.scratch.filter_stats
    }

    /// One shard's comparison count (the sum of its block lengths).
    pub fn shard_total(&self, shard: usize) -> u64 {
        self.per_shard[shard].count
    }

    /// Total number of candidates across all shards — the comparison
    /// count of the run.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes the sink's queue structures occupy: blocks plus the
    /// explicit-locals arenas (capacity, since the sink retains it).
    /// O(runs) — compare [`pair_bytes`](Self::pair_bytes).
    pub fn queue_bytes(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|run| {
                (run.blocks.capacity() * std::mem::size_of::<CandidateBlock>()
                    + run.locals.capacity() * std::mem::size_of::<u32>()) as u64
            })
            .sum()
    }

    /// Bytes the same candidates would occupy in the flat
    /// one-`(usize, usize)`-per-pair encoding this sink replaced —
    /// O(candidates), the denominator of the run-length saving.
    pub fn pair_bytes(&self) -> u64 {
        self.total * std::mem::size_of::<CandidatePair>() as u64
    }

    /// Crate-internal: one shard's explicit-locals arena (the decode
    /// target of [`RunKind::Explicit`] blocks).
    pub(crate) fn shard_locals(&self, shard: usize) -> &[u32] {
        &self.per_shard[shard].locals
    }

    /// Crate-internal: one shard's attached key table, if any.
    pub(crate) fn shard_key_table(&self, shard: usize) -> Option<&Arc<KeyIndex>> {
        self.per_shard[shard].key_table.as_ref()
    }

    /// Crate-internal: the largest id in one shard's explicit arena —
    /// the one bound the scheduler checks instead of a per-pair check.
    pub(crate) fn shard_explicit_max(&self, shard: usize) -> u32 {
        self.per_shard[shard].explicit_max
    }

    /// Keep only the pairs `keep(shard, external, local)` accepts,
    /// updating the total (see
    /// [`DisjointnessFilter::retain_runs`](crate::blocking::DisjointnessFilter::retain_runs)).
    ///
    /// Surviving pairs are re-encoded as explicit runs (a filtered span
    /// or key range is no longer contiguous), so this is the one sink
    /// operation that is O(retained candidates) rather than O(runs).
    pub fn retain(&mut self, mut keep: impl FnMut(usize, usize, usize) -> bool) {
        let mut total = 0u64;
        for (shard, run) in self.per_shard.iter_mut().enumerate() {
            let old_blocks = std::mem::take(&mut run.blocks);
            let old_locals = std::mem::take(&mut run.locals);
            let key_table = run.key_table.take();
            let mut rebuilt = ShardRun::default();
            rebuilt.locals.reserve(old_locals.len());
            for block in &old_blocks {
                let table = block_table(block, key_table.as_ref());
                for local in block.decode(&old_locals, table).iter() {
                    if keep(shard, block.external as usize, local) {
                        rebuilt.push_explicit(block.external, run_u32(local));
                    }
                }
            }
            total += rebuilt.count;
            *run = rebuilt;
        }
        self.total = total;
    }

    /// Decode one shard's candidates into a fresh pair vector and clear
    /// the shard (the single-store adapter path).
    pub fn take_shard(&mut self, shard: usize) -> Vec<CandidatePair> {
        let pairs: Vec<CandidatePair> = self.pairs(shard).collect();
        self.total -= self.per_shard[shard].count;
        self.per_shard[shard].clear();
        pairs
    }

    /// Flatten into one **global**-id pair vector in the legacy
    /// materialised layout: each shard's decoded run sorted by index
    /// pair, shards concatenated in catalog order (exactly what the
    /// default per-shard [`Blocker::candidate_pairs_sharded`] used to
    /// produce for blockers whose per-shard output is sorted).
    pub fn into_global_pairs(self, local: LocalShards<'_>) -> Vec<CandidatePair> {
        let mut pairs = Vec::with_capacity(self.total as usize);
        for s in 0..self.per_shard.len() {
            let start = pairs.len();
            pairs.extend(self.pairs(s));
            pairs[start..].sort_unstable();
            let base = local.offset(s);
            for pair in &mut pairs[start..] {
                pair.1 += base;
            }
        }
        pairs
    }
}

/// A strategy that selects which (external, local) record pairs are worth
/// comparing.
pub trait Blocker {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Produce candidate pairs as indexes into `external` and `local`.
    /// Implementations must not return duplicates.
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair>;

    /// Produce candidate pairs against a sharded catalog, with the local
    /// side given as **global** record ids.
    ///
    /// The default implementation runs [`candidate_pairs`](Self::candidate_pairs)
    /// per shard and offsets the shard-local ids back to global ids. For
    /// blockers whose decision for a pair depends only on the two records
    /// themselves (cartesian, standard key blocking, bigram indexing,
    /// rule-based), the per-shard union is **exactly** the single-store
    /// candidate set. Blockers with cross-record state spanning the whole
    /// catalog must override this to preserve that equivalence — see
    /// [`SortedNeighborhoodBlocker`], whose sliding window crosses shard
    /// boundaries.
    ///
    /// This is the **materialising** API, kept for external callers and
    /// as the equivalence reference; the pipeline itself consumes
    /// [`stream_candidates`](Self::stream_candidates).
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut pairs = Vec::new();
        for s in 0..local.shard_count() {
            let base = local.offset(s);
            pairs.extend(
                self.candidate_pairs(external, local.shard(s))
                    .into_iter()
                    .map(|(e, l)| (e, base + l)),
            );
        }
        pairs
    }

    /// Stream candidate pairs as **per-shard runs of shard-local ids**
    /// into `out` — the pipeline's blocking entry point. The runs feed
    /// the work-stealing scheduler's per-shard task queues directly, so
    /// no global pair vector is materialised, nothing is sorted, and no
    /// global id is ever routed back to a shard; the sum of run lengths
    /// is the comparison count.
    ///
    /// Implementations must clear `out` (via [`CandidateRuns::reset`])
    /// and then produce, across all shards, exactly the candidate set of
    /// the materialising APIs: the built-in blockers stream natively
    /// (external-side artifacts computed once and shared across shards,
    /// keys and bigrams served by the store-level
    /// [`KeyIndex`]); the default
    /// implementation adapts the materialising path — per-shard
    /// [`candidate_pairs`](Self::candidate_pairs) for a single-store
    /// view, a routed [`candidate_pairs_sharded`](Self::candidate_pairs_sharded)
    /// call otherwise — so external `Blocker` impls (including ones that
    /// override the sharded method with cross-shard semantics) stay
    /// correct unchanged.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        match local.sharded() {
            Some(store) => {
                for (e, global) in self.candidate_pairs_sharded(external, store) {
                    let (shard, shard_local) = store.locate(global);
                    out.push(shard, e, shard_local);
                }
            }
            None => {
                for (e, l) in self.candidate_pairs(external, local.shard(0)) {
                    out.push(0, e, l);
                }
            }
        }
    }

    /// Eagerly build the **local-side artifacts** this blocker reads
    /// while streaming — key indexes, sort ladders, bigram postings and
    /// threshold layouts. The serving layer
    /// ([`Linker`](crate::serve::Linker)) calls this once per published
    /// catalog epoch so no probe ever pays a first-call index build;
    /// batch callers never need it (the same builds happen lazily on
    /// first stream). The default does nothing (cartesian and external
    /// impls keep no local-side state).
    fn warm(&self, local: LocalShards<'_>) {
        let _ = local;
    }
}

/// The exhaustive baseline: every external record is compared with every
/// local record (`|SE| × |SL|` pairs). This is the naive linking space the
/// paper sets out to reduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianBlocker;

impl Blocker for CartesianBlocker {
    fn name(&self) -> &'static str {
        "cartesian"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut pairs = Vec::with_capacity(external.len() * local.len());
        for e in 0..external.len() {
            for l in 0..local.len() {
                pairs.push((e, l));
            }
        }
        pairs
    }

    /// Native streaming: every external × every shard record, as **one
    /// span block per external per shard** — O(externals × shards)
    /// blocks for O(externals × records) candidates, the densest
    /// possible run-length compression.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        fail::fail_point!("blocking::cartesian");
        for (s, shard) in local.iter().enumerate() {
            if !out.shard_active(s) {
                continue;
            }
            for e in 0..external.len() {
                out.push_span(s, e, 0, shard.len());
            }
        }
    }
}

/// Summary statistics of one blocking run, evaluated against a gold standard
/// of true pairs.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct BlockingStats {
    /// Number of candidate pairs produced.
    pub candidate_pairs: u64,
    /// Size of the cartesian product.
    pub total_pairs: u64,
    /// Number of true pairs covered by the candidates.
    pub true_pairs_found: u64,
    /// Number of true pairs in the gold standard.
    pub true_pairs_total: u64,
    /// `1 − candidates / total`: fraction of comparisons avoided.
    pub reduction_ratio: f64,
    /// `found / total true pairs` (recall of the blocking step).
    pub pairs_completeness: f64,
    /// `found / candidates` (precision of the blocking step).
    pub pairs_quality: f64,
}

impl BlockingStats {
    /// Evaluate a candidate set against a gold standard of true index pairs.
    pub fn evaluate(
        candidates: &[CandidatePair],
        true_pairs: &std::collections::HashSet<CandidatePair>,
        external_count: usize,
        local_count: usize,
    ) -> Self {
        let candidate_pairs = candidates.len() as u64;
        let total_pairs = external_count as u64 * local_count as u64;
        let found = candidates.iter().filter(|p| true_pairs.contains(p)).count() as u64;
        let reduction_ratio = if total_pairs == 0 {
            0.0
        } else {
            1.0 - candidate_pairs as f64 / total_pairs as f64
        };
        let pairs_completeness = if true_pairs.is_empty() {
            1.0
        } else {
            found as f64 / true_pairs.len() as f64
        };
        let pairs_quality = if candidate_pairs == 0 {
            0.0
        } else {
            found as f64 / candidate_pairs as f64
        };
        BlockingStats {
            candidate_pairs,
            total_pairs,
            true_pairs_found: found,
            true_pairs_total: true_pairs.len() as u64,
            reduction_ratio,
            pairs_completeness,
            pairs_quality,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::record::Record;
    use classilink_rdf::Term;

    pub const EXT_PN: &str = "http://provider.e.org/v#ref";
    pub const LOC_PN: &str = "http://local.e.org/v#partNumber";

    pub fn ext_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://provider.e.org/item/{i}")));
        r.add(EXT_PN, pn);
        r
    }

    pub fn loc_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
        r.add(LOC_PN, pn);
        r
    }

    /// 4 external and 5 local records; externals 0..4 truly match locals 0..4.
    pub fn small_dataset() -> (Vec<Record>, Vec<Record>) {
        let external = vec![
            ext_record(0, "CRCW0805-10K"),
            ext_record(1, "CRCW0603-22K"),
            ext_record(2, "T83-A225"),
            ext_record(3, "LM317-TO220"),
        ];
        let local = vec![
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "CRCW0603-22K"),
            loc_record(2, "T83-A225"),
            loc_record(3, "LM317-TO220"),
            loc_record(4, "1N4148-DO35"),
        ];
        (external, local)
    }

    /// The small dataset, columnarised.
    pub fn small_stores() -> (RecordStore, RecordStore) {
        let (external, local) = small_dataset();
        (
            RecordStore::from_records(&external),
            RecordStore::from_records(&local),
        )
    }

    /// An empty pair of stores.
    pub fn empty_stores() -> (RecordStore, RecordStore) {
        (
            RecordStore::from_records(&[]),
            RecordStore::from_records(&[]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cartesian_produces_all_pairs() {
        let (external, local) = small_stores();
        let pairs = CartesianBlocker.candidate_pairs(&external, &local);
        assert_eq!(pairs.len(), 20);
        assert_eq!(CartesianBlocker.name(), "cartesian");
        let unique: HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn cartesian_with_empty_sides() {
        let (external, empty) = {
            let (e, _) = small_stores();
            (e, RecordStore::from_records(&[]))
        };
        assert!(CartesianBlocker
            .candidate_pairs(&external, &empty)
            .is_empty());
        assert!(CartesianBlocker
            .candidate_pairs(&empty, &external)
            .is_empty());
    }

    #[test]
    fn stats_for_perfect_blocking() {
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates: Vec<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.candidate_pairs, 4);
        assert_eq!(stats.total_pairs, 20);
        assert_eq!(stats.true_pairs_found, 4);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 1.0);
        assert!((stats.reduction_ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_for_cartesian_blocking() {
        let (external, local) = small_stores();
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates = CartesianBlocker.candidate_pairs(&external, &local);
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!((stats.pairs_quality - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_cases() {
        let stats = BlockingStats::evaluate(&[], &HashSet::new(), 0, 0);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 0.0);
    }

    fn shard_pairs(runs: &CandidateRuns, shard: usize) -> Vec<CandidatePair> {
        runs.pairs(shard).collect()
    }

    #[test]
    fn candidate_runs_push_reset_and_totals() {
        let mut runs = CandidateRuns::new();
        runs.reset(3);
        assert_eq!(runs.shard_count(), 3);
        runs.push(0, 1, 2);
        runs.push(2, 0, 0);
        runs.push(2, 4, 1);
        assert_eq!(runs.total(), 3);
        assert_eq!(shard_pairs(&runs, 0), vec![(1, 2)]);
        assert!(shard_pairs(&runs, 1).is_empty());
        assert_eq!(shard_pairs(&runs, 2), vec![(0, 0), (4, 1)]);
        assert_eq!(runs.shard_total(2), 2);
        // Retain drops pairs and keeps the total honest.
        runs.retain(|shard, e, _l| shard == 2 && e > 0);
        assert_eq!(runs.total(), 1);
        assert_eq!(shard_pairs(&runs, 2), vec![(4, 1)]);
        // take_shard moves a run out.
        let run = runs.take_shard(2);
        assert_eq!(run, vec![(4, 1)]);
        assert_eq!(runs.total(), 0);
        // Reset re-sizes (down and up) and clears.
        runs.push(1, 9, 9);
        runs.reset(1);
        assert_eq!(runs.shard_count(), 1);
        assert_eq!(runs.total(), 0);
        assert!(shard_pairs(&runs, 0).is_empty());
    }

    #[test]
    fn consecutive_pushes_coalesce_into_one_explicit_block() {
        let mut runs = CandidateRuns::new();
        runs.reset(2);
        // Same (shard, external) back to back — one block; interleaving
        // another shard does not break the coalescing (per-shard arenas).
        runs.push(0, 7, 1);
        runs.push(1, 7, 0);
        runs.push(0, 7, 3);
        runs.push(0, 8, 4);
        assert_eq!(runs.blocks(0).len(), 2);
        assert_eq!(runs.blocks(1).len(), 1);
        let (external, run) = runs.run(0, 0);
        assert_eq!(external, 7);
        assert_eq!(run.len(), 2);
        assert_eq!((run.get(0), run.get(1)), (1, 3));
        assert_eq!(shard_pairs(&runs, 0), vec![(7, 1), (7, 3), (8, 4)]);
    }

    #[test]
    fn span_blocks_decode_to_contiguous_pairs() {
        let mut runs = CandidateRuns::new();
        runs.reset(1);
        runs.push_span(0, 3, 2, 4);
        runs.push_span(0, 5, 0, 0); // empty span is skipped
        assert_eq!(runs.total(), 4);
        assert_eq!(runs.blocks(0).len(), 1);
        let (external, run) = runs.run(0, 0);
        assert_eq!(external, 3);
        assert!(matches!(run, LocalRun::Span { start: 2, len: 4 }));
        assert_eq!(run.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(shard_pairs(&runs, 0), vec![(3, 2), (3, 3), (3, 4), (3, 5)]);
        // Queue memory is per block, not per pair: a dense span's byte
        // ratio is ~len × the pair encoding.
        let mut dense = CandidateRuns::new();
        dense.reset(1);
        dense.push_span(0, 0, 0, 1000);
        assert!(dense.queue_bytes() * 10 < dense.pair_bytes());
        // Retain re-encodes the surviving span tail as an explicit run.
        runs.retain(|_, _, l| l >= 4);
        assert_eq!(runs.total(), 2);
        assert_eq!(shard_pairs(&runs, 0), vec![(3, 4), (3, 5)]);
    }

    #[test]
    fn keyed_blocks_decode_through_the_key_table() {
        let (_, local) = small_stores();
        let side = BlockingKey::per_side(EXT_PN, LOC_PN, 4).local_side(&local);
        let index = local.key_index(&side);
        let range = index.key_range("crcw");
        assert_eq!(range.len(), 2);
        let mut runs = CandidateRuns::new();
        runs.reset(1);
        runs.set_key_table(0, index.clone());
        runs.push_keyed(0, 9, range.start, range.len());
        runs.push_keyed(0, 9, 0, 0); // empty range skipped
        assert_eq!(runs.total(), 2);
        let (external, run) = runs.run(0, 0);
        assert_eq!(external, 9);
        let decoded: Vec<usize> = run.iter().collect();
        assert_eq!(
            decoded,
            index
                .records_with_key("crcw")
                .iter()
                .map(|&r| r as usize)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn candidate_runs_globalise_in_legacy_order() {
        let records: Vec<_> = (0..6).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&records, 3); // shards of 2
        let mut runs = CandidateRuns::new();
        runs.reset(3);
        runs.push(0, 1, 1); // global (1, 1)
        runs.push(0, 0, 0); // global (0, 0) — sorted within the shard
        runs.push(1, 0, 1); // global (0, 3)
        runs.push(2, 2, 0); // global (2, 4)
        let pairs = runs.into_global_pairs((&sharded).into());
        assert_eq!(pairs, vec![(0, 0), (1, 1), (0, 3), (2, 4)]);
    }

    /// A blocker that only overrides the materialising sharded API (the
    /// pre-streaming extension point, e.g. with cross-shard semantics):
    /// the default `stream_candidates` must route its global pairs back
    /// to shard-local runs unchanged.
    struct LegacySharded;

    impl Blocker for LegacySharded {
        fn name(&self) -> &'static str {
            "legacy-sharded"
        }

        fn candidate_pairs(
            &self,
            external: &RecordStore,
            local: &RecordStore,
        ) -> Vec<CandidatePair> {
            // Pair record i with record i (what the sharded override
            // below would NOT produce per shard — the test relies on the
            // two APIs disagreeing to prove which one streaming adapts).
            (0..external.len().min(local.len()))
                .map(|i| (i, i))
                .collect()
        }

        fn candidate_pairs_sharded(
            &self,
            external: &RecordStore,
            local: &ShardedStore,
        ) -> Vec<CandidatePair> {
            // Cross-shard semantics: every external with the *last* record.
            (0..external.len()).map(|e| (e, local.len() - 1)).collect()
        }
    }

    #[test]
    fn default_stream_adapts_the_materialising_apis() {
        let (external, _) = small_stores();
        let local_records: Vec<_> = (0..5).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&local_records, 2);
        let mut runs = CandidateRuns::new();
        // Sharded view → routed candidate_pairs_sharded (last record is
        // shard 1, local id 1 with shards of 3 + 2).
        LegacySharded.stream_candidates(&external, (&sharded).into(), &mut runs);
        assert_eq!(runs.total(), 4);
        assert!(shard_pairs(&runs, 0).is_empty());
        assert_eq!(shard_pairs(&runs, 1), vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
        // Single-store view → candidate_pairs.
        let local = RecordStore::from_records(&local_records);
        LegacySharded.stream_candidates(
            &external,
            crate::shard::LocalShards::single(&local),
            &mut runs,
        );
        assert_eq!(runs.shard_count(), 1);
        assert_eq!(shard_pairs(&runs, 0), vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn cartesian_stream_covers_every_shard_pair() {
        let (external, _) = small_stores();
        let local_records: Vec<_> = (0..5).map(|i| loc_record(i, "PN")).collect();
        let sharded = crate::shard::ShardedStore::from_records(&local_records, 2);
        let mut runs = CandidateRuns::new();
        CartesianBlocker.stream_candidates(&external, (&sharded).into(), &mut runs);
        assert_eq!(runs.total(), 20);
        let globalised: HashSet<_> = runs
            .into_global_pairs((&sharded).into())
            .into_iter()
            .collect();
        let local = RecordStore::from_records(&local_records);
        let expected: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(globalised, expected);
    }
}
