//! Blocking: generating candidate pairs without comparing everything.
//!
//! The related-work section of the paper surveys the classic families of
//! methods for reducing the number of comparisons — blocking on a key,
//! sorted neighbourhood, bi-gram indexing — and the paper's own contribution
//! is an alternative based on learnt classification rules. This module
//! implements all of them behind one [`Blocker`] trait so that the
//! benchmarks can compare them on the same data (experiment E5 of
//! DESIGN.md).
//!
//! Blockers run on the columnar [`RecordStore`]: they resolve property
//! IRIs to interned ids once per call, emit candidate pairs as record
//! *indices*, and never clone a term or hash an IRI per record.

pub mod bigram;
pub mod disjointness;
pub mod key;
pub mod rule_based;
pub mod sorted_neighborhood;
pub mod standard;

pub use bigram::BigramBlocker;
pub use disjointness::DisjointnessFilter;
pub use key::{BlockingKey, KeySide};
pub use rule_based::RuleBasedBlocker;
pub use sorted_neighborhood::SortedNeighborhoodBlocker;
pub use standard::StandardBlocker;

use crate::shard::ShardedStore;
use crate::store::RecordStore;

/// A candidate pair, given as indexes into the external and local record
/// stores handed to the blocker.
pub type CandidatePair = (usize, usize);

/// A strategy that selects which (external, local) record pairs are worth
/// comparing.
pub trait Blocker {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Produce candidate pairs as indexes into `external` and `local`.
    /// Implementations must not return duplicates.
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair>;

    /// Produce candidate pairs against a sharded catalog, with the local
    /// side given as **global** record ids.
    ///
    /// The default implementation runs [`candidate_pairs`](Self::candidate_pairs)
    /// per shard and offsets the shard-local ids back to global ids. For
    /// blockers whose decision for a pair depends only on the two records
    /// themselves (cartesian, standard key blocking, bigram indexing,
    /// rule-based), the per-shard union is **exactly** the single-store
    /// candidate set. Blockers with cross-record state spanning the whole
    /// catalog must override this to preserve that equivalence — see
    /// [`SortedNeighborhoodBlocker`], whose sliding window crosses shard
    /// boundaries.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut pairs = Vec::new();
        for (s, shard) in local.shards().iter().enumerate() {
            let base = local.offset(s);
            pairs.extend(
                self.candidate_pairs(external, shard)
                    .into_iter()
                    .map(|(e, l)| (e, base + l)),
            );
        }
        pairs
    }
}

/// The exhaustive baseline: every external record is compared with every
/// local record (`|SE| × |SL|` pairs). This is the naive linking space the
/// paper sets out to reduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianBlocker;

impl Blocker for CartesianBlocker {
    fn name(&self) -> &'static str {
        "cartesian"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut pairs = Vec::with_capacity(external.len() * local.len());
        for e in 0..external.len() {
            for l in 0..local.len() {
                pairs.push((e, l));
            }
        }
        pairs
    }
}

/// Summary statistics of one blocking run, evaluated against a gold standard
/// of true pairs.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct BlockingStats {
    /// Number of candidate pairs produced.
    pub candidate_pairs: u64,
    /// Size of the cartesian product.
    pub total_pairs: u64,
    /// Number of true pairs covered by the candidates.
    pub true_pairs_found: u64,
    /// Number of true pairs in the gold standard.
    pub true_pairs_total: u64,
    /// `1 − candidates / total`: fraction of comparisons avoided.
    pub reduction_ratio: f64,
    /// `found / total true pairs` (recall of the blocking step).
    pub pairs_completeness: f64,
    /// `found / candidates` (precision of the blocking step).
    pub pairs_quality: f64,
}

impl BlockingStats {
    /// Evaluate a candidate set against a gold standard of true index pairs.
    pub fn evaluate(
        candidates: &[CandidatePair],
        true_pairs: &std::collections::HashSet<CandidatePair>,
        external_count: usize,
        local_count: usize,
    ) -> Self {
        let candidate_pairs = candidates.len() as u64;
        let total_pairs = external_count as u64 * local_count as u64;
        let found = candidates.iter().filter(|p| true_pairs.contains(p)).count() as u64;
        let reduction_ratio = if total_pairs == 0 {
            0.0
        } else {
            1.0 - candidate_pairs as f64 / total_pairs as f64
        };
        let pairs_completeness = if true_pairs.is_empty() {
            1.0
        } else {
            found as f64 / true_pairs.len() as f64
        };
        let pairs_quality = if candidate_pairs == 0 {
            0.0
        } else {
            found as f64 / candidate_pairs as f64
        };
        BlockingStats {
            candidate_pairs,
            total_pairs,
            true_pairs_found: found,
            true_pairs_total: true_pairs.len() as u64,
            reduction_ratio,
            pairs_completeness,
            pairs_quality,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::record::Record;
    use classilink_rdf::Term;

    pub const EXT_PN: &str = "http://provider.e.org/v#ref";
    pub const LOC_PN: &str = "http://local.e.org/v#partNumber";

    pub fn ext_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://provider.e.org/item/{i}")));
        r.add(EXT_PN, pn);
        r
    }

    pub fn loc_record(i: usize, pn: &str) -> Record {
        let mut r = Record::new(Term::iri(format!("http://local.e.org/prod/{i}")));
        r.add(LOC_PN, pn);
        r
    }

    /// 4 external and 5 local records; externals 0..4 truly match locals 0..4.
    pub fn small_dataset() -> (Vec<Record>, Vec<Record>) {
        let external = vec![
            ext_record(0, "CRCW0805-10K"),
            ext_record(1, "CRCW0603-22K"),
            ext_record(2, "T83-A225"),
            ext_record(3, "LM317-TO220"),
        ];
        let local = vec![
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "CRCW0603-22K"),
            loc_record(2, "T83-A225"),
            loc_record(3, "LM317-TO220"),
            loc_record(4, "1N4148-DO35"),
        ];
        (external, local)
    }

    /// The small dataset, columnarised.
    pub fn small_stores() -> (RecordStore, RecordStore) {
        let (external, local) = small_dataset();
        (
            RecordStore::from_records(&external),
            RecordStore::from_records(&local),
        )
    }

    /// An empty pair of stores.
    pub fn empty_stores() -> (RecordStore, RecordStore) {
        (
            RecordStore::from_records(&[]),
            RecordStore::from_records(&[]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cartesian_produces_all_pairs() {
        let (external, local) = small_stores();
        let pairs = CartesianBlocker.candidate_pairs(&external, &local);
        assert_eq!(pairs.len(), 20);
        assert_eq!(CartesianBlocker.name(), "cartesian");
        let unique: HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn cartesian_with_empty_sides() {
        let (external, empty) = {
            let (e, _) = small_stores();
            (e, RecordStore::from_records(&[]))
        };
        assert!(CartesianBlocker
            .candidate_pairs(&external, &empty)
            .is_empty());
        assert!(CartesianBlocker
            .candidate_pairs(&empty, &external)
            .is_empty());
    }

    #[test]
    fn stats_for_perfect_blocking() {
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates: Vec<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.candidate_pairs, 4);
        assert_eq!(stats.total_pairs, 20);
        assert_eq!(stats.true_pairs_found, 4);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 1.0);
        assert!((stats.reduction_ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_for_cartesian_blocking() {
        let (external, local) = small_stores();
        let true_pairs: HashSet<CandidatePair> = (0..4).map(|i| (i, i)).collect();
        let candidates = CartesianBlocker.candidate_pairs(&external, &local);
        let stats = BlockingStats::evaluate(&candidates, &true_pairs, 4, 5);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!((stats.pairs_quality - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_cases() {
        let stats = BlockingStats::evaluate(&[], &HashSet::new(), 0, 0);
        assert_eq!(stats.reduction_ratio, 0.0);
        assert_eq!(stats.pairs_completeness, 1.0);
        assert_eq!(stats.pairs_quality, 0.0);
    }
}
