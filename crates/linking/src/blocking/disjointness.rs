//! Class-disjointness filtering.
//!
//! Related work of the paper: "In [Saïs et al. 2009], class disjunctions are
//! used to reduce the reconciliation space but such approaches cannot be used
//! when the data that will be integrated are not described using the ontology
//! vocabulary." The filter below implements that idea for completeness: given
//! class assignments on both sides, candidate pairs whose classes are
//! declared disjoint are removed. In the paper's setting the external classes
//! are unknown, which is exactly the gap the classification rules fill — the
//! benchmarks use this filter only in the oracle ablation.

use super::{CandidatePair, CandidateRuns};
use crate::shard::LocalShards;
use classilink_ontology::{ClassId, Ontology};

/// Removes candidate pairs whose two sides belong to disjoint classes.
#[derive(Debug, Clone)]
pub struct DisjointnessFilter<'a> {
    ontology: &'a Ontology,
}

impl<'a> DisjointnessFilter<'a> {
    /// A filter over the given ontology.
    pub fn new(ontology: &'a Ontology) -> Self {
        DisjointnessFilter { ontology }
    }

    /// `true` when the pair of class sets is compatible (no declared
    /// disjointness between any external class and any local class). Items
    /// with unknown classes (empty slices) are always compatible — without
    /// schema knowledge nothing can be pruned.
    pub fn compatible(&self, external_classes: &[ClassId], local_classes: &[ClassId]) -> bool {
        for e in external_classes {
            for l in local_classes {
                if self.ontology.are_disjoint(*e, *l) {
                    return false;
                }
            }
        }
        true
    }

    /// The streaming counterpart of [`filter`](Self::filter): drop the
    /// incompatible pairs from a [`CandidateRuns`] sink in place,
    /// per-shard local ids offset to the **global** ids that index
    /// `local_classes`. Every candidate block is decoded, filtered, and
    /// the survivors re-encoded as explicit runs (a filtered span or
    /// key range is no longer contiguous); the sink's comparison total
    /// is updated, so the filtered runs can feed the pipeline's task
    /// queues directly.
    pub fn retain_runs(
        &self,
        runs: &mut CandidateRuns,
        local: LocalShards<'_>,
        external_classes: &[Vec<ClassId>],
        local_classes: &[Vec<ClassId>],
    ) {
        runs.retain(|shard, e, l| {
            let global = local.offset(shard) + l;
            let ext = external_classes.get(e).map(Vec::as_slice).unwrap_or(&[]);
            let loc = local_classes.get(global).map(Vec::as_slice).unwrap_or(&[]);
            self.compatible(ext, loc)
        });
    }

    /// Filter a candidate-pair list given per-record class assignments.
    /// `external_classes[e]` / `local_classes[l]` give the classes of the
    /// records at those indexes.
    pub fn filter(
        &self,
        candidates: &[CandidatePair],
        external_classes: &[Vec<ClassId>],
        local_classes: &[Vec<ClassId>],
    ) -> Vec<CandidatePair> {
        candidates
            .iter()
            .copied()
            .filter(|(e, l)| {
                let ext = external_classes.get(*e).map(Vec::as_slice).unwrap_or(&[]);
                let loc = local_classes.get(*l).map(Vec::as_slice).unwrap_or(&[]);
                self.compatible(ext, loc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_ontology::OntologyBuilder;

    fn ontology() -> (Ontology, ClassId, ClassId, ClassId) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let resistor = b.class("Resistor", Some(component));
        let capacitor = b.class("Capacitor", Some(component));
        b.disjoint(resistor, capacitor);
        (b.build(), component, resistor, capacitor)
    }

    #[test]
    fn disjoint_pairs_are_removed() {
        let (onto, _, resistor, capacitor) = ontology();
        let filter = DisjointnessFilter::new(&onto);
        let candidates = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let external_classes = vec![vec![resistor], vec![capacitor]];
        let local_classes = vec![vec![resistor], vec![capacitor]];
        let kept = filter.filter(&candidates, &external_classes, &local_classes);
        assert_eq!(kept, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn unknown_classes_are_never_pruned() {
        let (onto, _, resistor, _) = ontology();
        let filter = DisjointnessFilter::new(&onto);
        let candidates = vec![(0, 0), (0, 1)];
        let external_classes = vec![vec![]];
        let local_classes = vec![vec![resistor], vec![]];
        let kept = filter.filter(&candidates, &external_classes, &local_classes);
        assert_eq!(kept, candidates);
        assert!(filter.compatible(&[], &[resistor]));
    }

    #[test]
    fn compatible_classes_pass() {
        let (onto, component, resistor, _) = ontology();
        let filter = DisjointnessFilter::new(&onto);
        assert!(filter.compatible(&[resistor], &[component]));
        assert!(filter.compatible(&[resistor], &[resistor]));
    }

    #[test]
    fn retain_runs_matches_filter_on_global_ids() {
        use crate::blocking::{Blocker, CandidateRuns, CartesianBlocker};
        use crate::record::Record;
        use crate::shard::ShardedStore;
        use crate::store::RecordStore;
        use classilink_rdf::Term;

        let (onto, _, resistor, capacitor) = ontology();
        let filter = DisjointnessFilter::new(&onto);
        let records: Vec<Record> = (0..5)
            .map(|i| Record::new(Term::iri(format!("http://e.org/item/{i}"))))
            .collect();
        let external = RecordStore::from_records(&records[..2]);
        let sharded = ShardedStore::from_records(&records, 2);
        let external_classes = vec![vec![resistor], vec![capacitor]];
        let local_classes: Vec<Vec<ClassId>> = (0..5)
            .map(|l| vec![if l % 2 == 0 { resistor } else { capacitor }])
            .collect();

        let mut runs = CandidateRuns::new();
        CartesianBlocker.stream_candidates(&external, (&sharded).into(), &mut runs);
        filter.retain_runs(
            &mut runs,
            (&sharded).into(),
            &external_classes,
            &local_classes,
        );
        let streamed = runs.into_global_pairs((&sharded).into());

        let all = CartesianBlocker.candidate_pairs_sharded(&external, &sharded);
        let expected = filter.filter(&all, &external_classes, &local_classes);
        assert_eq!(streamed.len(), expected.len());
        let streamed: std::collections::HashSet<_> = streamed.into_iter().collect();
        let expected: std::collections::HashSet<_> = expected.into_iter().collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn out_of_range_indexes_default_to_unknown() {
        let (onto, _, resistor, capacitor) = ontology();
        let filter = DisjointnessFilter::new(&onto);
        let candidates = vec![(5, 7)];
        let kept = filter.filter(&candidates, &[vec![resistor]], &[vec![capacitor]]);
        assert_eq!(kept, candidates);
    }
}
