//! Blocking keys: how one record is reduced to a short comparable key.
//!
//! The related work describes keys such as "persons that share the same
//! first five characters of their last name belong to the same block" and
//! sorted-neighbourhood sorting keys. [`BlockingKey`] captures these
//! variants.

use crate::record::Record;
use serde::{Deserialize, Serialize};

/// A recipe for turning a record into a blocking/sorting key string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingKey {
    /// Property IRI used on external records.
    pub external_property: String,
    /// Property IRI used on local records (schemas differ, so the two sides
    /// may use different property names for the same information).
    pub local_property: String,
    /// Keep only the first `prefix_length` characters of the normalised
    /// value; `0` keeps the whole value.
    pub prefix_length: usize,
    /// Strip every non-alphanumeric character before truncating.
    pub alphanumeric_only: bool,
}

impl BlockingKey {
    /// A key over the same property IRI on both sides.
    pub fn shared(property: impl Into<String>, prefix_length: usize) -> Self {
        let p = property.into();
        BlockingKey {
            external_property: p.clone(),
            local_property: p,
            prefix_length,
            alphanumeric_only: true,
        }
    }

    /// A key with different property IRIs per side.
    pub fn per_side(
        external_property: impl Into<String>,
        local_property: impl Into<String>,
        prefix_length: usize,
    ) -> Self {
        BlockingKey {
            external_property: external_property.into(),
            local_property: local_property.into(),
            prefix_length,
            alphanumeric_only: true,
        }
    }

    fn normalise(&self, value: &str) -> String {
        let lowered = value.to_lowercase();
        let filtered: String = if self.alphanumeric_only {
            lowered.chars().filter(|c| c.is_alphanumeric()).collect()
        } else {
            lowered
        };
        if self.prefix_length == 0 {
            filtered
        } else {
            filtered.chars().take(self.prefix_length).collect()
        }
    }

    /// The key of an external record (empty string when the property is
    /// missing).
    pub fn external_key(&self, record: &Record) -> String {
        self.normalise(record.first(&self.external_property).unwrap_or(""))
    }

    /// The key of a local record.
    pub fn local_key(&self, record: &Record) -> String {
        self.normalise(record.first(&self.local_property).unwrap_or(""))
    }

    /// The full (untruncated) normalised value of the relevant property, used
    /// as a sorting key by the sorted-neighbourhood method.
    pub fn sort_value(&self, record: &Record, is_external: bool) -> String {
        let property = if is_external {
            &self.external_property
        } else {
            &self.local_property
        };
        let lowered = record.first(property).unwrap_or("").to_lowercase();
        if self.alphanumeric_only {
            lowered.chars().filter(|c| c.is_alphanumeric()).collect()
        } else {
            lowered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::{ext_record, loc_record, EXT_PN, LOC_PN};

    #[test]
    fn shared_key_truncates_and_normalises() {
        let key = BlockingKey::shared(EXT_PN, 5);
        let r = ext_record(0, "CRCW-0805 10K");
        assert_eq!(key.external_key(&r), "crcw0");
        let full = BlockingKey::shared(EXT_PN, 0);
        assert_eq!(full.external_key(&r), "crcw080510k");
    }

    #[test]
    fn per_side_keys_use_their_property() {
        let key = BlockingKey::per_side(EXT_PN, LOC_PN, 4);
        let e = ext_record(0, "T83-A225");
        let l = loc_record(0, "T83-A225");
        assert_eq!(key.external_key(&e), "t83a");
        assert_eq!(key.local_key(&l), "t83a");
        // Missing property → empty key.
        assert_eq!(key.local_key(&e), "");
    }

    #[test]
    fn sort_value_keeps_full_length() {
        let key = BlockingKey::per_side(EXT_PN, LOC_PN, 3);
        let e = ext_record(0, "CRCW0805-10K");
        assert_eq!(key.sort_value(&e, true), "crcw080510k");
        assert_eq!(key.sort_value(&e, false), "");
    }

    #[test]
    fn non_alphanumeric_preserved_when_configured() {
        let mut key = BlockingKey::shared(EXT_PN, 0);
        key.alphanumeric_only = false;
        let r = ext_record(0, "CRCW-0805 10K");
        assert_eq!(key.external_key(&r), "crcw-0805 10k");
    }
}
