//! Blocking keys: how one record is reduced to a short comparable key.
//!
//! The related work describes keys such as "persons that share the same
//! first five characters of their last name belong to the same block" and
//! sorted-neighbourhood sorting keys. [`BlockingKey`] captures these
//! variants as a *recipe* over property IRIs; before touching records it
//! is resolved against a [`RecordStore`] into a [`KeySide`], which holds
//! the interned [`crate::intern::PropertyId`] so that key
//! extraction in the blocking loop never hashes an IRI string.

use crate::intern::{PropertyId, PropertyInterner};
use crate::store::RecordStore;
use serde::{Deserialize, Serialize};

/// A recipe for turning a record into a blocking/sorting key string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingKey {
    /// Property IRI used on external records.
    pub external_property: String,
    /// Property IRI used on local records (schemas differ, so the two sides
    /// may use different property names for the same information).
    pub local_property: String,
    /// Keep only the first `prefix_length` characters of the normalised
    /// value; `0` keeps the whole value.
    pub prefix_length: usize,
    /// Strip every non-alphanumeric character before truncating.
    pub alphanumeric_only: bool,
}

impl BlockingKey {
    /// A key over the same property IRI on both sides.
    pub fn shared(property: impl Into<String>, prefix_length: usize) -> Self {
        let p = property.into();
        BlockingKey {
            external_property: p.clone(),
            local_property: p,
            prefix_length,
            alphanumeric_only: true,
        }
    }

    /// A key with different property IRIs per side.
    pub fn per_side(
        external_property: impl Into<String>,
        local_property: impl Into<String>,
        prefix_length: usize,
    ) -> Self {
        BlockingKey {
            external_property: external_property.into(),
            local_property: local_property.into(),
            prefix_length,
            alphanumeric_only: true,
        }
    }

    /// Resolve the external-side property against `store` (one string
    /// lookup; every later key extraction is id-based).
    pub fn external_side(&self, store: &RecordStore) -> KeySide {
        self.external_side_of(store.interner())
    }

    /// Resolve the local-side property against `store`.
    pub fn local_side(&self, store: &RecordStore) -> KeySide {
        self.local_side_of(store.interner())
    }

    /// Resolve the external side against a schema directly. With a
    /// shared [`SchemaInterner`](crate::intern::SchemaInterner) snapshot
    /// the returned [`KeySide`] is valid for **every** store built on
    /// that schema (all shards of a
    /// [`ShardedStore`](crate::shard::ShardedStore)).
    pub fn external_side_of(&self, schema: &PropertyInterner) -> KeySide {
        KeySide {
            property: schema.get(&self.external_property),
            prefix_length: self.prefix_length,
            alphanumeric_only: self.alphanumeric_only,
        }
    }

    /// Resolve the local side against a schema directly (see
    /// [`external_side_of`](Self::external_side_of)).
    pub fn local_side_of(&self, schema: &PropertyInterner) -> KeySide {
        KeySide {
            property: schema.get(&self.local_property),
            prefix_length: self.prefix_length,
            alphanumeric_only: self.alphanumeric_only,
        }
    }
}

/// One side of a [`BlockingKey`], resolved against a specific
/// [`RecordStore`]. Only valid for records of that store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySide {
    /// The interned property, `None` when no record of the store has it.
    property: Option<PropertyId>,
    prefix_length: usize,
    alphanumeric_only: bool,
}

/// The cache key of a store-level
/// [`KeyIndex`](crate::token_index::KeyIndex): two [`KeySide`]s with the
/// same recipe produce identical keys on every record, so they share one
/// index (e.g. a standard blocker and a sorted-neighbourhood blocker on
/// the same property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct KeyRecipe {
    property: Option<PropertyId>,
    prefix_length: usize,
    alphanumeric_only: bool,
}

impl KeySide {
    /// The resolved property id, if the store knows the IRI.
    pub fn property(&self) -> Option<PropertyId> {
        self.property
    }

    /// The fingerprint under which a store caches this side's
    /// [`KeyIndex`](crate::token_index::KeyIndex).
    pub(crate) fn recipe(&self) -> KeyRecipe {
        KeyRecipe {
            property: self.property,
            prefix_length: self.prefix_length,
            alphanumeric_only: self.alphanumeric_only,
        }
    }

    /// Reconstitute the side a recipe fingerprint was taken from — the
    /// store-level key-index cache rebuilds its indexes by recipe when
    /// the store's contents are replaced in place (the serving layer's
    /// probe store).
    pub(crate) fn from_recipe(recipe: KeyRecipe) -> KeySide {
        KeySide {
            property: recipe.property,
            prefix_length: recipe.prefix_length,
            alphanumeric_only: recipe.alphanumeric_only,
        }
    }

    /// Append the **full** normalised value to `out` and return the byte
    /// length (relative to where writing started) of its truncated
    /// prefix — i.e. [`key`](Self::key) is the first `returned` bytes of
    /// what was written and [`sort_value`](Self::sort_value) is all of
    /// it. This is the build primitive of the store-level
    /// [`KeyIndex`](crate::token_index::KeyIndex), which extracts every
    /// record's key exactly once.
    pub(crate) fn write_normalised(&self, value: &str, out: &mut String) -> usize {
        let take = if self.prefix_length > 0 {
            self.prefix_length
        } else {
            usize::MAX
        };
        // Lowercase char by char before filtering: lowercasing can emit
        // combining marks (e.g. 'İ' → "i\u{307}") that the alphanumeric
        // filter must then strip, and the prefix counts *output*
        // characters. Char-wise mapping (instead of `str::to_lowercase`)
        // keeps key extraction allocation-free — the serving layer
        // re-keys its one-record probe store on every call — forgoing
        // only the final-sigma special case of the `str` version.
        let start = out.len();
        let mut kept = 0;
        let mut key_end = None;
        for c in value.chars().flat_map(char::to_lowercase) {
            if self.alphanumeric_only && !c.is_alphanumeric() {
                continue;
            }
            out.push(c);
            kept += 1;
            if kept == take {
                key_end = Some(out.len() - start);
            }
        }
        key_end.unwrap_or(out.len() - start)
    }

    /// The (truncated, normalised) blocking key of `record`; empty when
    /// the property is missing.
    pub fn key(&self, store: &RecordStore, record: usize) -> String {
        match self.property.and_then(|p| store.first(record, p)) {
            Some(value) => {
                let mut out = String::with_capacity(value.len());
                let end = self.write_normalised(value, &mut out);
                out.truncate(end);
                out
            }
            None => String::new(),
        }
    }

    /// The full (untruncated) normalised value, used as a sorting key by
    /// the sorted-neighbourhood method.
    pub fn sort_value(&self, store: &RecordStore, record: usize) -> String {
        match self.property.and_then(|p| store.first(record, p)) {
            Some(value) => {
                let mut out = String::with_capacity(value.len());
                self.write_normalised(value, &mut out);
                out
            }
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::{ext_record, loc_record, EXT_PN, LOC_PN};
    use crate::store::RecordStore;

    fn ext_store(pn: &str) -> RecordStore {
        RecordStore::from_records(&[ext_record(0, pn)])
    }

    #[test]
    fn shared_key_truncates_and_normalises() {
        let store = ext_store("CRCW-0805 10K");
        let key = BlockingKey::shared(EXT_PN, 5).external_side(&store);
        assert_eq!(key.key(&store, 0), "crcw0");
        let full = BlockingKey::shared(EXT_PN, 0).external_side(&store);
        assert_eq!(full.key(&store, 0), "crcw080510k");
    }

    #[test]
    fn per_side_keys_use_their_property() {
        let recipe = BlockingKey::per_side(EXT_PN, LOC_PN, 4);
        let external = ext_store("T83-A225");
        let local = RecordStore::from_records(&[loc_record(0, "T83-A225")]);
        assert_eq!(recipe.external_side(&external).key(&external, 0), "t83a");
        assert_eq!(recipe.local_side(&local).key(&local, 0), "t83a");
        // The local property does not exist on the external store: the
        // side resolves to no property and every key is empty.
        let missing = recipe.local_side(&external);
        assert_eq!(missing.property(), None);
        assert_eq!(missing.key(&external, 0), "");
    }

    #[test]
    fn sort_value_keeps_full_length() {
        let recipe = BlockingKey::per_side(EXT_PN, LOC_PN, 3);
        let external = ext_store("CRCW0805-10K");
        assert_eq!(
            recipe.external_side(&external).sort_value(&external, 0),
            "crcw080510k"
        );
        assert_eq!(recipe.local_side(&external).sort_value(&external, 0), "");
    }

    #[test]
    fn non_alphanumeric_preserved_when_configured() {
        let mut recipe = BlockingKey::shared(EXT_PN, 0);
        recipe.alphanumeric_only = false;
        let store = ext_store("CRCW-0805 10K");
        assert_eq!(recipe.external_side(&store).key(&store, 0), "crcw-0805 10k");
    }

    #[test]
    fn prefix_counts_characters_not_bytes() {
        let store = ext_store("ÉÀÇ-1234");
        let mut recipe = BlockingKey::shared(EXT_PN, 4);
        recipe.alphanumeric_only = true;
        assert_eq!(recipe.external_side(&store).key(&store, 0), "éàç1");
    }

    #[test]
    fn write_normalised_agrees_with_key_and_sort_value() {
        // One write yields both views: the first `end` bytes are the
        // truncated key, the whole write is the sort value.
        let store = ext_store("CRCW-0805 10K");
        for prefix in [0, 3, 5, 40] {
            for alnum in [true, false] {
                let mut recipe = BlockingKey::shared(EXT_PN, prefix);
                recipe.alphanumeric_only = alnum;
                let side = recipe.external_side(&store);
                let mut out = String::new();
                let end = side.write_normalised("CRCW-0805 10K", &mut out);
                assert_eq!(out[..end], side.key(&store, 0), "prefix {prefix}");
                assert_eq!(out, side.sort_value(&store, 0), "prefix {prefix}");
            }
        }
    }

    #[test]
    fn lowercasing_combining_marks_are_filtered() {
        // 'İ' lowercases to "i\u{307}"; the combining mark is not
        // alphanumeric and must not leak into the blocking key, so both
        // spellings land in the same block.
        let dotted = ext_store("İSTANBUL-42");
        let plain = ext_store("istanbul-42");
        let recipe = BlockingKey::shared(EXT_PN, 0);
        let a = recipe.external_side(&dotted).key(&dotted, 0);
        let b = recipe.external_side(&plain).key(&plain, 0);
        assert_eq!(a, b);
        assert_eq!(a, "istanbul42");
        let prefix = BlockingKey::shared(EXT_PN, 3);
        assert_eq!(prefix.external_side(&dotted).key(&dotted, 0), "ist");
    }
}
