//! Rule-based blocking: the paper's contribution cast as a [`Blocker`].
//!
//! The learnt classification rules predict, for each external record, the
//! classes of the local ontology it should be compared with; the candidate
//! pairs are then the record's pairs with the instances of those classes.
//! This adapter lets the paper's approach be compared head-to-head with the
//! classic blocking baselines on exactly the same interface (experiment E5).

use super::{Blocker, CandidatePair, CandidateRuns};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;
use classilink_core::RuleClassifier;
use classilink_ontology::{InstanceStore, Ontology};

/// Blocking through learnt classification rules.
pub struct RuleBasedBlocker<'a> {
    classifier: &'a RuleClassifier,
    instances: &'a InstanceStore,
    ontology: &'a Ontology,
    /// When `true`, an external record for which no rule fires is paired with
    /// every local record (guaranteeing completeness at the cost of
    /// comparisons); when `false`, such records produce no candidates (what
    /// the paper's reduction argument assumes).
    pub fallback_to_all: bool,
}

impl<'a> RuleBasedBlocker<'a> {
    /// A rule-based blocker over the given classifier and local instances.
    pub fn new(
        classifier: &'a RuleClassifier,
        instances: &'a InstanceStore,
        ontology: &'a Ontology,
    ) -> Self {
        RuleBasedBlocker {
            classifier,
            instances,
            ontology,
            fallback_to_all: false,
        }
    }

    /// Enable pairing unclassified external records with the whole catalog.
    pub fn with_fallback(mut self, fallback_to_all: bool) -> Self {
        self.fallback_to_all = fallback_to_all;
        self
    }
}

impl Blocker for RuleBasedBlocker<'_> {
    fn name(&self) -> &'static str {
        "classification-rules"
    }

    /// The materialising adapter: stream into a single-shard sink and
    /// sort (the legacy path sorted its output too).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The sharded materialising adapter: unlike the trait default this
    /// classifies every external record **once**, not once per shard.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        runs.into_global_pairs(local.into())
    }

    /// Native streaming: each external record is classified **once**
    /// and each predicted class's extent enumerated **once** (the
    /// per-shard legacy default re-did both per shard); extent items are
    /// looked up in every shard's id index and deduplicated across
    /// overlapping predictions with epoch-stamped marks over global ids.
    /// Unclassified externals under the fallback pair with each whole
    /// shard as **one span block** (O(1), not O(shard)); extent hits
    /// accumulate into per-(external, shard) explicit runs.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        fail::fail_point!("blocking::rule_based");
        for e in 0..external.len() {
            // The store's facts iterator feeds the classifier borrowed
            // `(&str, &str)` pairs — no per-record fact cloning.
            let predictions = self.classifier.classify_fact_refs(external.facts(e));
            if predictions.is_empty() {
                if self.fallback_to_all {
                    for (s, shard) in local.iter().enumerate() {
                        if !out.shard_active(s) {
                            continue;
                        }
                        out.push_span(s, e, 0, shard.len());
                    }
                }
                continue;
            }
            let epoch = out.scratch.next_epoch(local.len());
            for prediction in predictions {
                for item in self.instances.extent(prediction.class, self.ontology) {
                    for (s, shard) in local.iter().enumerate() {
                        if !out.shard_active(s) {
                            continue;
                        }
                        if let Some(l) = shard.index_of(&item) {
                            let global = local.offset(s) + l;
                            if out.scratch.marks[global] != epoch {
                                out.scratch.marks[global] = epoch;
                                out.push(s, e, l);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::BlockingStats;
    use classilink_core::{ClassificationRule, Contingency};
    use classilink_ontology::{ClassId, OntologyBuilder};
    use classilink_rdf::Term;
    use classilink_segment::SegmenterKind;
    use std::collections::HashSet;

    fn setup() -> (Ontology, InstanceStore, RuleClassifier) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let resistor = b.class("FixedFilmResistor", Some(root));
        let capacitor = b.class("TantalumCapacitor", Some(root));
        let onto = b.build();

        // Locals 0 and 1 are resistors, 2 is a capacitor, 3 and 4 untyped.
        let mut store = InstanceStore::new();
        store.assert_type(&Term::iri("http://local.e.org/prod/0"), resistor);
        store.assert_type(&Term::iri("http://local.e.org/prod/1"), resistor);
        store.assert_type(&Term::iri("http://local.e.org/prod/2"), capacitor);

        let rule = |segment: &str, class: ClassId, name: &str| ClassificationRule {
            property: EXT_PN.to_string(),
            segment: segment.to_string(),
            class,
            class_iri: format!("http://e.org/c#{name}"),
            class_label: name.to_string(),
            quality: Contingency::new(100, 10, 20, 10).quality(),
        };
        let classifier = RuleClassifier::new(
            vec![
                rule("crcw0805", resistor, "FixedFilmResistor"),
                rule("crcw0603", resistor, "FixedFilmResistor"),
                rule("t83", capacitor, "TantalumCapacitor"),
            ],
            SegmenterKind::Separator,
            true,
        );
        (onto, store, classifier)
    }

    #[test]
    fn pairs_follow_predicted_class_extents() {
        let (onto, store, classifier) = setup();
        let (external, local) = small_stores();
        let blocker = RuleBasedBlocker::new(&classifier, &store, &onto);
        let pairs = blocker.candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        // External 0 and 1 are classified as resistors → locals 0 and 1.
        assert!(set.contains(&(0, 0)) && set.contains(&(0, 1)));
        assert!(set.contains(&(1, 0)) && set.contains(&(1, 1)));
        // External 2 is a capacitor → local 2 only.
        assert!(set.contains(&(2, 2)));
        assert!(!set.contains(&(2, 0)));
        // External 3 (LM317…) triggers no rule → no pairs without fallback.
        assert!(pairs.iter().all(|(e, _)| *e != 3));
        assert_eq!(blocker.name(), "classification-rules");
    }

    #[test]
    fn true_pairs_covered_for_classified_records() {
        let (onto, store, classifier) = setup();
        let (external, local) = small_stores();
        let pairs =
            RuleBasedBlocker::new(&classifier, &store, &onto).candidate_pairs(&external, &local);
        // True pairs for the classified externals (0,0), (1,1), (2,2).
        let true_pairs: HashSet<_> = (0..3).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.5);
    }

    #[test]
    fn fallback_pairs_unclassified_records_with_everything() {
        let (onto, store, classifier) = setup();
        let (external, local) = small_stores();
        let pairs = RuleBasedBlocker::new(&classifier, &store, &onto)
            .with_fallback(true)
            .candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        for l in 0..local.len() {
            assert!(set.contains(&(3, l)));
        }
    }

    #[test]
    fn no_duplicate_pairs_even_with_overlapping_predictions() {
        let (onto, store, _) = setup();
        let resistor = onto.class("http://e.org/c#FixedFilmResistor").unwrap();
        let root = onto.class("http://e.org/c#Component").unwrap();
        // Two rules firing on the same record, one concluding the subclass and
        // one the superclass → extents overlap.
        let rule = |segment: &str, class: ClassId, name: &str| ClassificationRule {
            property: EXT_PN.to_string(),
            segment: segment.to_string(),
            class,
            class_iri: format!("http://e.org/c#{name}"),
            class_label: name.to_string(),
            quality: Contingency::new(100, 10, 20, 10).quality(),
        };
        let classifier = RuleClassifier::new(
            vec![
                rule("crcw0805", resistor, "FixedFilmResistor"),
                rule("10k", root, "Component"),
            ],
            SegmenterKind::Separator,
            true,
        );
        let (external, local) = small_stores();
        let pairs =
            RuleBasedBlocker::new(&classifier, &store, &onto).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // Extent lookups go through each shard's id index and are
        // offset back to global ids; the union must equal the
        // single-store set (with and without the fallback).
        let (onto, store, classifier) = setup();
        let (external_records, local_records) = small_dataset();
        let external = crate::store::RecordStore::from_records(&external_records);
        let local = crate::store::RecordStore::from_records(&local_records);
        for fallback in [false, true] {
            let blocker = RuleBasedBlocker::new(&classifier, &store, &onto).with_fallback(fallback);
            let mut single = blocker.candidate_pairs(&external, &local);
            single.sort_unstable();
            for shard_count in [2, 4, 8] {
                let sharded_store =
                    crate::shard::ShardedStore::from_records(&local_records, shard_count);
                let mut sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
                sharded.sort_unstable();
                assert_eq!(sharded, single, "{shard_count} shards, fallback {fallback}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let (onto, store, classifier) = setup();
        let blocker = RuleBasedBlocker::new(&classifier, &store, &onto);
        let (e, l) = empty_stores();
        assert!(blocker.candidate_pairs(&e, &l).is_empty());
    }
}
