//! Standard blocking: records sharing the same blocking key fall into the
//! same block, and only pairs inside one block are compared.
//!
//! Related work of the paper: "Blocking methods exploit an identified
//! (subset of) attribute(s) to split the data items into blocks. For example,
//! persons that share the same first five characters of their last name
//! belong to the same block."

use super::key::BlockingKey;
use super::{Blocker, CandidatePair, CandidateRuns};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;

/// Key-equality blocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandardBlocker {
    /// The blocking key recipe.
    pub key: BlockingKey,
    /// Records with an empty key are skipped (they would otherwise all land
    /// in one giant block).
    pub skip_empty_keys: bool,
}

impl StandardBlocker {
    /// Standard blocking with the given key.
    pub fn new(key: BlockingKey) -> Self {
        StandardBlocker {
            key,
            skip_empty_keys: true,
        }
    }
}

impl Blocker for StandardBlocker {
    fn name(&self) -> &'static str {
        "standard-blocking"
    }

    /// The materialising adapter: stream into a single-shard sink and
    /// sort (the legacy external-major emission order was index-sorted,
    /// so the output is byte-identical).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The sharded materialising adapter: unlike the trait default this
    /// extracts the external keys **once**, not once per shard, before
    /// flattening back to the legacy global-id layout.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        runs.into_global_pairs(local.into())
    }

    /// Native streaming: the external side's [`KeyIndex`] is built or
    /// fetched **once**; each shard is then probed per external record
    /// (equal-range lookup in the shard's sorted key table), emitting
    /// **one keyed block per external × equal-range** — the block
    /// stores `(table_start, len)` into the shard's key-sorted record
    /// table instead of `len` pairs, so the sink stays O(blocks)
    /// however large the key blocks are. No per-record `String`, no
    /// hash map, no allocation at all once the store-level indexes are
    /// warm. Probing external-major keeps each run's decoded order
    /// identical to the legacy per-shard path, which also keeps the
    /// comparison phase's access pattern (long same-left-record runs)
    /// cache-friendly.
    ///
    /// [`KeyIndex`]: crate::token_index::KeyIndex
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        let external_index = external.key_index(&self.key.external_side(external));
        let local_side = self.key.local_side_of(local.schema());
        for (s, shard) in local.iter().enumerate() {
            if !out.shard_active(s) {
                continue;
            }
            let local_index = shard.key_index(&local_side);
            out.set_key_table(s, local_index.clone());
            for e in 0..external.len() {
                // Per-probe site: a counted trigger faults *mid-stream*,
                // with the sink already partially filled.
                fail::fail_point!("blocking::standard");
                let key = external_index.key(e);
                if key.is_empty() && self.skip_empty_keys {
                    continue;
                }
                let range = local_index.key_range(key);
                out.push_keyed(s, e, range.start, range.len());
            }
        }
    }

    /// Build each shard's key index (the only local-side artifact
    /// standard blocking reads).
    fn warm(&self, local: LocalShards<'_>) {
        let local_side = self.key.local_side_of(local.schema());
        for shard in local.iter() {
            shard.key_index(&local_side);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::BlockingStats;
    use std::collections::HashSet;

    fn key(prefix: usize) -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, prefix)
    }

    #[test]
    fn same_prefix_lands_in_same_block() {
        let (external, local) = small_stores();
        let blocker = StandardBlocker::new(key(4));
        let pairs = blocker.candidate_pairs(&external, &local);
        // ext0 (crcw…) matches loc0 and loc1 shares only "crcw" prefix of length 4:
        // crcw0805 vs crcw0603 → both keys "crcw" → ext0 pairs with loc0, loc1;
        // ext1 idem; ext2 (t83a) with loc2; ext3 (lm31) with loc3.
        let set: HashSet<_> = pairs.iter().copied().collect();
        assert!(set.contains(&(0, 0)));
        assert!(set.contains(&(0, 1)));
        assert!(set.contains(&(1, 0)));
        assert!(set.contains(&(2, 2)));
        assert!(set.contains(&(3, 3)));
        assert!(!set.contains(&(0, 4)));
        assert_eq!(pairs.len(), 6);
        assert_eq!(blocker.name(), "standard-blocking");
    }

    #[test]
    fn longer_prefix_gives_fewer_candidates() {
        let (external, local) = small_stores();
        let loose = StandardBlocker::new(key(2)).candidate_pairs(&external, &local);
        let tight = StandardBlocker::new(key(8)).candidate_pairs(&external, &local);
        assert!(tight.len() <= loose.len());
        // With the full 8-char prefix every true pair is still found.
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&tight, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.5);
    }

    #[test]
    fn records_missing_the_property_are_skipped() {
        let (mut external, local) = small_dataset();
        external.push(crate::record::Record::new(classilink_rdf::Term::iri(
            "http://provider.e.org/item/99",
        )));
        let external = crate::store::RecordStore::from_records(&external);
        let local = crate::store::RecordStore::from_records(&local);
        let pairs = StandardBlocker::new(key(4)).candidate_pairs(&external, &local);
        assert!(pairs.iter().all(|(e, _)| *e != 4));
    }

    #[test]
    fn empty_inputs() {
        let (external, local) = empty_stores();
        let blocker = StandardBlocker::new(key(4));
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // Key equality is a per-record predicate, so the default
        // per-shard route must reproduce the single-store set exactly.
        let (external_records, local_records) = small_dataset();
        let external = crate::store::RecordStore::from_records(&external_records);
        let local = crate::store::RecordStore::from_records(&local_records);
        let blocker = StandardBlocker::new(key(4));
        let mut single = blocker.candidate_pairs(&external, &local);
        single.sort_unstable();
        for shard_count in [1, 2, 3, 7] {
            let sharded_store =
                crate::shard::ShardedStore::from_records(&local_records, shard_count);
            let mut sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
            sharded.sort_unstable();
            assert_eq!(sharded, single, "{shard_count} shards");
        }
    }
}
