//! Bi-gram indexing.
//!
//! Related work of the paper: "In Bi-gram methods, attribute values are
//! converted into sub-strings of two characters (bi-gram) and sub-lists of
//! all possible permutations are built using a threshold (between 0.0 and
//! 1.0). The resulting bigram lists are sorted and inserted into an inverted
//! index, which will be used to retrieve the corresponding record numbers in
//! a block."
//!
//! This implementation follows the practical variant used by record-linkage
//! toolkits: each record's key value is converted into padded bigrams and
//! indexed in an inverted index; an (external, local) pair becomes a
//! candidate when the two records share at least
//! `ceil(threshold · min(|bigrams_e|, |bigrams_l|))` bigrams.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair};
use crate::index::InvertedIndex;
use crate::store::RecordStore;
use classilink_segment::{CharNGramSegmenter, Segmenter};
use std::collections::HashMap;

/// Bi-gram inverted-index blocking.
#[derive(Debug, Clone, PartialEq)]
pub struct BigramBlocker {
    /// The key recipe selecting which value is indexed.
    pub key: BlockingKey,
    /// Fraction of the smaller record's bigrams that must be shared,
    /// in `[0, 1]`. Lower thresholds produce more candidates.
    pub threshold: f64,
}

impl BigramBlocker {
    /// A bigram blocker with the given key and sharing threshold.
    pub fn new(key: BlockingKey, threshold: f64) -> Self {
        BigramBlocker {
            key,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    fn bigrams(value: &str) -> Vec<String> {
        CharNGramSegmenter::padded_bigrams().split_distinct(value)
    }
}

impl Blocker for BigramBlocker {
    fn name(&self) -> &'static str {
        "bigram-indexing"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let local_side = self.key.local_side(local);
        let external_side = self.key.external_side(external);
        // Inverted index over the local records' bigrams. Records are
        // scanned in increasing index order, so the posting lists stay
        // sorted and inserts take the fast append path.
        let mut index: InvertedIndex<usize> = InvertedIndex::new();
        let mut local_sizes: Vec<usize> = Vec::with_capacity(local.len());
        for l in 0..local.len() {
            let grams = Self::bigrams(&local_side.key(local, l));
            local_sizes.push(grams.len());
            for g in grams {
                index.insert(g, l);
            }
        }
        let mut pairs: Vec<CandidatePair> = Vec::new();
        for e in 0..external.len() {
            let grams = Self::bigrams(&external_side.key(external, e));
            if grams.is_empty() {
                continue;
            }
            // Count shared bigrams per local candidate.
            let mut shared: HashMap<usize, usize> = HashMap::new();
            for g in &grams {
                for &l in index.get(g) {
                    *shared.entry(l).or_insert(0) += 1;
                }
            }
            for (l, count) in shared {
                let smaller = grams.len().min(local_sizes[l]).max(1);
                let required = (self.threshold * smaller as f64).ceil() as usize;
                if count >= required.max(1) {
                    pairs.push((e, l));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::BlockingStats;
    use crate::store::RecordStore;
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn identical_values_are_always_candidates() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 1.0).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        for i in 0..4 {
            assert!(set.contains(&(i, i)));
        }
    }

    #[test]
    fn lower_threshold_yields_more_candidates() {
        let (external, local) = small_stores();
        let strict = BigramBlocker::new(key(), 0.9).candidate_pairs(&external, &local);
        let loose = BigramBlocker::new(key(), 0.2).candidate_pairs(&external, &local);
        assert!(loose.len() >= strict.len());
        let strict_set: HashSet<_> = strict.into_iter().collect();
        let loose_set: HashSet<_> = loose.into_iter().collect();
        assert!(strict_set.is_subset(&loose_set));
    }

    #[test]
    fn typo_in_part_number_still_blocks_together() {
        let external = RecordStore::from_records(&[ext_record(0, "CRCW0805-10J")]); // one char off
        let local = RecordStore::from_records(&[
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "LM317-TO220"),
        ]);
        let pairs = BigramBlocker::new(key(), 0.6).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.into_iter().collect();
        assert!(set.contains(&(0, 0)));
        assert!(!set.contains(&(0, 1)));
    }

    #[test]
    fn completeness_and_reduction_on_small_dataset() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 0.8).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The sharing threshold depends only on the candidate pair's own
        // bigram sets, so the per-shard union equals the global set.
        let (external_records, local_records) = small_dataset();
        let external = RecordStore::from_records(&external_records);
        let local = RecordStore::from_records(&local_records);
        let blocker = BigramBlocker::new(key(), 0.6);
        let mut single = blocker.candidate_pairs(&external, &local);
        single.sort_unstable();
        for shard_count in [2, 3, 9] {
            let sharded_store =
                crate::shard::ShardedStore::from_records(&local_records, shard_count);
            let mut sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
            sharded.sort_unstable();
            assert_eq!(sharded, single, "{shard_count} shards");
        }
    }

    #[test]
    fn threshold_is_clamped_and_empty_inputs_ok() {
        let blocker = BigramBlocker::new(key(), 7.0);
        assert_eq!(blocker.threshold, 1.0);
        assert_eq!(blocker.name(), "bigram-indexing");
        let (e, l) = empty_stores();
        assert!(blocker.candidate_pairs(&e, &l).is_empty());
        // Record without the key property produces no candidates.
        let external = RecordStore::from_records(&[crate::record::Record::new(
            classilink_rdf::Term::iri("http://provider.e.org/item/9"),
        )]);
        let (_, local) = small_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }
}
