//! Bi-gram indexing.
//!
//! Related work of the paper: "In Bi-gram methods, attribute values are
//! converted into sub-strings of two characters (bi-gram) and sub-lists of
//! all possible permutations are built using a threshold (between 0.0 and
//! 1.0). The resulting bigram lists are sorted and inserted into an inverted
//! index, which will be used to retrieve the corresponding record numbers in
//! a block."
//!
//! This implementation follows the practical variant used by record-linkage
//! toolkits: each record's key value is converted into padded bigrams and
//! indexed in an inverted index; an (external, local) pair becomes a
//! candidate when the two records share at least
//! `ceil(threshold · min(|bigrams_e|, |bigrams_l|))` bigrams.
//!
//! The bigram sets and the inverted index are **store-level
//! precomputation**: both sides' padded key bigrams live in the store's
//! cached [`KeyIndex`](crate::token_index::KeyIndex) as packed `u64`s
//! (the [`TokenIndex`](crate::token_index::TokenIndex) bigram
//! representation), so the probe loop counts shared grams with pure
//! integer posting walks — no per-record `String` bigrams, no hash maps,
//! and zero allocations once the indexes are warm.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair, CandidateRuns};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;

/// Bi-gram inverted-index blocking.
#[derive(Debug, Clone, PartialEq)]
pub struct BigramBlocker {
    /// The key recipe selecting which value is indexed.
    pub key: BlockingKey,
    /// Fraction of the smaller record's bigrams that must be shared,
    /// in `[0, 1]`. Lower thresholds produce more candidates.
    pub threshold: f64,
}

impl BigramBlocker {
    /// A bigram blocker with the given key and sharing threshold.
    pub fn new(key: BlockingKey, threshold: f64) -> Self {
        BigramBlocker {
            key,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// The sharing rule: shared distinct bigrams must reach
    /// `ceil(threshold · min(|A|, |B|))`, never less than one.
    fn meets_threshold(&self, shared: usize, size_a: usize, size_b: usize) -> bool {
        let smaller = size_a.min(size_b).max(1);
        let required = (self.threshold * smaller as f64).ceil() as usize;
        shared >= required.max(1)
    }
}

impl Blocker for BigramBlocker {
    fn name(&self) -> &'static str {
        "bigram-indexing"
    }

    /// The materialising adapter: stream into a single-shard sink, then
    /// sort (the legacy path sorted its output too).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The sharded materialising adapter: unlike the trait default this
    /// bigram-ises the external side **once**, not once per shard.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        runs.into_global_pairs(local.into())
    }

    /// Native streaming: the external side's padded key bigrams come
    /// from the store-level
    /// [`KeyIndex`](crate::token_index::KeyIndex) (built or fetched
    /// **once** for all shards); each shard is then probed
    /// **external-major** — every external's grams walk the *shard's*
    /// inverted postings, counting shared grams per shard-local record
    /// in a reused counter array — so the locals that meet the sharing
    /// threshold for one external form **one explicit run** (in
    /// deterministic first-gram-hit order) and the sink coalesces them
    /// into a single block per (external, shard) instead of one entry
    /// per pair.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        let external_index = external.key_index(&self.key.external_side(external));
        let external_bigrams = external_index.bigram_index();
        let local_side = self.key.local_side_of(local.schema());
        for (s, shard) in local.shards().iter().enumerate() {
            let local_index = shard.key_index(&local_side);
            let local_bigrams = local_index.bigram_index();
            if out.scratch.counts.len() < shard.len() {
                out.scratch.counts.resize(shard.len(), 0);
            }
            for e in 0..external.len() {
                let set = external_bigrams.set(e);
                // Count shared grams per shard-local record; `touched`
                // lists the locals with a non-zero counter so the reset
                // below is O(candidate locals), not O(|shard|).
                for &gram in set {
                    for &l in local_bigrams.postings(gram) {
                        let count = &mut out.scratch.counts[l as usize];
                        if *count == 0 {
                            out.scratch.touched.push(l);
                        }
                        *count += 1;
                    }
                }
                // Touched order (first-gram-hit order) is deterministic,
                // and the pipeline index-sorts its output, so no sort is
                // needed here — sorting ~shard-sized touched lists per
                // external would dominate the probe loop.
                for i in 0..out.scratch.touched.len() {
                    let l = out.scratch.touched[i] as usize;
                    let shared = out.scratch.counts[l] as usize;
                    out.scratch.counts[l] = 0;
                    if self.meets_threshold(shared, set.len(), local_bigrams.set(l).len()) {
                        out.push(s, e, l);
                    }
                }
                out.scratch.touched.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::BlockingStats;
    use crate::store::RecordStore;
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn identical_values_are_always_candidates() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 1.0).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        for i in 0..4 {
            assert!(set.contains(&(i, i)));
        }
    }

    #[test]
    fn lower_threshold_yields_more_candidates() {
        let (external, local) = small_stores();
        let strict = BigramBlocker::new(key(), 0.9).candidate_pairs(&external, &local);
        let loose = BigramBlocker::new(key(), 0.2).candidate_pairs(&external, &local);
        assert!(loose.len() >= strict.len());
        let strict_set: HashSet<_> = strict.into_iter().collect();
        let loose_set: HashSet<_> = loose.into_iter().collect();
        assert!(strict_set.is_subset(&loose_set));
    }

    #[test]
    fn typo_in_part_number_still_blocks_together() {
        let external = RecordStore::from_records(&[ext_record(0, "CRCW0805-10J")]); // one char off
        let local = RecordStore::from_records(&[
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "LM317-TO220"),
        ]);
        let pairs = BigramBlocker::new(key(), 0.6).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.into_iter().collect();
        assert!(set.contains(&(0, 0)));
        assert!(!set.contains(&(0, 1)));
    }

    #[test]
    fn completeness_and_reduction_on_small_dataset() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 0.8).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The sharing threshold depends only on the candidate pair's own
        // bigram sets, so the per-shard union equals the global set.
        let (external_records, local_records) = small_dataset();
        let external = RecordStore::from_records(&external_records);
        let local = RecordStore::from_records(&local_records);
        let blocker = BigramBlocker::new(key(), 0.6);
        let mut single = blocker.candidate_pairs(&external, &local);
        single.sort_unstable();
        for shard_count in [2, 3, 9] {
            let sharded_store =
                crate::shard::ShardedStore::from_records(&local_records, shard_count);
            let mut sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
            sharded.sort_unstable();
            assert_eq!(sharded, single, "{shard_count} shards");
        }
    }

    #[test]
    fn threshold_is_clamped_and_empty_inputs_ok() {
        let blocker = BigramBlocker::new(key(), 7.0);
        assert_eq!(blocker.threshold, 1.0);
        assert_eq!(blocker.name(), "bigram-indexing");
        let (e, l) = empty_stores();
        assert!(blocker.candidate_pairs(&e, &l).is_empty());
        // Record without the key property produces no candidates.
        let external = RecordStore::from_records(&[crate::record::Record::new(
            classilink_rdf::Term::iri("http://provider.e.org/item/9"),
        )]);
        let (_, local) = small_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }
}
