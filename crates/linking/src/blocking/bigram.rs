//! Bi-gram indexing.
//!
//! Related work of the paper: "In Bi-gram methods, attribute values are
//! converted into sub-strings of two characters (bi-gram) and sub-lists of
//! all possible permutations are built using a threshold (between 0.0 and
//! 1.0). The resulting bigram lists are sorted and inserted into an inverted
//! index, which will be used to retrieve the corresponding record numbers in
//! a block."
//!
//! This implementation follows the practical variant used by record-linkage
//! toolkits: each record's key value is converted into padded bigrams and
//! indexed in an inverted index; an (external, local) pair becomes a
//! candidate when the two records share at least
//! `ceil(threshold · min(|bigrams_e|, |bigrams_l|))` bigrams.
//!
//! The bigram sets and the inverted index are **store-level
//! precomputation**: both sides' padded key bigrams live in the store's
//! cached [`KeyIndex`](crate::token_index::KeyIndex) as packed `u64`s
//! (the [`TokenIndex`](crate::token_index::TokenIndex) bigram
//! representation), so the probe loop counts shared grams with pure
//! integer posting walks — no per-record `String` bigrams, no hash maps,
//! and zero allocations once the indexes are warm.
//!
//! The probe itself is a **filtered overlap join** in the
//! AllPairs/PPJoin style rather than an exhaustive count-all sweep:
//! grams are walked in ascending-document-frequency order, posting
//! lists are cut to a maximum-set-size window (**length filter**), the
//! walk stops once no unseen local could still reach its threshold
//! (**prefix filter**), a first touch is dropped when the two records'
//! remaining df-ordered grams cannot close the gap (**positional
//! filter**), and touched locals whose walked count stays below the
//! generalised-prefix floor `min(K, threshold)` are rejected from the
//! count alone; only the rare survivors are finished by an exact
//! verification scan that probes the walk's epoch-stamped gram marks
//! with one load per local gram. Every
//! filter is candidate-set-preserving: the emitted set is identical to
//! the exhaustive probe's, pair for pair (proved by the proptest
//! equivalence suite in `tests/bigram_filter.rs`).

use super::key::BlockingKey;
use super::{BigramFilterStats, Blocker, CandidatePair, CandidateRuns, ProbeGram, RunScratch};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;
use crate::token_index::PREFIX_ORDER;

/// Bi-gram inverted-index blocking.
#[derive(Debug, Clone, PartialEq)]
pub struct BigramBlocker {
    /// The key recipe selecting which value is indexed.
    pub key: BlockingKey,
    /// Fraction of the smaller record's bigrams that must be shared,
    /// in `[0, 1]`. Lower thresholds produce more candidates.
    pub threshold: f64,
}

impl BigramBlocker {
    /// A bigram blocker with the given key and sharing threshold.
    pub fn new(key: BlockingKey, threshold: f64) -> Self {
        BigramBlocker {
            key,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }
}

/// Extend the integer threshold table so `tceil[m] = ceil(threshold · m)`
/// exists for every set size up to `upto` — computed once per
/// (call, size class) instead of per touched pair, bit-identical to the
/// former per-pair f64 rule.
fn ensure_tceil(tceil: &mut Vec<u32>, threshold: f64, upto: usize) {
    if tceil.is_empty() {
        tceil.push(0);
    }
    while tceil.len() <= upto {
        let m = tceil.len() as f64;
        tceil.push((threshold * m).ceil() as u32);
    }
}

/// The sharing rule for a pair whose smaller set has `smaller` grams:
/// shared distinct bigrams must reach `ceil(threshold · smaller)`,
/// never less than one.
#[inline]
fn required(tceil: &[u32], smaller: usize) -> usize {
    tceil[smaller].max(1) as usize
}

/// Translate external gram ids to `shard` gram ids (`u32::MAX` =
/// absent) with one sorted merge of the two value-sorted gram tables —
/// O(|external grams| + |shard grams|) once per shard, making every
/// per-probe gram lookup O(1).
fn build_gram_map(map: &mut Vec<u32>, external: &[u64], shard: &[u64]) {
    map.clear();
    map.resize(external.len(), u32::MAX);
    let mut j = 0;
    for (i, &gram) in external.iter().enumerate() {
        while j < shard.len() && shard[j] < gram {
            j += 1;
        }
        if j < shard.len() && shard[j] == gram {
            map[i] = j as u32;
        }
    }
}

/// Packed count-cell layout: the low [`COUNT_BITS`] bits hold the
/// walked shared-gram count, the rest the probe's count epoch (see
/// [`RunScratch::next_count_epoch`]).
const COUNT_BITS: u32 = 5;
/// Low-bits mask of a packed count cell.
const COUNT_MASK: u32 = (1 << COUNT_BITS) - 1;
/// The count value marking a record the positional filter dropped this
/// epoch: re-touching it costs one compare instead of a re-derived
/// bound (the bound only tightens at later touches, so a dropped
/// record stays dropped).
const DROPPED: u32 = COUNT_MASK;
/// Counts saturate one below the sentinel; a saturated count is a
/// *lower bound*, so `saturated ≥ needed` still accepts soundly and
/// anything undecidable falls through to the exact verification scan.
const SATURATED: u32 = COUNT_MASK - 1;

/// One counting sweep over a cut posting window: count every posting
/// once into the epoch-tagged cells, drop first touches whose two
/// records' remaining df-ordered grams cannot close the threshold gap
/// (the positional filter), and queue a record for the decide loop
/// exactly when its count reaches the decision floor
/// `min(PREFIX_ORDER, required)` — records that never get there are
/// free rejections and are never visited again.
fn scan_window(
    (records, sizes, tails): (&[u32], &[u32], &[u32]),
    remaining: usize,
    a: usize,
    epoch: u32,
    scratch: &mut RunScratch,
    stats: &mut BigramFilterStats,
) {
    let tag = epoch << COUNT_BITS;
    for ((&record, &size), &tail) in records.iter().zip(sizes).zip(tails) {
        let l = record as usize;
        let cell = scratch.counts[l];
        let count = if cell >> COUNT_BITS == epoch {
            cell & COUNT_MASK
        } else {
            0
        };
        if count == DROPPED {
            continue;
        }
        if count == 0 {
            let need = required(&scratch.tceil, a.min(size as usize));
            if remaining.min(tail as usize) < need {
                scratch.counts[l] = tag | DROPPED;
                stats.postings_skipped_position += 1;
            } else {
                scratch.counts[l] = tag | 1;
                if need == 1 {
                    scratch.touched.push(record);
                }
            }
        } else {
            let next = (count + 1).min(SATURATED);
            scratch.counts[l] = tag | next;
            if next <= PREFIX_ORDER as u32 {
                let need = required(&scratch.tceil, a.min(size as usize));
                if next == need.min(PREFIX_ORDER) as u32 {
                    scratch.touched.push(record);
                }
            }
        }
    }
}

/// `true` when at least `needed` of the local's df-ordered grams carry
/// the probe's epoch stamp (every shard-present external gram was
/// stamped before the walk): the verification scan for
/// counted-but-undecided candidates. One load per local gram instead
/// of a two-pointer merge over both packed-`u64` sets, with a
/// remaining-grams early exit in both directions (accept as soon as
/// the count is reached, reject as soon as the remainder cannot close
/// the gap).
fn overlap_reaches(df_set: &[u32], marks: &[u32], epoch: u32, needed: usize) -> bool {
    let mut shared = 0usize;
    for (idx, &id) in df_set.iter().enumerate() {
        if shared + (df_set.len() - idx) < needed {
            return false;
        }
        if marks[id as usize] == epoch {
            shared += 1;
            if shared >= needed {
                return true;
            }
        }
    }
    false
}

impl Blocker for BigramBlocker {
    fn name(&self) -> &'static str {
        "bigram-indexing"
    }

    /// The materialising adapter: stream into a single-shard sink, then
    /// sort (the legacy path sorted its output too).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The sharded materialising adapter: unlike the trait default this
    /// bigram-ises the external side **once**, not once per shard.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        runs.into_global_pairs(local.into())
    }

    /// Native streaming: a **prefix/length/positional-filtered overlap
    /// join** (AllPairs/PPJoin style) that emits exactly the exhaustive
    /// probe's candidate set.
    ///
    /// The external side's padded key bigrams come from the store-level
    /// [`KeyIndex`](crate::token_index::KeyIndex) (built or fetched
    /// **once** for all shards). Per shard, the external's grams are
    /// translated to the shard's gram table (one O(1)-lookup map built
    /// by a sorted merge) and re-sorted into the shard's (document
    /// frequency, gram id) order — the same total order every shard
    /// record's [`df_set`] uses, which makes the filters sound:
    ///
    /// * **prefix** — at walk position `i`, at most `n − i` of the
    ///   external's `n` shard-present grams remain shared; the walk
    ///   stops once even the smallest shard set's threshold exceeds
    ///   that reach (plus the `PREFIX_ORDER − 1` slack), and positions
    ///   past the external's *own* sharing rule only consult the
    ///   small-set size window;
    /// * **length** — at prefix positions, the shard's cached
    ///   `ThresholdLayout` cuts
    ///   each gram's postings to **exactly** the entries some
    ///   still-decidable pair needs (`ekey ≥ a`, one `partition_point`
    ///   on a precomputed key); at late positions, the (ascending set
    ///   size)-ordered base list is cut to the sets whose own rule
    ///   still fits the reach — usually a single first-size compare;
    /// * **positional** — a first touch meeting gram `g` at external
    ///   position `i` and local df-position `j` can share at most
    ///   `min(n − i, |B| − j)` grams (every other shared gram follows
    ///   `g` in *both* df orders), so touches below threshold are
    ///   dropped — and stay dropped at later touches, where the bound
    ///   only tightens.
    ///
    /// Locals whose walked count already reaches their threshold are
    /// emitted directly; ones whose count stays below the
    /// generalised-prefix floor `min(PREFIX_ORDER, threshold)`
    /// are rejected from the count alone (the windows carry a
    /// `PREFIX_ORDER − 1` slack exactly so that walked counts are
    /// complete over each pair's order-K prefix); the remaining
    /// undecided survivors are finished by the exact verification scan
    /// over the probe's epoch-stamped gram marks
    /// (`overlap_reaches`).
    /// Emission stays one explicit run per (external, shard) in
    /// deterministic first-floor-crossing order, and the whole probe
    /// reuses sink scratch — allocation-free once warm (the shard's
    /// per-threshold posting layout is built once, on the threshold's
    /// first-ever probe, then cached in the index).
    ///
    /// [`df_set`]: crate::token_index::KeyIndex
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        out.scratch.tceil.clear();
        let mut stats = BigramFilterStats::default();
        let external_index = external.key_index(&self.key.external_side(external));
        let external_bigrams = external_index.bigram_index();
        let local_side = self.key.local_side_of(local.schema());
        for (s, shard) in local.iter().enumerate() {
            // An inactive (delta-restricted) shard skips its whole probe
            // loop — including the gram-map rebuild and threshold-layout
            // touch, which is what makes a delta run O(new shards).
            if shard.is_empty() || !out.shard_active(s) {
                continue;
            }
            let local_index = shard.key_index(&local_side);
            let local_bigrams = local_index.bigram_index();
            ensure_tceil(
                &mut out.scratch.tceil,
                self.threshold,
                external_bigrams
                    .max_set_len()
                    .max(local_bigrams.max_set_len()) as usize,
            );
            build_gram_map(
                &mut out.scratch.gram_map,
                external_bigrams.gram_values(),
                local_bigrams.gram_values(),
            );
            let min_size = local_bigrams.min_set_len() as usize;
            let gram_count = local_bigrams.gram_values().len();
            // The per-threshold posting permutation: built on this
            // threshold's first-ever probe of the shard, a cached `Arc`
            // clone afterwards.
            let layout = local_bigrams.threshold_layout(self.threshold);
            for e in 0..external.len() {
                // Per-probe site: a counted trigger faults *mid-stream*,
                // with the sink already partially filled.
                fail::fail_point!("blocking::bigram");
                let a = external_bigrams.set(e).len();
                if a == 0 {
                    continue;
                }
                out.scratch.probe.clear();
                for &eid in external_bigrams.df_set(e) {
                    let sid = out.scratch.gram_map[eid as usize];
                    let df = if sid == u32::MAX {
                        0
                    } else {
                        local_bigrams.df(sid as usize)
                    };
                    out.scratch.probe.push(ProbeGram {
                        df,
                        shard_gram: sid,
                    });
                }
                out.scratch
                    .probe
                    .sort_unstable_by_key(|p| (p.df, p.shard_gram));
                // Shard-absent grams (df 0) sort first and can never be
                // shared; the walk covers the `n` present ones.
                let absent = out.scratch.probe.partition_point(|p| p.df == 0);
                let n = out.scratch.probe.len() - absent;
                // Stamp the probe's shard grams so the verification
                // scan can test "does the external contain this gram?"
                // with one load per local gram.
                let epoch = out.scratch.next_epoch(gram_count);
                for p in &out.scratch.probe[absent..] {
                    out.scratch.marks[p.shard_gram as usize] = epoch;
                }
                let cepoch = out.scratch.next_count_epoch(shard.len());
                let scratch = &mut out.scratch;
                // The weakest sharing rule any local can get against
                // this external: even the smallest local set must share
                // this many grams.
                let weakest = required(&scratch.tceil, a.min(min_size));
                let req_a = required(&scratch.tceil, a);
                for i in 0..n {
                    let remaining = n - i;
                    // At walk position `i` a needed posting's sharing
                    // rule must fit into the remaining probe grams plus
                    // the prefix-order slack (its order-K prefix window
                    // ends here otherwise).
                    let reach = remaining + PREFIX_ORDER - 1;
                    // Prefix filter: stop once even the weakest sharing
                    // rule exceeds the reach. The slack keeps every
                    // local's whole order-K prefix inside the walk, so
                    // the count stays complete over it and a count
                    // below `min(K, threshold)` rejects without a
                    // verification scan.
                    if weakest > reach {
                        stats.grams_skipped_prefix += remaining as u64;
                        break;
                    }
                    let sid = scratch.probe[absent + i].shard_gram as usize;
                    if req_a <= reach {
                        // Prefix position: the external's own order-K
                        // window is still open. The threshold layout's
                        // entry-key cut yields exactly the postings any
                        // still-decidable pair needs here — one binary
                        // search, one sweep, each posting counted once.
                        let (ekeys, records, sizes, tails) = layout.window(sid);
                        let end = ekeys.partition_point(|&k| k as usize >= a);
                        stats.postings_skipped_length += (records.len() - end) as u64;
                        scan_window(
                            (&records[..end], &sizes[..end], &tails[..end]),
                            remaining,
                            a,
                            cepoch,
                            scratch,
                            &mut stats,
                        );
                    } else {
                        // Late position: only sets small enough that
                        // their own sharing rule still fits the reach
                        // can open (or extend) an order-K window here —
                        // one size-ordered cut covers exactly those,
                        // and the external's ubiquitous grams cost at
                        // most a binary search instead of a posting
                        // sweep (usually just the first-size probe).
                        let capsize =
                            scratch.tceil[1..].partition_point(|&c| (c.max(1) as usize) <= reach);
                        let (records3, sizes3, tails3) = local_bigrams.posting_list(sid);
                        if sizes3.first().is_some_and(|&b| (b as usize) <= capsize) {
                            let end3 = sizes3.partition_point(|&b| (b as usize) <= capsize);
                            stats.postings_skipped_length += (records3.len() - end3) as u64;
                            scan_window(
                                (&records3[..end3], &sizes3[..end3], &tails3[..end3]),
                                remaining,
                                a,
                                cepoch,
                                scratch,
                                &mut stats,
                            );
                        } else {
                            stats.postings_skipped_length += records3.len() as u64;
                        }
                    }
                }
                // Touched holds exactly the records whose count
                // reached the decision floor `min(K, needed)` — the
                // count is complete over each pair's order-K prefix
                // windows (the slack above kept every such local in
                // every relevant window), so records below the floor
                // are proven non-candidates and were never queued.
                // Touched order (first-floor-crossing order) is
                // deterministic, and the pipeline index-sorts its
                // output, so no sort is needed here.
                for i in 0..out.scratch.touched.len() {
                    let l = out.scratch.touched[i] as usize;
                    let shared = (out.scratch.counts[l] & COUNT_MASK) as usize;
                    let b_df = local_bigrams.df_set(l);
                    let needed = required(&out.scratch.tceil, a.min(b_df.len()));
                    if shared >= needed {
                        out.push(s, e, l);
                    } else {
                        // Only genuine multi-collision survivors pay
                        // the verification scan.
                        stats.verify_merges += 1;
                        if overlap_reaches(b_df, &out.scratch.marks, epoch, needed) {
                            out.push(s, e, l);
                        }
                    }
                }
                out.scratch.touched.clear();
            }
        }
        out.scratch.filter_stats = stats;
    }

    /// Build each shard's key index, bigram postings and this
    /// threshold's posting-permutation layout (the local-side artifacts
    /// the filtered probe walk reads).
    fn warm(&self, local: LocalShards<'_>) {
        let local_side = self.key.local_side_of(local.schema());
        for shard in local.iter() {
            shard
                .key_index(&local_side)
                .bigram_index()
                .threshold_layout(self.threshold);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::BlockingStats;
    use crate::store::RecordStore;
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn identical_values_are_always_candidates() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 1.0).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        for i in 0..4 {
            assert!(set.contains(&(i, i)));
        }
    }

    #[test]
    fn lower_threshold_yields_more_candidates() {
        let (external, local) = small_stores();
        let strict = BigramBlocker::new(key(), 0.9).candidate_pairs(&external, &local);
        let loose = BigramBlocker::new(key(), 0.2).candidate_pairs(&external, &local);
        assert!(loose.len() >= strict.len());
        let strict_set: HashSet<_> = strict.into_iter().collect();
        let loose_set: HashSet<_> = loose.into_iter().collect();
        assert!(strict_set.is_subset(&loose_set));
    }

    #[test]
    fn typo_in_part_number_still_blocks_together() {
        let external = RecordStore::from_records(&[ext_record(0, "CRCW0805-10J")]); // one char off
        let local = RecordStore::from_records(&[
            loc_record(0, "CRCW0805-10K"),
            loc_record(1, "LM317-TO220"),
        ]);
        let pairs = BigramBlocker::new(key(), 0.6).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.into_iter().collect();
        assert!(set.contains(&(0, 0)));
        assert!(!set.contains(&(0, 1)));
    }

    #[test]
    fn completeness_and_reduction_on_small_dataset() {
        let (external, local) = small_stores();
        let pairs = BigramBlocker::new(key(), 0.8).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The sharing threshold depends only on the candidate pair's own
        // bigram sets, so the per-shard union equals the global set.
        let (external_records, local_records) = small_dataset();
        let external = RecordStore::from_records(&external_records);
        let local = RecordStore::from_records(&local_records);
        let blocker = BigramBlocker::new(key(), 0.6);
        let mut single = blocker.candidate_pairs(&external, &local);
        single.sort_unstable();
        for shard_count in [2, 3, 9] {
            let sharded_store =
                crate::shard::ShardedStore::from_records(&local_records, shard_count);
            let mut sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
            sharded.sort_unstable();
            assert_eq!(sharded, single, "{shard_count} shards");
        }
    }

    #[test]
    fn threshold_is_clamped_and_empty_inputs_ok() {
        let blocker = BigramBlocker::new(key(), 7.0);
        assert_eq!(blocker.threshold, 1.0);
        assert_eq!(blocker.name(), "bigram-indexing");
        let (e, l) = empty_stores();
        assert!(blocker.candidate_pairs(&e, &l).is_empty());
        // Record without the key property produces no candidates.
        let external = RecordStore::from_records(&[crate::record::Record::new(
            classilink_rdf::Term::iri("http://provider.e.org/item/9"),
        )]);
        let (_, local) = small_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }
}
