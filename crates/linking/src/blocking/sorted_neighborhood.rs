//! Sorted neighbourhood blocking.
//!
//! Related work of the paper: "Sorted Neighbourhood (SN) method sorts the
//! data items using a sorting key. A window of a given size is moved on the
//! list of sorted data items and those belonging to the window are compared."
//!
//! Both sources are merged into one list, sorted by the sorting key; a
//! sliding window of size `w` moves over the sorted list, and every
//! (external, local) pair inside the window becomes a candidate.
//!
//! Two observations keep this hash-free at paper scale:
//!
//! * A pair of sorted positions `(i, j)` lies in *some* window of size
//!   `w` exactly when `0 < j − i < w`, so enumerating, per position, only
//!   the following `w − 1` positions emits **every window pair exactly
//!   once** — no `HashSet` dedup of the overlapping windows is needed,
//!   and the per-window runs are merged by one final index sort.
//! * The window only needs each record's *sort key*, which is a
//!   per-record computation. Against a [`ShardedStore`] the keys are
//!   therefore extracted per shard (tagged with global ids) and merged
//!   into one globally sorted list, so the sharded candidate set is
//!   byte-identical to the single-store one even though windows span
//!   shard boundaries.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair};
use crate::shard::ShardedStore;
use crate::store::RecordStore;

/// Sorted-neighbourhood blocking over a merged, key-sorted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedNeighborhoodBlocker {
    /// The sorting key recipe.
    pub key: BlockingKey,
    /// The window size (≥ 2); a window of `w` covers `w` consecutive records
    /// of the sorted merged list.
    pub window: usize,
}

impl SortedNeighborhoodBlocker {
    /// A sorted-neighbourhood blocker with the given key and window size.
    pub fn new(key: BlockingKey, window: usize) -> Self {
        SortedNeighborhoodBlocker {
            key,
            window: window.max(2),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    sort_key: String,
    /// Index into the external store (when `is_external`) or the local
    /// side's **global** record id.
    index: usize,
    is_external: bool,
}

/// Sort the merged entry list (key, then side, then index — a total
/// order, so the result is independent of how the entries were gathered).
fn sort_entries(entries: &mut [Entry]) {
    entries.sort_by(|a, b| {
        a.sort_key
            .cmp(&b.sort_key)
            .then_with(|| a.is_external.cmp(&b.is_external))
            .then_with(|| a.index.cmp(&b.index))
    });
}

/// Emit every cross-source pair whose sorted positions lie within one
/// window. Each such pair is produced exactly once (records occur once in
/// `entries`, and only position pairs with `j − i < window` qualify), so
/// the final sort merges the per-window runs without any dedup.
fn window_pairs(entries: &[Entry], window: usize) -> Vec<CandidatePair> {
    if window < 2 {
        // `new()` clamps, but the field is public: a window of 0 or 1
        // holds no cross-source pair (and would invert the slice range).
        return Vec::new();
    }
    let mut pairs: Vec<CandidatePair> = Vec::new();
    for (i, a) in entries.iter().enumerate() {
        for b in &entries[i + 1..(i + window).min(entries.len())] {
            match (a.is_external, b.is_external) {
                (true, false) => pairs.push((a.index, b.index)),
                (false, true) => pairs.push((b.index, a.index)),
                _ => {}
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

impl Blocker for SortedNeighborhoodBlocker {
    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let external_side = self.key.external_side(external);
        let local_side = self.key.local_side(local);
        let mut entries: Vec<Entry> = Vec::with_capacity(external.len() + local.len());
        for i in 0..external.len() {
            entries.push(Entry {
                sort_key: external_side.sort_value(external, i),
                index: i,
                is_external: true,
            });
        }
        for i in 0..local.len() {
            entries.push(Entry {
                sort_key: local_side.sort_value(local, i),
                index: i,
                is_external: false,
            });
        }
        sort_entries(&mut entries);
        window_pairs(&entries, self.window)
    }

    /// The shard-aware override: the sliding window must run over the
    /// **globally** sorted list (windows cross shard boundaries), so sort
    /// keys are extracted per shard — the [`KeySide`](super::KeySide) is
    /// resolved once against the shared schema — tagged with global ids,
    /// and merged into one list before windowing. The result is
    /// byte-identical to the single-store run.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let external_side = self.key.external_side(external);
        let local_side = self.key.local_side_of(local.schema());
        let mut entries: Vec<Entry> = Vec::with_capacity(external.len() + local.len());
        for i in 0..external.len() {
            entries.push(Entry {
                sort_key: external_side.sort_value(external, i),
                index: i,
                is_external: true,
            });
        }
        for (s, shard) in local.shards().iter().enumerate() {
            let base = local.offset(s);
            for i in 0..shard.len() {
                entries.push(Entry {
                    sort_key: local_side.sort_value(shard, i),
                    index: base + i,
                    is_external: false,
                });
            }
        }
        sort_entries(&mut entries);
        window_pairs(&entries, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingStats, CartesianBlocker};
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn window_covers_adjacent_records() {
        let (external, local) = small_stores();
        let blocker = SortedNeighborhoodBlocker::new(key(), 3);
        let pairs = blocker.candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        // Identical part numbers sort adjacently, so every true pair is found.
        for i in 0..4 {
            assert!(set.contains(&(i, i)), "missing true pair ({i},{i})");
        }
        assert_eq!(blocker.name(), "sorted-neighborhood");
    }

    #[test]
    fn larger_window_finds_superset_of_pairs() {
        let (external, local) = small_stores();
        let small: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 2)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let large: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 5)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert!(small.is_subset(&large));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn full_window_equals_cartesian_coverage() {
        let (external, local) = small_stores();
        let total = external.len() + local.len();
        let all: HashSet<_> = SortedNeighborhoodBlocker::new(key(), total)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let cartesian: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(all, cartesian);
    }

    #[test]
    fn produces_fewer_pairs_than_cartesian_but_complete() {
        let (external, local) = small_stores();
        let pairs = SortedNeighborhoodBlocker::new(key(), 3).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn window_is_clamped_to_two_and_empty_input_is_fine() {
        let blocker = SortedNeighborhoodBlocker::new(key(), 0);
        assert_eq!(blocker.window, 2);
        let (external, local) = empty_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }

    #[test]
    fn degenerate_window_set_through_the_public_field_yields_no_pairs() {
        // The field is pub, so the constructor clamp can be bypassed;
        // a window of 0 or 1 must degrade to zero candidates, not panic.
        let (external, local) = small_stores();
        for window in [0, 1] {
            let blocker = SortedNeighborhoodBlocker { key: key(), window };
            assert!(
                blocker.candidate_pairs(&external, &local).is_empty(),
                "window {window}"
            );
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        // Each unordered position pair within the window distance is
        // enumerated exactly once, so the emitted list must already be
        // duplicate-free (the old implementation needed a HashSet here).
        let (external, local) = small_stores();
        for window in 2..8 {
            let pairs =
                SortedNeighborhoodBlocker::new(key(), window).candidate_pairs(&external, &local);
            let set: HashSet<_> = pairs.iter().copied().collect();
            assert_eq!(set.len(), pairs.len(), "window {window}");
            // And the list is sorted: the per-window runs were merged.
            assert!(pairs.windows(2).all(|w| w[0] < w[1]), "window {window}");
        }
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The override sorts globally across shard boundaries, so the
        // sharded set must be byte-identical to the single-store set
        // even for windows that straddle two shards.
        let (external_records, local_records) = {
            let external: Vec<_> = (0..12)
                .map(|i| ext_record(i, &format!("PN-{:03}", i * 3)))
                .collect();
            let local: Vec<_> = (0..12)
                .map(|i| loc_record(i, &format!("PN-{:03}", i * 3 + 1)))
                .collect();
            (external, local)
        };
        let external = crate::store::RecordStore::from_records(&external_records);
        let local = crate::store::RecordStore::from_records(&local_records);
        for window in [2, 4, 9] {
            let blocker = SortedNeighborhoodBlocker::new(key(), window);
            let single = blocker.candidate_pairs(&external, &local);
            for shard_count in [1, 2, 5, 13] {
                let sharded_store =
                    crate::shard::ShardedStore::from_records(&local_records, shard_count);
                let sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
                assert_eq!(sharded, single, "window {window}, {shard_count} shards");
            }
        }
    }
}
