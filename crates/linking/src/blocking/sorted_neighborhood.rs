//! Sorted neighbourhood blocking.
//!
//! Related work of the paper: "Sorted Neighbourhood (SN) method sorts the
//! data items using a sorting key. A window of a given size is moved on the
//! list of sorted data items and those belonging to the window are compared."
//!
//! Both sources are merged into one list, sorted by the sorting key; a
//! sliding window of size `w` moves over the sorted list, and every
//! (external, local) pair inside the window becomes a candidate.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair};
use crate::store::RecordStore;
use std::collections::HashSet;

/// Sorted-neighbourhood blocking over a merged, key-sorted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedNeighborhoodBlocker {
    /// The sorting key recipe.
    pub key: BlockingKey,
    /// The window size (≥ 2); a window of `w` covers `w` consecutive records
    /// of the sorted merged list.
    pub window: usize,
}

impl SortedNeighborhoodBlocker {
    /// A sorted-neighbourhood blocker with the given key and window size.
    pub fn new(key: BlockingKey, window: usize) -> Self {
        SortedNeighborhoodBlocker {
            key,
            window: window.max(2),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    sort_key: String,
    /// Index into the external (true) or local (false) store.
    index: usize,
    is_external: bool,
}

impl Blocker for SortedNeighborhoodBlocker {
    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let external_side = self.key.external_side(external);
        let local_side = self.key.local_side(local);
        let mut entries: Vec<Entry> = Vec::with_capacity(external.len() + local.len());
        for i in 0..external.len() {
            entries.push(Entry {
                sort_key: external_side.sort_value(external, i),
                index: i,
                is_external: true,
            });
        }
        for i in 0..local.len() {
            entries.push(Entry {
                sort_key: local_side.sort_value(local, i),
                index: i,
                is_external: false,
            });
        }
        entries.sort_by(|a, b| {
            a.sort_key
                .cmp(&b.sort_key)
                .then_with(|| a.is_external.cmp(&b.is_external))
                .then_with(|| a.index.cmp(&b.index))
        });

        let mut pairs: HashSet<CandidatePair> = HashSet::new();
        if entries.is_empty() {
            return Vec::new();
        }
        for start in 0..entries.len() {
            let end = (start + self.window).min(entries.len());
            let window = &entries[start..end];
            for (i, a) in window.iter().enumerate() {
                for b in &window[i + 1..] {
                    match (a.is_external, b.is_external) {
                        (true, false) => {
                            pairs.insert((a.index, b.index));
                        }
                        (false, true) => {
                            pairs.insert((b.index, a.index));
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut out: Vec<CandidatePair> = pairs.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingStats, CartesianBlocker};
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn window_covers_adjacent_records() {
        let (external, local) = small_stores();
        let blocker = SortedNeighborhoodBlocker::new(key(), 3);
        let pairs = blocker.candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        // Identical part numbers sort adjacently, so every true pair is found.
        for i in 0..4 {
            assert!(set.contains(&(i, i)), "missing true pair ({i},{i})");
        }
        assert_eq!(blocker.name(), "sorted-neighborhood");
    }

    #[test]
    fn larger_window_finds_superset_of_pairs() {
        let (external, local) = small_stores();
        let small: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 2)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let large: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 5)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert!(small.is_subset(&large));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn full_window_equals_cartesian_coverage() {
        let (external, local) = small_stores();
        let total = external.len() + local.len();
        let all: HashSet<_> = SortedNeighborhoodBlocker::new(key(), total)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let cartesian: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(all, cartesian);
    }

    #[test]
    fn produces_fewer_pairs_than_cartesian_but_complete() {
        let (external, local) = small_stores();
        let pairs = SortedNeighborhoodBlocker::new(key(), 3).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn window_is_clamped_to_two_and_empty_input_is_fine() {
        let blocker = SortedNeighborhoodBlocker::new(key(), 0);
        assert_eq!(blocker.window, 2);
        let (external, local) = empty_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }

    #[test]
    fn no_duplicate_pairs() {
        let (external, local) = small_stores();
        let pairs = SortedNeighborhoodBlocker::new(key(), 4).candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        assert_eq!(set.len(), pairs.len());
    }
}
