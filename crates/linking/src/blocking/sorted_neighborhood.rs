//! Sorted neighbourhood blocking.
//!
//! Related work of the paper: "Sorted Neighbourhood (SN) method sorts the
//! data items using a sorting key. A window of a given size is moved on the
//! list of sorted data items and those belonging to the window are compared."
//!
//! The locals are sorted by the sorting key into one **ladder** (the
//! cached per-shard [`KeyIndex::value_sorted`] tables, merged on the fly
//! across shard boundaries); each external record is then *inserted*
//! into that ladder at its own sort position and windows against the
//! `window − 1` nearest locals on either side. This per-external
//! formulation has three properties the engine leans on:
//!
//! * **The window is a property of the record, not of the batch.** An
//!   external's candidates depend only on its sort value and the local
//!   ladder — other externals never consume window slots. A
//!   single-record probe (see [`crate::serve`]) therefore produces
//!   exactly the candidates the same record gets inside a bulk run,
//!   and a singleton external side windows against every shard's
//!   ladder like any other record.
//! * **No dedup is needed.** The below/above walks cover disjoint
//!   ladder positions and each local occurs once in the ladder, so
//!   every (external, local) pair is emitted at most once; all pushes
//!   of one external are consecutive per shard, so the sink coalesces
//!   them into one explicit block per (shard, external).
//! * **Shard counts are invisible.** The walk merges the per-shard
//!   ladders by (sort value, global id) with one cursor per shard, so
//!   the candidate set over a [`ShardedStore`] is byte-identical to
//!   the single-store run even when a window straddles shards.
//!
//! Ties replicate the classic merged-list convention: an external with
//! sort value `v` inserts **after** every local whose sort value is
//! `≤ v` (locals sort before externals on equal keys), and equal-valued
//! locals order by global id.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair, CandidateRuns};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;
use crate::token_index::KeyIndex;
use std::sync::Arc;

/// Sorted-neighbourhood blocking over the key-sorted local ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedNeighborhoodBlocker {
    /// The sorting key recipe.
    pub key: BlockingKey,
    /// The window size (≥ 2); each external record pairs with the
    /// `window − 1` nearest locals below its sort position and the
    /// `window − 1` nearest above.
    pub window: usize,
}

impl SortedNeighborhoodBlocker {
    /// A sorted-neighbourhood blocker with the given key and window size.
    pub fn new(key: BlockingKey, window: usize) -> Self {
        SortedNeighborhoodBlocker {
            key,
            window: window.max(2),
        }
    }
}

impl Blocker for SortedNeighborhoodBlocker {
    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    /// The materialising adapter: stream into a single-shard sink, then
    /// sort (the legacy path sorted its window runs the same way).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The shard-aware materialising adapter: the streamed per-shard
    /// runs are offset back to global ids and index-sorted.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        let mut pairs = runs.into_global_pairs(local.into());
        pairs.sort_unstable();
        pairs
    }

    /// Native streaming. Per external record: two binary searches per
    /// shard locate its insertion position in every shard's cached
    /// [`KeyIndex::value_sorted`] ladder, then two k-way cursor walks
    /// emit the `window − 1` globally-nearest locals below and above —
    /// `O(shards · (log n + window))` per external, with all sort
    /// values served as arena borrows (no per-record `String`). Each
    /// external's pushes are consecutive per shard, so the sink
    /// coalesces them into one explicit block per (shard, external).
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        let shard_count = local.shard_count();
        out.reset(shard_count);
        fail::fail_point!("blocking::sorted_neighborhood");
        if self.window < 2 || external.is_empty() || local.is_empty() {
            // `new()` clamps, but the field is public: a window of 0 or
            // 1 holds no cross-source pair (and would invert the walk).
            return;
        }
        let reach = self.window - 1;
        let external_keys = external.key_index(&self.key.external_side(external));
        let local_side = self.key.local_side_of(local.schema());
        // No shard_active skip here: the sliding window is global, so
        // the walk must see every shard's ladder to decide which
        // new-shard records fall inside an external's window; pushes
        // into restricted shards are dropped by the sink itself.
        let local_keys: Vec<Arc<KeyIndex>> = local
            .iter()
            .map(|shard| shard.key_index(&local_side))
            .collect();
        let ladders: Vec<&[u32]> = local_keys.iter().map(|keys| keys.value_sorted()).collect();
        // One below-cursor and one above-cursor per shard, reused
        // across externals.
        let mut below = vec![0usize; shard_count];
        let mut above = vec![0usize; shard_count];
        for e in 0..external.len() {
            let value = external_keys.sort_value(e);
            for s in 0..shard_count {
                below[s] =
                    ladders[s].partition_point(|&r| local_keys[s].sort_value(r as usize) <= value);
                above[s] = below[s];
            }
            // Walk downward: at each step take the globally largest
            // (sort value, global id) among the per-shard candidates
            // just below the cursors.
            for _ in 0..reach {
                let mut best: Option<(usize, &str, usize)> = None;
                for s in 0..shard_count {
                    if below[s] == 0 {
                        continue;
                    }
                    let record = ladders[s][below[s] - 1] as usize;
                    let sort_value = local_keys[s].sort_value(record);
                    let global = local.offset(s) + record;
                    if best.is_none_or(|(_, bv, bg)| (sort_value, global) > (bv, bg)) {
                        best = Some((s, sort_value, global));
                    }
                }
                let Some((s, _, _)) = best else { break };
                below[s] -= 1;
                out.push(s, e, ladders[s][below[s]] as usize);
            }
            // Walk upward: globally smallest candidate at or after the
            // insertion position. The two walks cover disjoint ladder
            // positions, so no pair is emitted twice.
            for _ in 0..reach {
                let mut best: Option<(usize, &str, usize)> = None;
                for s in 0..shard_count {
                    if above[s] >= ladders[s].len() {
                        continue;
                    }
                    let record = ladders[s][above[s]] as usize;
                    let sort_value = local_keys[s].sort_value(record);
                    let global = local.offset(s) + record;
                    if best.is_none_or(|(_, bv, bg)| (sort_value, global) < (bv, bg)) {
                        best = Some((s, sort_value, global));
                    }
                }
                let Some((s, _, _)) = best else { break };
                out.push(s, e, ladders[s][above[s]] as usize);
                above[s] += 1;
            }
        }
    }

    /// Build each shard's key index **and** its sort ladder (the two
    /// local-side artifacts the window walk reads).
    fn warm(&self, local: LocalShards<'_>) {
        let local_side = self.key.local_side_of(local.schema());
        for shard in local.iter() {
            shard.key_index(&local_side).value_sorted();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingStats, CartesianBlocker};
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn window_covers_adjacent_records() {
        let (external, local) = small_stores();
        let blocker = SortedNeighborhoodBlocker::new(key(), 3);
        let pairs = blocker.candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        // Identical part numbers sort adjacently, so every true pair is found.
        for i in 0..4 {
            assert!(set.contains(&(i, i)), "missing true pair ({i},{i})");
        }
        assert_eq!(blocker.name(), "sorted-neighborhood");
    }

    #[test]
    fn larger_window_finds_superset_of_pairs() {
        let (external, local) = small_stores();
        let small: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 2)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let large: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 5)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert!(small.is_subset(&large));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn full_window_equals_cartesian_coverage() {
        let (external, local) = small_stores();
        let total = external.len() + local.len();
        let all: HashSet<_> = SortedNeighborhoodBlocker::new(key(), total)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let cartesian: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(all, cartesian);
    }

    #[test]
    fn produces_fewer_pairs_than_cartesian_but_complete() {
        let (external, local) = small_stores();
        let pairs = SortedNeighborhoodBlocker::new(key(), 3).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn window_is_clamped_to_two_and_empty_input_is_fine() {
        let blocker = SortedNeighborhoodBlocker::new(key(), 0);
        assert_eq!(blocker.window, 2);
        let (external, local) = empty_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }

    #[test]
    fn degenerate_window_set_through_the_public_field_yields_no_pairs() {
        // The field is pub, so the constructor clamp can be bypassed;
        // a window of 0 or 1 must degrade to zero candidates, not panic.
        let (external, local) = small_stores();
        for window in [0, 1] {
            let blocker = SortedNeighborhoodBlocker { key: key(), window };
            assert!(
                blocker.candidate_pairs(&external, &local).is_empty(),
                "window {window}"
            );
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        // The below/above walks cover disjoint ladder positions, so the
        // emitted list must already be duplicate-free.
        let (external, local) = small_stores();
        for window in 2..8 {
            let pairs =
                SortedNeighborhoodBlocker::new(key(), window).candidate_pairs(&external, &local);
            let set: HashSet<_> = pairs.iter().copied().collect();
            assert_eq!(set.len(), pairs.len(), "window {window}");
            // And the list is sorted: the per-window runs were merged.
            assert!(pairs.windows(2).all(|w| w[0] < w[1]), "window {window}");
        }
    }

    /// The streamed candidates match a naive per-external reference:
    /// insert the external into the (sort value, id)-ordered local
    /// list, take `window − 1` on each side.
    #[test]
    fn pairs_match_the_per_external_reference() {
        let (external, local) = small_stores();
        let side_e = key().external_side(&external);
        let side_l = key().local_side_of(local.interner());
        for window in [2, 3, 5, 40] {
            let mut expected: Vec<CandidatePair> = Vec::new();
            let mut ladder: Vec<(String, usize)> = (0..local.len())
                .map(|l| (side_l.sort_value(&local, l), l))
                .collect();
            ladder.sort();
            for e in 0..external.len() {
                let value = side_e.sort_value(&external, e);
                let position = ladder.partition_point(|(v, _)| *v <= value);
                for (_, l) in &ladder[position.saturating_sub(window - 1)..position] {
                    expected.push((e, *l));
                }
                for (_, l) in ladder[position..].iter().take(window - 1) {
                    expected.push((e, *l));
                }
            }
            expected.sort_unstable();
            expected.dedup();
            let pairs =
                SortedNeighborhoodBlocker::new(key(), window).candidate_pairs(&external, &local);
            assert_eq!(pairs, expected, "window {window}");
        }
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The walk merges per-shard ladders by (sort value, global id),
        // so the sharded set must be byte-identical to the single-store
        // set even for windows that straddle two shards.
        let (external_records, local_records) = {
            let external: Vec<_> = (0..12)
                .map(|i| ext_record(i, &format!("PN-{:03}", i * 3)))
                .collect();
            let local: Vec<_> = (0..12)
                .map(|i| loc_record(i, &format!("PN-{:03}", i * 3 + 1)))
                .collect();
            (external, local)
        };
        let external = crate::store::RecordStore::from_records(&external_records);
        let local = crate::store::RecordStore::from_records(&local_records);
        for window in [2, 4, 9] {
            let blocker = SortedNeighborhoodBlocker::new(key(), window);
            let single = blocker.candidate_pairs(&external, &local);
            for shard_count in [1, 2, 5, 13] {
                let sharded_store =
                    crate::shard::ShardedStore::from_records(&local_records, shard_count);
                let sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
                assert_eq!(sharded, single, "window {window}, {shard_count} shards");
            }
        }
    }

    /// Regression for the 1-record-external edge: a singleton external
    /// must window against **every** shard's ladder, across the full
    /// sweep of degenerate window sizes — 1 (no pairs), larger than
    /// the whole catalog (every local), and everything between.
    #[test]
    fn singleton_external_windows_against_every_shard() {
        let local_records: Vec<_> = (0..9)
            .map(|i| loc_record(i, &format!("PN-{:03}", i * 2)))
            .collect();
        let external = crate::store::RecordStore::from_records(&[ext_record(0, "PN-009")]);
        for shard_count in [1, 3, 9, 12] {
            let sharded = crate::shard::ShardedStore::from_records(&local_records, shard_count);
            // Window 1 (set through the public field): no pairs.
            let degenerate = SortedNeighborhoodBlocker {
                key: key(),
                window: 1,
            };
            assert!(
                degenerate
                    .candidate_pairs_sharded(&external, &sharded)
                    .is_empty(),
                "{shard_count} shards, window 1"
            );
            // Window larger than the catalog: every local, from every
            // shard, exactly once.
            let all = SortedNeighborhoodBlocker::new(key(), local_records.len() + 5);
            let pairs = all.candidate_pairs_sharded(&external, &sharded);
            let expected: Vec<CandidatePair> = (0..local_records.len()).map(|l| (0, l)).collect();
            assert_eq!(pairs, expected, "{shard_count} shards, full window");
            // An intermediate window takes the nearest locals on both
            // sides of the external's sort position. "PN-009" inserts
            // after PN-000..PN-008 (locals 0..=4) and before
            // PN-010..PN-016 (locals 5..=8).
            let nearest = SortedNeighborhoodBlocker::new(key(), 3);
            let pairs = nearest.candidate_pairs_sharded(&external, &sharded);
            assert_eq!(
                pairs,
                vec![(0, 3), (0, 4), (0, 5), (0, 6)],
                "{shard_count} shards, window 3"
            );
        }
    }
}
