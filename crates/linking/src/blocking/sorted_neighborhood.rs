//! Sorted neighbourhood blocking.
//!
//! Related work of the paper: "Sorted Neighbourhood (SN) method sorts the
//! data items using a sorting key. A window of a given size is moved on the
//! list of sorted data items and those belonging to the window are compared."
//!
//! Both sources are merged into one list, sorted by the sorting key; a
//! sliding window of size `w` moves over the sorted list, and every
//! (external, local) pair inside the window becomes a candidate.
//!
//! Two observations keep this hash-free at paper scale:
//!
//! * A pair of sorted positions `(i, j)` lies in *some* window of size
//!   `w` exactly when `0 < j − i < w`, so enumerating, per position, only
//!   the following `w − 1` positions emits **every window pair exactly
//!   once** — no `HashSet` dedup of the overlapping windows is needed,
//!   and the per-window runs are merged by one final index sort.
//! * The window only needs each record's *sort key*, which is a
//!   per-record computation. Against a [`ShardedStore`] the keys are
//!   therefore extracted per shard (tagged with global ids) and merged
//!   into one globally sorted list, so the sharded candidate set is
//!   byte-identical to the single-store one even though windows span
//!   shard boundaries.

use super::key::BlockingKey;
use super::{Blocker, CandidatePair, CandidateRuns};
use crate::shard::{LocalShards, ShardedStore};
use crate::store::RecordStore;
use crate::token_index::KeyIndex;
use std::sync::Arc;

/// Sorted-neighbourhood blocking over a merged, key-sorted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedNeighborhoodBlocker {
    /// The sorting key recipe.
    pub key: BlockingKey,
    /// The window size (≥ 2); a window of `w` covers `w` consecutive records
    /// of the sorted merged list.
    pub window: usize,
}

impl SortedNeighborhoodBlocker {
    /// A sorted-neighbourhood blocker with the given key and window size.
    pub fn new(key: BlockingKey, window: usize) -> Self {
        SortedNeighborhoodBlocker {
            key,
            window: window.max(2),
        }
    }
}

/// One entry of the merged sort list: which shard it came from
/// (`EXTERNAL` marks the external side) and its record id — shard-local
/// for local entries, so the sort key is resolved from that shard's
/// [`KeyIndex`] without any per-record `String`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Shard index of a local entry, or [`EXTERNAL`].
    shard: u32,
    /// Record id (shard-local for locals, store index for externals).
    record: u32,
}

/// The `shard` marker of external-side entries.
const EXTERNAL: u32 = u32::MAX;

/// The merged, globally sorted entry list over the external store and
/// every local shard, with all sort keys served by the store-level
/// [`KeyIndex`]es. Ordering replicates the materialised reference: sort
/// key, then side (locals first), then the record's global id — a total
/// order, so the result is independent of how entries were gathered.
struct SortList {
    external_keys: Arc<KeyIndex>,
    local_keys: Vec<Arc<KeyIndex>>,
    entries: Vec<Entry>,
}

impl SortList {
    fn build(key: &BlockingKey, external: &RecordStore, local: LocalShards<'_>) -> SortList {
        let external_keys = external.key_index(&key.external_side(external));
        let local_side = key.local_side_of(local.schema());
        let local_keys: Vec<Arc<KeyIndex>> = local
            .shards()
            .iter()
            .map(|shard| shard.key_index(&local_side))
            .collect();
        let mut entries: Vec<Entry> = Vec::with_capacity(external.len() + local.len());
        for record in 0..external.len() as u32 {
            entries.push(Entry {
                shard: EXTERNAL,
                record,
            });
        }
        for (s, shard) in local.shards().iter().enumerate() {
            for record in 0..shard.len() as u32 {
                entries.push(Entry {
                    shard: s as u32,
                    record,
                });
            }
        }
        let mut list = SortList {
            external_keys,
            local_keys,
            entries,
        };
        let (external_keys, local_keys, local) = (&list.external_keys, &list.local_keys, &local);
        let sort_key = |e: &Entry| -> &str {
            if e.shard == EXTERNAL {
                external_keys.sort_value(e.record as usize)
            } else {
                local_keys[e.shard as usize].sort_value(e.record as usize)
            }
        };
        // Contiguous shards make (shard, local id) order the global id
        // order, so the tie-breaks match the materialised reference
        // (key, locals before externals, global id).
        let global = |e: &Entry| -> (bool, usize) {
            if e.shard == EXTERNAL {
                (true, e.record as usize)
            } else {
                (false, local.offset(e.shard as usize) + e.record as usize)
            }
        };
        list.entries
            .sort_unstable_by(|a, b| sort_key(a).cmp(sort_key(b)).then(global(a).cmp(&global(b))));
        list
    }

    /// Emit every cross-source pair whose sorted positions lie within one
    /// window, as per-shard runs. The enumeration is **anchored on the
    /// external entries**: for each external at sorted position `i`,
    /// every local within `window − 1` positions on *either* side is
    /// emitted — a pair `(external@i, local@j)` lies in some window
    /// exactly when `|i − j| < window`, and each record occurs once in
    /// the list, so every pair is produced exactly once with no dedup.
    /// Anchoring keeps all pushes of one external consecutive (per
    /// shard), so the sink coalesces them into **one explicit block per
    /// (shard, external)** instead of degrading to one block per pair
    /// when externals and locals alternate in key order — that is what
    /// keeps the run-block queue smaller than the flat pair encoding
    /// (asserted by the bench validator's `queue_bytes ≤ pair_bytes`
    /// check).
    fn window_pairs(&self, window: usize, out: &mut CandidateRuns) {
        if window < 2 {
            // `new()` clamps, but the field is public: a window of 0 or 1
            // holds no cross-source pair (and would invert the range).
            return;
        }
        for (i, a) in self.entries.iter().enumerate() {
            if a.shard != EXTERNAL {
                continue;
            }
            let before = i.saturating_sub(window - 1);
            let after = (i + window).min(self.entries.len());
            for b in self.entries[before..i]
                .iter()
                .chain(&self.entries[i + 1..after])
            {
                if b.shard != EXTERNAL {
                    out.push(b.shard as usize, a.record as usize, b.record as usize);
                }
            }
        }
    }
}

impl Blocker for SortedNeighborhoodBlocker {
    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }

    /// The materialising adapter: stream into a single-shard sink, then
    /// sort (the legacy path sorted its window runs the same way).
    fn candidate_pairs(&self, external: &RecordStore, local: &RecordStore) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, LocalShards::single(local), &mut runs);
        let mut pairs = runs.take_shard(0);
        pairs.sort_unstable();
        pairs
    }

    /// The shard-aware materialising adapter: the streamed per-shard
    /// runs are offset back to global ids and index-sorted, reproducing
    /// the legacy globally sorted output byte for byte.
    fn candidate_pairs_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> Vec<CandidatePair> {
        let mut runs = CandidateRuns::new();
        self.stream_candidates(external, local.into(), &mut runs);
        let mut pairs = runs.into_global_pairs(local.into());
        pairs.sort_unstable();
        pairs
    }

    /// Native streaming. The sliding window must run over the
    /// **globally** sorted list (windows cross shard boundaries), so the
    /// per-shard sort keys — all served by cached store-level
    /// [`KeyIndex`]es, extracted once per shard with one
    /// [`KeySide`](super::KeySide) resolved against the shared schema —
    /// are merged into one sorted list before windowing; the window
    /// pairs are then emitted straight into the per-shard runs. The
    /// candidate set is byte-identical to the single-store run.
    fn stream_candidates(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        out: &mut CandidateRuns,
    ) {
        out.reset(local.shard_count());
        SortList::build(&self.key, external, local).window_pairs(self.window, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingStats, CartesianBlocker};
    use std::collections::HashSet;

    fn key() -> BlockingKey {
        BlockingKey::per_side(EXT_PN, LOC_PN, 0)
    }

    #[test]
    fn window_covers_adjacent_records() {
        let (external, local) = small_stores();
        let blocker = SortedNeighborhoodBlocker::new(key(), 3);
        let pairs = blocker.candidate_pairs(&external, &local);
        let set: HashSet<_> = pairs.iter().copied().collect();
        // Identical part numbers sort adjacently, so every true pair is found.
        for i in 0..4 {
            assert!(set.contains(&(i, i)), "missing true pair ({i},{i})");
        }
        assert_eq!(blocker.name(), "sorted-neighborhood");
    }

    #[test]
    fn larger_window_finds_superset_of_pairs() {
        let (external, local) = small_stores();
        let small: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 2)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let large: HashSet<_> = SortedNeighborhoodBlocker::new(key(), 5)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert!(small.is_subset(&large));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn full_window_equals_cartesian_coverage() {
        let (external, local) = small_stores();
        let total = external.len() + local.len();
        let all: HashSet<_> = SortedNeighborhoodBlocker::new(key(), total)
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        let cartesian: HashSet<_> = CartesianBlocker
            .candidate_pairs(&external, &local)
            .into_iter()
            .collect();
        assert_eq!(all, cartesian);
    }

    #[test]
    fn produces_fewer_pairs_than_cartesian_but_complete() {
        let (external, local) = small_stores();
        let pairs = SortedNeighborhoodBlocker::new(key(), 3).candidate_pairs(&external, &local);
        let true_pairs: HashSet<_> = (0..4).map(|i| (i, i)).collect();
        let stats = BlockingStats::evaluate(&pairs, &true_pairs, external.len(), local.len());
        assert_eq!(stats.pairs_completeness, 1.0);
        assert!(stats.reduction_ratio > 0.0);
    }

    #[test]
    fn window_is_clamped_to_two_and_empty_input_is_fine() {
        let blocker = SortedNeighborhoodBlocker::new(key(), 0);
        assert_eq!(blocker.window, 2);
        let (external, local) = empty_stores();
        assert!(blocker.candidate_pairs(&external, &local).is_empty());
    }

    #[test]
    fn degenerate_window_set_through_the_public_field_yields_no_pairs() {
        // The field is pub, so the constructor clamp can be bypassed;
        // a window of 0 or 1 must degrade to zero candidates, not panic.
        let (external, local) = small_stores();
        for window in [0, 1] {
            let blocker = SortedNeighborhoodBlocker { key: key(), window };
            assert!(
                blocker.candidate_pairs(&external, &local).is_empty(),
                "window {window}"
            );
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        // Each unordered position pair within the window distance is
        // enumerated exactly once, so the emitted list must already be
        // duplicate-free (the old implementation needed a HashSet here).
        let (external, local) = small_stores();
        for window in 2..8 {
            let pairs =
                SortedNeighborhoodBlocker::new(key(), window).candidate_pairs(&external, &local);
            let set: HashSet<_> = pairs.iter().copied().collect();
            assert_eq!(set.len(), pairs.len(), "window {window}");
            // And the list is sorted: the per-window runs were merged.
            assert!(pairs.windows(2).all(|w| w[0] < w[1]), "window {window}");
        }
    }

    #[test]
    fn sharded_candidates_equal_single_store() {
        // The override sorts globally across shard boundaries, so the
        // sharded set must be byte-identical to the single-store set
        // even for windows that straddle two shards.
        let (external_records, local_records) = {
            let external: Vec<_> = (0..12)
                .map(|i| ext_record(i, &format!("PN-{:03}", i * 3)))
                .collect();
            let local: Vec<_> = (0..12)
                .map(|i| loc_record(i, &format!("PN-{:03}", i * 3 + 1)))
                .collect();
            (external, local)
        };
        let external = crate::store::RecordStore::from_records(&external_records);
        let local = crate::store::RecordStore::from_records(&local_records);
        for window in [2, 4, 9] {
            let blocker = SortedNeighborhoodBlocker::new(key(), window);
            let single = blocker.candidate_pairs(&external, &local);
            for shard_count in [1, 2, 5, 13] {
                let sharded_store =
                    crate::shard::ShardedStore::from_records(&local_records, shard_count);
                let sharded = blocker.candidate_pairs_sharded(&external, &sharded_store);
                assert_eq!(sharded, single, "window {window}, {shard_count} shards");
            }
        }
    }
}
