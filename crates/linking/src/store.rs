//! The interned, columnar record store.
//!
//! [`crate::record::Record`] is a convenient builder — a
//! `BTreeMap<String, Vec<String>>` per item — but a terrible layout for
//! the linking hot path: every blocking key, attribute lookup and
//! similarity call hashes a full property IRI and chases per-record
//! allocations. [`RecordStore`] is the execution-side representation the
//! blockers and the comparator actually run on:
//!
//! * property IRIs are interned once into dense
//!   [`PropertyId`]s (see [`crate::intern`]),
//! * attribute values live in **contiguous per-property columns** — one
//!   text arena per property with value and per-record offsets — so
//!   `values(record, property)` is two array reads and yields `&str`
//!   slices into the arena,
//! * records are plain indexes (`usize`) into the store; candidate pairs
//!   are `(usize, usize)` and never clone a [`Term`],
//! * the whole-record `full_text` used by fallback similarity and
//!   cross-attribute blocking keys is **precomputed per record** at build
//!   time instead of being re-joined per pair.
//!
//! Stores are immutable once built. Build one with
//! [`RecordStore::from_records`], [`Record::into_store`], or directly
//! from an RDF graph with [`RecordStore::from_graph`]. Stores built
//! standalone intern independently: resolve an IRI against each store
//! (once, at construction of a blocker or comparator) with
//! [`RecordStore::property`], and never reuse an id across stores.
//! Stores built on one shared
//! [`crate::intern::SchemaInterner`] (via
//! [`RecordStore::builder_with_schema`] or the sharded constructors in
//! [`crate::shard`]) assign identical ids, so one resolution serves every
//! store of the batch.

use crate::blocking::key::{KeyRecipe, KeySide};
use crate::intern::{PropertyId, PropertyInterner, SchemaInterner};
use crate::record::Record;
use crate::token_index::{KeyIndex, TokenIndex};
use classilink_rdf::{Graph, Term};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One property's column: all values of that property over all records,
/// concatenated into a single text arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Column {
    /// Every value of this property, concatenated.
    text: String,
    /// Byte boundaries of the values in `text`: value `i` is
    /// `text[bounds[i] .. bounds[i + 1]]`; `len = value_count + 1`.
    bounds: Vec<u32>,
    /// Per-record value ranges: record `r` owns values
    /// `offsets[r] .. offsets[r + 1]`; `len = record_count + 1`.
    offsets: Vec<u32>,
}

impl Column {
    fn value(&self, i: usize) -> &str {
        &self.text[self.bounds[i] as usize..self.bounds[i + 1] as usize]
    }

    fn range(&self, record: usize) -> std::ops::Range<usize> {
        self.offsets[record] as usize..self.offsets[record + 1] as usize
    }
}

/// Immutable, columnar store of flat records. See the [module
/// docs](self) for the layout.
#[derive(Debug, Default)]
pub struct RecordStore {
    /// The property symbol table this store was frozen with. Shared (via
    /// `Arc`) between every shard of a [`ShardedStore`](crate::shard::ShardedStore)
    /// so that one id resolution serves all of them.
    interner: Arc<PropertyInterner>,
    /// Item identifier per record index.
    ids: Vec<Term>,
    /// Record index per item identifier.
    id_index: HashMap<Term, u32>,
    /// One column per interned property, indexed by `PropertyId`.
    columns: Vec<Column>,
    /// All records' full text, concatenated.
    full_text: String,
    /// Byte boundaries of `full_text`: record `r`'s text is
    /// `full_text[full_text_bounds[r] .. full_text_bounds[r + 1]]`.
    full_text_bounds: Vec<u32>,
    /// Lazily-built per-value token/bigram precomputation (see
    /// [`RecordStore::token_index`]); a cache, excluded from equality.
    token_index: OnceLock<TokenIndex>,
    /// Lazily-built full-text token/bigram precomputation (see
    /// [`RecordStore::full_token_index`]); a cache, excluded from
    /// equality.
    full_token_index: OnceLock<TokenIndex>,
    /// Lazily-built blocking-key precomputation, one [`KeyIndex`] per
    /// key recipe (see [`RecordStore::key_index`]); a cache, excluded
    /// from equality.
    key_indexes: Mutex<HashMap<KeyRecipe, Arc<KeyIndex>>>,
}

impl PartialEq for RecordStore {
    /// Structural equality over the stored data; the lazily-built
    /// [`TokenIndex`] and [`KeyIndex`] caches are derived state and
    /// deliberately ignored.
    fn eq(&self, other: &Self) -> bool {
        self.interner == other.interner
            && self.ids == other.ids
            && self.id_index == other.id_index
            && self.columns == other.columns
            && self.full_text == other.full_text
            && self.full_text_bounds == other.full_text_bounds
    }
}

impl Clone for RecordStore {
    /// Clones the stored data and the token-index caches; the key-index
    /// cache is carried over as shared [`Arc`]s (indexes are immutable,
    /// so the clone and the original can serve the same entries).
    fn clone(&self) -> Self {
        RecordStore {
            interner: self.interner.clone(),
            ids: self.ids.clone(),
            id_index: self.id_index.clone(),
            columns: self.columns.clone(),
            full_text: self.full_text.clone(),
            full_text_bounds: self.full_text_bounds.clone(),
            token_index: self.token_index.clone(),
            full_token_index: self.full_token_index.clone(),
            key_indexes: Mutex::new(
                self.key_indexes
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone(),
            ),
        }
    }
}

impl RecordStore {
    /// An empty builder interning into its own private schema.
    pub fn builder() -> RecordStoreBuilder {
        RecordStoreBuilder::default()
    }

    /// An empty builder interning into a **shared** schema: every store
    /// built on a handle of the same [`SchemaInterner`] assigns the same
    /// [`PropertyId`] to the same IRI, so compiled comparators and
    /// resolved blocking keys can be reused across all of them.
    pub fn builder_with_schema(schema: SchemaInterner) -> RecordStoreBuilder {
        RecordStoreBuilder {
            schema,
            ids: Vec::new(),
            raw_columns: Vec::new(),
        }
    }

    /// Columnarise a slice of records (order preserved: record `i` of the
    /// store is `records[i]`).
    pub fn from_records(records: &[Record]) -> Self {
        let mut builder = Self::builder();
        for record in records {
            builder.push(record);
        }
        builder.build()
    }

    /// Build the store of every subject of `graph`, one record per
    /// subject holding its literal-valued triples (the columnar
    /// equivalent of [`Record::all_from_graph`]).
    pub fn from_graph(graph: &Graph) -> Self {
        let mut builder = Self::builder();
        builder.push_graph(graph);
        builder.build()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The item identifier of record `record`.
    pub fn id(&self, record: usize) -> &Term {
        &self.ids[record]
    }

    /// The record index of item `id`, if present.
    pub fn index_of(&self, id: &Term) -> Option<usize> {
        self.id_index.get(id).map(|&i| i as usize)
    }

    /// The interned id of a property IRI, if this store's schema knows it.
    ///
    /// With a private schema that means "some record of this store has
    /// the property"; with a shared [`SchemaInterner`] the IRI may have
    /// been interned by a sibling store, in which case the id resolves
    /// but every record's value list is empty.
    pub fn property(&self, iri: &str) -> Option<PropertyId> {
        self.interner.get(iri)
    }

    /// The property interner this store was frozen with (shared between
    /// all stores built on one [`SchemaInterner`]).
    pub fn interner(&self) -> &PropertyInterner {
        &self.interner
    }

    /// `(id, IRI)` of every property of this store's schema (including,
    /// under a shared schema, properties only sibling stores populate).
    pub fn properties(&self) -> impl Iterator<Item = (PropertyId, &str)> {
        self.interner.iter()
    }

    /// The values of `property` on `record` (empty iterator when the
    /// record, or this whole store, has no values for it).
    pub fn values(&self, record: usize, property: PropertyId) -> Values<'_> {
        // Under a shared schema an id may exceed this store's column
        // count (property interned by a sibling store, or after this
        // store was frozen) — such properties are simply absent here.
        match self.columns.get(property.index()) {
            Some(column) => Values {
                column: Some(column),
                range: column.range(record),
            },
            None => Values {
                column: None,
                range: 0..0,
            },
        }
    }

    /// The values of `property` on `record` as a random-access list —
    /// the comparison hot path's view: `get` indexes the column slice
    /// directly (no iterator cloning for the multi-value best-pairing
    /// loop) and the list addresses the matching [`TokenIndex`]
    /// entries by column-global value index.
    pub fn value_list(&self, record: usize, property: PropertyId) -> ValueList<'_> {
        match self.columns.get(property.index()) {
            Some(column) => {
                let range = column.range(record);
                ValueList {
                    column: Some(column),
                    start: range.start,
                    len: range.len(),
                }
            }
            None => ValueList {
                column: None,
                start: 0,
                len: 0,
            },
        }
    }

    /// The first value of `property` on `record`, if any.
    pub fn first(&self, record: usize, property: PropertyId) -> Option<&str> {
        self.values(record, property).next()
    }

    /// The lazily-built per-value token/bigram precomputation of this
    /// store (tokenises every attribute value exactly once, on first
    /// call; subsequent calls return the cache). Used by the
    /// set-measure kernels of
    /// [`CompiledComparator::score`](crate::comparator::CompiledComparator::score);
    /// the pipeline pre-warms it before spawning comparison workers.
    /// Note the first-call cost is `O(store)`, not `O(pair)` — one-shot
    /// set-measure [`compare`](crate::comparator::CompiledComparator::compare)
    /// calls on a large store pay it too.
    pub fn token_index(&self) -> &TokenIndex {
        self.token_index.get_or_init(|| TokenIndex::build(self))
    }

    /// The lazily-built full-text token/bigram precomputation (the
    /// set-measure fallback's input), independent of
    /// [`token_index`](Self::token_index) so a fallback that never
    /// fires never tokenises the full texts.
    pub fn full_token_index(&self) -> &TokenIndex {
        self.full_token_index
            .get_or_init(|| TokenIndex::build_full(self))
    }

    /// The lazily-built blocking-key precomputation for one resolved
    /// [`KeySide`]: every record's normalised key (and, on demand, its
    /// padded key bigrams) computed once and cached for the store's
    /// lifetime, shared by every recipe-compatible blocker. `side` must
    /// have been resolved against this store's schema. First call per
    /// recipe costs `O(store)`; later calls are a map lookup.
    pub fn key_index(&self, side: &KeySide) -> Arc<KeyIndex> {
        // Poison recovery: the cache is a reconstructible memo. If a
        // build panicked under the lock (`or_insert_with` inserts only
        // on success), the map still holds only completed indexes —
        // keep serving and rebuild on demand instead of cascading.
        self.key_indexes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(side.recipe())
            .or_insert_with(|| Arc::new(KeyIndex::build(self, side)))
            .clone()
    }

    /// Number of per-property columns (≤ the schema's property count:
    /// properties interned only by sibling stores have no column here).
    pub(crate) fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Every value of column `column`, in column-global value order (the
    /// order [`ValueList::value_index`] addresses).
    pub(crate) fn column_values(&self, column: usize) -> impl Iterator<Item = &str> {
        let column = &self.columns[column];
        (0..column.bounds.len().saturating_sub(1)).map(move |i| column.value(i))
    }

    /// The raw item identifiers, in record order — the persistence
    /// layer's view (`id_index` is derived state and never serialized).
    pub(crate) fn persist_ids(&self) -> &[Term] {
        &self.ids
    }

    /// Column `column`'s flat parts `(text, bounds, offsets)` exactly as
    /// stored — what the snapshot writer serializes.
    pub(crate) fn persist_column(&self, column: usize) -> (&str, &[u32], &[u32]) {
        let column = &self.columns[column];
        (&column.text, &column.bounds, &column.offsets)
    }

    /// The precomputed full-text arena `(text, bounds)` — serialized
    /// rather than recomputed on load so a restored store is
    /// byte-identical without re-deriving the sorted property order.
    pub(crate) fn persist_full_text(&self) -> (&str, &[u32]) {
        (&self.full_text, &self.full_text_bounds)
    }

    /// Reassemble a store from persisted parts, validating every
    /// structural invariant the accessors above rely on — a snapshot
    /// file that passed its checksums can still be adversarially
    /// malformed, and indexing must never panic on it. `id_index` is
    /// rebuilt and the token/key caches start cold (they are derived
    /// state). Errors are human-readable descriptions of the violated
    /// invariant; the caller wraps them into a
    /// [`PersistError`](crate::persist::PersistError).
    pub(crate) fn from_persisted_parts(
        interner: Arc<PropertyInterner>,
        ids: Vec<Term>,
        columns: Vec<(String, Vec<u32>, Vec<u32>)>,
        full_text: String,
        full_text_bounds: Vec<u32>,
    ) -> Result<RecordStore, String> {
        // `bounds` must tile `text` exactly, on character boundaries,
        // monotonically — `Column::value` slices without checking.
        fn check_arena(text: &str, bounds: &[u32], what: &str) -> Result<(), String> {
            if bounds.first() != Some(&0) {
                return Err(format!("{what}: bounds must start at 0"));
            }
            if bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{what}: bounds are not monotonic"));
            }
            if *bounds.last().unwrap() as usize != text.len() {
                return Err(format!(
                    "{what}: bounds end at {} but the arena holds {} bytes",
                    bounds.last().unwrap(),
                    text.len()
                ));
            }
            if let Some(b) = bounds.iter().find(|&&b| !text.is_char_boundary(b as usize)) {
                return Err(format!("{what}: bound {b} splits a character"));
            }
            Ok(())
        }
        let record_count = ids.len();
        let count_u32 =
            |n: usize, what: &str| u32::try_from(n).map_err(|_| format!("{what} exceeds u32::MAX"));
        count_u32(record_count, "record count")?;
        if columns.len() > interner.len() {
            return Err(format!(
                "{} columns but the schema has only {} properties",
                columns.len(),
                interner.len()
            ));
        }
        if full_text_bounds.len() != record_count + 1 {
            return Err(format!(
                "full text has {} bounds for {record_count} records",
                full_text_bounds.len()
            ));
        }
        check_arena(&full_text, &full_text_bounds, "full text")?;
        let mut built = Vec::with_capacity(columns.len());
        for (c, (text, bounds, offsets)) in columns.into_iter().enumerate() {
            let what = format!("column {c}");
            if bounds.is_empty() {
                return Err(format!("{what}: empty bounds"));
            }
            check_arena(&text, &bounds, &what)?;
            let value_count = count_u32(bounds.len() - 1, &what)?;
            if offsets.len() != record_count + 1 {
                return Err(format!(
                    "{what}: {} offsets for {record_count} records",
                    offsets.len()
                ));
            }
            if offsets.first() != Some(&0) {
                return Err(format!("{what}: offsets must start at 0"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{what}: offsets are not monotonic"));
            }
            if *offsets.last().unwrap() != value_count {
                return Err(format!(
                    "{what}: offsets end at {} but the column holds {value_count} values",
                    offsets.last().unwrap()
                ));
            }
            built.push(Column {
                text,
                bounds,
                offsets,
            });
        }
        let id_index = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i as u32))
            .collect();
        Ok(RecordStore {
            interner,
            ids,
            id_index,
            columns: built,
            full_text,
            full_text_bounds,
            token_index: OnceLock::new(),
            full_token_index: OnceLock::new(),
            key_indexes: Mutex::new(HashMap::new()),
        })
    }

    /// Number of attribute values on `record`.
    pub fn value_count(&self, record: usize) -> usize {
        self.columns.iter().map(|c| c.range(record).len()).sum()
    }

    /// Every value of every attribute of `record`, space-joined in sorted
    /// property order — precomputed at build time, so this is a slice
    /// borrow, not an allocation.
    pub fn full_text(&self, record: usize) -> &str {
        &self.full_text
            [self.full_text_bounds[record] as usize..self.full_text_bounds[record + 1] as usize]
    }

    /// `(property IRI, value)` facts of `record`, in interning order.
    pub fn facts(&self, record: usize) -> impl Iterator<Item = (&str, &str)> {
        self.interner
            .iter()
            .flat_map(move |(id, iri)| self.values(record, id).map(move |v| (iri, v)))
    }

    /// Materialise one record (the inverse of [`RecordStore::from_records`]).
    pub fn record(&self, record: usize) -> Record {
        let mut out = Record::new(self.ids[record].clone());
        for (iri, value) in self.facts(record) {
            out.add(iri, value);
        }
        out
    }

    /// Materialise every record, in index order.
    pub fn to_records(&self) -> Vec<Record> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// Replace this store's contents **in place** with one record — the
    /// serving layer's probe store. Every arena (`ids`, columns,
    /// `full_text`) is cleared and refilled retaining its capacity, and
    /// every cached [`KeyIndex`] is rebuilt in place, so a warm refill
    /// performs no allocation. `schema` must be the shared
    /// [`SchemaInterner`] this store was built on; properties the record
    /// introduces are interned into it (append-only, so ids compiled
    /// against it elsewhere stay valid). `sorted_properties` is a
    /// caller-owned scratch holding the schema's ids in IRI order; it is
    /// re-derived only when the schema grows.
    ///
    /// Two deliberate departures from a frozen store: `index_of` always
    /// misses (the id→index map is kept empty to avoid a per-refill
    /// [`Term`] clone), and the token-index caches are discarded rather
    /// than rebuilt (set-measure kernels re-tokenise the single record
    /// lazily).
    pub(crate) fn refill_single(
        &mut self,
        schema: &SchemaInterner,
        record: &Record,
        sorted_properties: &mut Vec<PropertyId>,
    ) {
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("record exceeds u32::MAX bytes/values")
        }
        // Models a malformed record failing mid-refill; every stage below
        // clears its buffers at the start of the *next* call, so a probe
        // store abandoned here heals on retry.
        fail::fail_point!("store::refill_single");
        for property in record.attributes.keys() {
            schema.intern(property);
        }
        if self.interner.len() != schema.len() || sorted_properties.len() != self.interner.len() {
            // Cold path: first refill, or the record introduced a new
            // property. Re-snapshot and re-derive the IRI-sorted order;
            // warm refills skip both.
            if self.interner.len() != schema.len() {
                self.interner = Arc::new(schema.snapshot());
            }
            sorted_properties.clear();
            sorted_properties.extend(self.interner.iter().map(|(id, _)| id));
            let interner = &self.interner;
            sorted_properties.sort_by(|a, b| interner.resolve(*a).cmp(interner.resolve(*b)));
        }

        if self.ids.len() == 1 {
            assign_term(&mut self.ids[0], &record.id);
        } else {
            self.ids.clear();
            self.ids.push(record.id.clone());
        }
        self.id_index.clear();

        for column in &mut self.columns {
            column.text.clear();
            column.bounds.clear();
            column.bounds.push(0);
            column.offsets.clear();
            column.offsets.push(0);
        }
        for (property, values) in &record.attributes {
            let pid = self
                .interner
                .get(property)
                .expect("probe property interned above");
            while self.columns.len() <= pid.index() {
                // First sight of this property on the probe side: grow
                // the column table. Later refills reuse the slot.
                let mut column = Column::default();
                column.bounds.push(0);
                column.offsets.push(0);
                self.columns.push(column);
            }
            let column = &mut self.columns[pid.index()];
            for value in values {
                column.text.push_str(value);
                column.bounds.push(offset(column.text.len()));
            }
        }
        for column in &mut self.columns {
            column.offsets.push(offset(column.bounds.len() - 1));
        }

        // Full text joins the record's values in sorted property order,
        // mirroring `RecordStoreBuilder::finish`.
        self.full_text.clear();
        self.full_text_bounds.clear();
        self.full_text_bounds.push(0);
        let mut first = true;
        for &pid in sorted_properties.iter() {
            let Some(column) = self.columns.get(pid.index()) else {
                continue;
            };
            for value_index in column.range(0) {
                if !first {
                    self.full_text.push(' ');
                }
                first = false;
                self.full_text.push_str(column.value(value_index));
            }
        }
        self.full_text_bounds.push(offset(self.full_text.len()));

        let _ = self.token_index.take();
        let _ = self.full_token_index.take();

        // Rebuild every cached key index in place against the new
        // contents. `Arc::get_mut` succeeds on the warm path (blockers
        // drop their external-side handle when streaming returns); a
        // handle held across refills forces a fresh build instead.
        let mut key_indexes = std::mem::take(
            &mut *self
                .key_indexes
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for (recipe, index) in key_indexes.iter_mut() {
            let side = KeySide::from_recipe(*recipe);
            match Arc::get_mut(index) {
                Some(index) => index.rebuild(self, &side),
                None => *index = Arc::new(KeyIndex::build(self, &side)),
            }
        }
        *self
            .key_indexes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = key_indexes;
    }
}

/// Overwrite `dest` with `src`, reusing `dest`'s string allocation when
/// both are the same simple variant (the warm-probe common case).
fn assign_term(dest: &mut Term, src: &Term) {
    match (dest, src) {
        (Term::Iri(d), Term::Iri(s)) | (Term::Blank(d), Term::Blank(s)) => {
            d.clear();
            d.push_str(s);
        }
        (dest, src) => *dest = src.clone(),
    }
}

/// Iterator over one record's values of one property.
#[derive(Debug, Clone)]
pub struct Values<'a> {
    /// `None` when the property has no column in this store (the range
    /// is empty in that case, so the iterator yields nothing).
    column: Option<&'a Column>,
    range: std::ops::Range<usize>,
}

impl<'a> Iterator for Values<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let i = self.range.next()?;
        Some(self.column?.value(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Values<'_> {}

/// Random-access view of one record's values of one property (see
/// [`RecordStore::value_list`]).
#[derive(Debug, Clone, Copy)]
pub struct ValueList<'a> {
    /// `None` when the property has no column in this store.
    column: Option<&'a Column>,
    /// Column-global index of the record's first value.
    start: usize,
    /// Number of values the record holds for the property.
    len: usize,
}

impl<'a> ValueList<'a> {
    /// An empty list (what a rule with an unresolved property hoists).
    pub(crate) fn empty() -> Self {
        ValueList {
            column: None,
            start: 0,
            len: 0,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the record has no value for the property.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th value (a direct column-slice read).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> &'a str {
        assert!(i < self.len, "value index {i} out of range ({})", self.len);
        self.column
            .expect("non-empty ValueList always has a column")
            .value(self.start + i)
    }

    /// The column-global value index of the `i`-th value — the key the
    /// per-value [`TokenIndex`] lists are addressed by.
    pub(crate) fn value_index(&self, i: usize) -> usize {
        self.start + i
    }

    /// Iterate the values in order.
    pub fn iter(&self) -> Values<'a> {
        Values {
            column: self.column,
            range: self.start..self.start + self.len,
        }
    }
}

impl<'a> IntoIterator for &ValueList<'a> {
    type Item = &'a str;
    type IntoIter = Values<'a>;

    fn into_iter(self) -> Values<'a> {
        self.iter()
    }
}

/// Incremental [`RecordStore`] construction: push records one at a time,
/// then [`build`](RecordStoreBuilder::build).
///
/// Builders made with [`RecordStore::builder`] intern into a private
/// schema; builders made with [`RecordStore::builder_with_schema`] share
/// a [`SchemaInterner`] with sibling builders (see [`crate::shard`]).
#[derive(Debug, Clone, Default)]
pub struct RecordStoreBuilder {
    schema: SchemaInterner,
    ids: Vec<Term>,
    /// Per property: `(record, value)` in non-decreasing record order.
    raw_columns: Vec<Vec<(u32, String)>>,
}

impl RecordStoreBuilder {
    /// Append one record given a closure producing its `(property IRI,
    /// value)` facts. The closure form lets callers feed borrowed facts
    /// without building an intermediate `Vec`.
    pub fn push_record<'f, I, F>(&mut self, id: Term, facts: F) -> usize
    where
        I: Iterator<Item = (&'f str, &'f str)>,
        F: FnOnce() -> I,
    {
        let record = self.ids.len();
        let record_u32 = u32::try_from(record).expect("more than u32::MAX records");
        self.ids.push(id);
        for (property, value) in facts() {
            let pid = self.schema.intern(property);
            // Under a shared schema sibling builders advance the id
            // sequence, so ids may skip: pad with empty columns.
            while self.raw_columns.len() <= pid.index() {
                self.raw_columns.push(Vec::new());
            }
            self.raw_columns[pid.index()].push((record_u32, value.to_string()));
        }
        record
    }

    /// Append one [`Record`].
    pub fn push(&mut self, record: &Record) -> usize {
        self.push_record(record.id.clone(), || {
            record
                .attributes
                .iter()
                .flat_map(|(p, vs)| vs.iter().map(move |v| (p.as_str(), v.as_str())))
        })
    }

    /// Append the record of one graph subject: its literal-valued triples
    /// become the record's facts (via the shared subject-grouping
    /// adapter, [`SubjectGrouper`](crate::ingest::SubjectGrouper)).
    pub fn push_subject(&mut self, graph: &Graph, subject: &Term) -> usize {
        let mut grouper = crate::ingest::SubjectGrouper::new();
        grouper.push_subject(self, graph, subject);
        grouper
            .flush(self)
            .expect("push_subject began exactly one record")
    }

    /// Append one record per subject of `graph`, in subject order.
    pub fn push_graph(&mut self, graph: &Graph) {
        crate::ingest::columnarise_graph(graph, self);
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Freeze into an immutable store, snapshotting the schema as it
    /// stands now.
    pub fn build(self) -> RecordStore {
        let interner = Arc::new(self.schema.snapshot());
        self.finish(interner)
    }

    /// Freeze into an immutable store carrying the given (already
    /// snapshotted) schema — the shard path, where every shard of a
    /// [`ShardedStore`](crate::shard::ShardedStore) must share one `Arc`.
    pub(crate) fn finish(self, interner: Arc<PropertyInterner>) -> RecordStore {
        // Offsets are u32 to halve the index footprint; overflow must
        // fail loudly, not wrap into corrupt column slices.
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("column exceeds u32::MAX bytes/values; shard the store")
        }
        let record_count = self.ids.len();
        let mut columns = Vec::with_capacity(self.raw_columns.len());
        for raw in &self.raw_columns {
            let mut column = Column {
                text: String::with_capacity(raw.iter().map(|(_, v)| v.len()).sum()),
                bounds: Vec::with_capacity(raw.len() + 1),
                offsets: Vec::with_capacity(record_count + 1),
            };
            column.bounds.push(0);
            // offsets[r] is the index of record r's first value; records
            // without values in this column get an empty range.
            column.offsets.push(0);
            let mut next_record = 1usize;
            for (value_index, (record, value)) in raw.iter().enumerate() {
                let record = *record as usize;
                while next_record <= record {
                    column.offsets.push(offset(value_index));
                    next_record += 1;
                }
                column.text.push_str(value);
                column.bounds.push(offset(column.text.len()));
            }
            while next_record <= record_count {
                column.offsets.push(offset(raw.len()));
                next_record += 1;
            }
            debug_assert_eq!(column.offsets.len(), record_count + 1);
            columns.push(column);
        }

        // Precompute full text per record, joining values in sorted
        // property order (mirrors `Record::full_text`, which iterates a
        // BTreeMap). Schema properties this builder never saw have no
        // column and contribute nothing.
        let mut sorted_properties: Vec<PropertyId> = interner.iter().map(|(id, _)| id).collect();
        sorted_properties.sort_by(|a, b| interner.resolve(*a).cmp(interner.resolve(*b)));
        let mut full_text = String::new();
        let mut full_text_bounds = Vec::with_capacity(record_count + 1);
        full_text_bounds.push(0u32);
        for record in 0..record_count {
            let mut first = true;
            for &pid in &sorted_properties {
                let Some(column) = columns.get(pid.index()) else {
                    continue;
                };
                for value_index in column.range(record) {
                    if !first {
                        full_text.push(' ');
                    }
                    first = false;
                    full_text.push_str(column.value(value_index));
                }
            }
            full_text_bounds.push(offset(full_text.len()));
        }

        let id_index = self
            .ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), offset(i)))
            .collect();
        RecordStore {
            interner,
            ids: self.ids,
            id_index,
            columns,
            full_text,
            full_text_bounds,
            token_index: OnceLock::new(),
            full_token_index: OnceLock::new(),
            key_indexes: Mutex::new(HashMap::new()),
        }
    }
}

impl Record {
    /// Consume a batch of records into a columnar store (the mechanical
    /// migration path for call sites that used to pass `&[Record]`).
    pub fn into_store(records: Vec<Record>) -> RecordStore {
        RecordStore::from_records(&records)
    }
}

impl FromIterator<Record> for RecordStore {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        let mut builder = RecordStore::builder();
        for record in iter {
            builder.push(&record);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_rdf::Triple;

    const PN: &str = "http://e.org/v#pn";
    const MFR: &str = "http://e.org/v#mfr";

    fn sample_records() -> Vec<Record> {
        let mut a = Record::new(Term::iri("http://e.org/p1"));
        a.add(PN, "CRCW0805-10K")
            .add(MFR, "Vishay")
            .add(MFR, "Vishay Intertech");
        let b = Record::new(Term::iri("http://e.org/p2"));
        let mut c = Record::new(Term::iri("http://e.org/p3"));
        c.add(PN, "T83A225");
        vec![a, b, c]
    }

    #[test]
    fn id_based_access_matches_record_access() {
        let records = sample_records();
        let store = RecordStore::from_records(&records);
        assert_eq!(store.len(), 3);
        let pn = store.property(PN).unwrap();
        let mfr = store.property(MFR).unwrap();
        assert_eq!(store.first(0, pn), Some("CRCW0805-10K"));
        let mfrs: Vec<&str> = store.values(0, mfr).collect();
        assert_eq!(mfrs, vec!["Vishay", "Vishay Intertech"]);
        assert_eq!(store.values(1, pn).len(), 0);
        assert_eq!(store.first(1, pn), None);
        assert_eq!(store.first(2, pn), Some("T83A225"));
        assert_eq!(store.value_count(0), 3);
        assert_eq!(store.value_count(1), 0);
        assert_eq!(store.property("http://nowhere.org/v#x"), None);
    }

    #[test]
    fn ids_and_index_round_trip() {
        let store = RecordStore::from_records(&sample_records());
        for i in 0..store.len() {
            assert_eq!(store.index_of(store.id(i)), Some(i));
        }
        assert_eq!(store.index_of(&Term::iri("http://e.org/p9")), None);
    }

    #[test]
    fn full_text_is_precomputed_and_matches_record() {
        let records = sample_records();
        let store = RecordStore::from_records(&records);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(store.full_text(i), record.full_text());
        }
        assert_eq!(store.full_text(1), "");
    }

    #[test]
    fn records_round_trip_through_the_store() {
        let records = sample_records();
        let store = RecordStore::from_records(&records);
        assert_eq!(store.to_records(), records);
    }

    #[test]
    fn from_graph_matches_record_extraction() {
        let mut g = Graph::new();
        g.insert(Triple::literal("http://e.org/p1", PN, "CRCW0805-10K"));
        g.insert(Triple::literal("http://e.org/p1", MFR, "Vishay"));
        g.insert(Triple::iris(
            "http://e.org/p1",
            "http://e.org/v#cls",
            "http://e.org/c#R",
        ));
        g.insert(Triple::literal("http://e.org/p2", PN, "T83A225"));
        let store = RecordStore::from_graph(&g);
        assert_eq!(store.to_records(), Record::all_from_graph(&g));
    }

    #[test]
    fn facts_enumerate_all_attribute_values() {
        let store = RecordStore::from_records(&sample_records());
        let facts: Vec<(&str, &str)> = store.facts(0).collect();
        assert_eq!(facts.len(), 3);
        assert!(facts.contains(&(PN, "CRCW0805-10K")));
        assert!(facts.contains(&(MFR, "Vishay Intertech")));
        assert_eq!(store.facts(1).count(), 0);
    }

    #[test]
    fn empty_store_and_empty_builder() {
        let store = RecordStore::from_records(&[]);
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        assert!(store.interner().is_empty());
        assert!(store.to_records().is_empty());
        let built = RecordStore::builder().build();
        assert_eq!(built, store);
    }

    #[test]
    fn builder_accepts_borrowed_facts() {
        let mut builder = RecordStore::builder();
        let idx = builder.push_record(Term::iri("http://e.org/x"), || {
            [(PN, "a"), (PN, "b")].into_iter()
        });
        assert_eq!(idx, 0);
        let store = builder.build();
        let pn = store.property(PN).unwrap();
        let values: Vec<&str> = store.values(0, pn).collect();
        assert_eq!(values, vec!["a", "b"]);
    }

    #[test]
    fn shared_schema_stores_agree_on_ids() {
        let schema = SchemaInterner::new();
        let mut a = RecordStore::builder_with_schema(schema.clone());
        let mut b = RecordStore::builder_with_schema(schema.clone());
        // Interleave interning so b's first property is not id 0.
        a.push(&sample_records()[0]); // interns PN, MFR
        let mut r = Record::new(Term::iri("http://e.org/q1"));
        r.add("http://e.org/v#other", "x").add(PN, "T83A225");
        b.push(&r);
        let (a, b) = (a.build(), b.build());
        assert_eq!(a.property(PN), b.property(PN));
        // Record attributes intern in BTreeMap (IRI) order: mfr, then pn.
        assert_eq!(a.property(MFR).unwrap().index(), 0);
        assert_eq!(a.property(PN).unwrap().index(), 1);
        // A property only the sibling store populates resolves to an
        // empty value list, not a panic.
        let other = a.property("http://e.org/v#other").unwrap();
        assert_eq!(a.values(0, other).count(), 0);
        assert_eq!(b.first(0, other), Some("x"));
        // full_text joins only this store's own values (sorted by IRI:
        // #other before #pn).
        assert_eq!(b.full_text(0), "x T83A225");
    }

    #[test]
    fn ids_interned_after_freezing_resolve_to_empty_values() {
        let schema = SchemaInterner::new();
        let mut builder = RecordStore::builder_with_schema(schema.clone());
        builder.push(&sample_records()[0]);
        let store = builder.build();
        // A sibling interns a brand-new property after this store froze:
        // the id exceeds the store's column count.
        let late = schema.intern("http://e.org/v#late");
        assert!(late.index() >= store.interner().len());
        assert_eq!(store.values(0, late).count(), 0);
        assert_eq!(store.first(0, late), None);
    }

    #[test]
    fn graph_push_helpers_match_from_graph() {
        let mut g = Graph::new();
        g.insert(Triple::literal("http://e.org/p1", PN, "CRCW0805-10K"));
        g.insert(Triple::literal("http://e.org/p2", PN, "T83A225"));
        let mut builder = RecordStore::builder();
        builder.push_graph(&g);
        assert_eq!(builder.len(), 2);
        assert!(!builder.is_empty());
        assert_eq!(builder.build(), RecordStore::from_graph(&g));
    }

    #[test]
    fn key_index_is_cached_per_recipe() {
        use crate::blocking::BlockingKey;
        let store = RecordStore::from_records(&sample_records());
        let four = BlockingKey::shared(PN, 4).external_side(&store);
        let zero = BlockingKey::shared(PN, 0).external_side(&store);
        // Same recipe → same Arc; different recipe → a different index.
        let a = store.key_index(&four);
        let b = store.key_index(&four);
        assert!(Arc::ptr_eq(&a, &b));
        let c = store.key_index(&zero);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.key(0), "crcw");
        assert_eq!(c.key(0), "crcw080510k");
        // Recipe-compatible sides share one entry even when resolved
        // through different BlockingKey values (e.g. a standard blocker
        // and a sorted-neighbourhood blocker on the same property).
        let same = BlockingKey::per_side(PN, "http://other.org/v#x", 4).external_side(&store);
        assert!(Arc::ptr_eq(&a, &store.key_index(&same)));
        // Clones share the already-built entries.
        let clone = store.clone();
        assert!(Arc::ptr_eq(&a, &clone.key_index(&four)));
    }

    #[test]
    fn refill_single_matches_fresh_build() {
        use crate::blocking::BlockingKey;
        let schema = SchemaInterner::new();
        let mut store = RecordStore::builder_with_schema(schema.clone()).build();
        let mut sorted = Vec::new();
        let key = BlockingKey::shared(PN, 4);
        let mut extra = Record::new(Term::iri("http://e.org/p4"));
        extra.add("http://e.org/v#zz", "late").add(PN, "X1");
        let mut probes = sample_records();
        probes.push(extra);
        for record in &probes {
            store.refill_single(&schema, record, &mut sorted);
            assert_eq!(store.len(), 1);
            assert_eq!(store.id(0), &record.id);
            assert_eq!(store.full_text(0), record.full_text());
            assert_eq!(store.to_records(), vec![record.clone()]);
            // The probe store deliberately never serves index_of.
            assert_eq!(store.index_of(&record.id), None);
            // Cached key indexes are rebuilt against the new contents.
            let side = key.external_side(&store);
            assert_eq!(store.key_index(&side).key(0), side.key(&store, 0));
        }
        // A handle held across refills forces a fresh index instead of
        // an in-place rebuild — contents must still agree.
        let side = key.external_side(&store);
        let held = store.key_index(&side);
        store.refill_single(&schema, &probes[0], &mut sorted);
        let side = key.external_side(&store);
        assert_eq!(held.key(0), "x1");
        assert_eq!(store.key_index(&side).key(0), "crcw");
    }

    #[test]
    fn collected_from_iterator() {
        let store: RecordStore = sample_records().into_iter().collect();
        assert_eq!(store.len(), 3);
        let moved = Record::into_store(sample_records());
        assert_eq!(moved, store);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Record ↔ RecordStore round trip: arbitrary (including
            /// multi-byte) values, multi-valued and missing properties.
            #[test]
            fn prop_record_store_round_trip(
                v1 in "\\PC{0,20}",
                v2 in "[a-z0-9 -]{0,15}",
                record_count in 0usize..7,
                property_count in 1usize..4,
            ) {
                let mut records = Vec::new();
                for i in 0..record_count {
                    let mut r = Record::new(Term::iri(format!("http://e.org/item/{i}")));
                    for p in 0..property_count {
                        let property = format!("http://e.org/v#p{p}");
                        if (i + p) % 2 == 0 {
                            r.add(&property, format!("{v1}-{i}-{p}"));
                        }
                        if (i * 3 + p) % 4 == 1 {
                            r.add(&property, v2.clone());
                        }
                    }
                    records.push(r);
                }
                let store = RecordStore::from_records(&records);
                prop_assert_eq!(store.len(), records.len());
                prop_assert_eq!(store.to_records(), records.clone());
                for (i, r) in records.iter().enumerate() {
                    prop_assert_eq!(store.full_text(i), r.full_text());
                    prop_assert_eq!(store.value_count(i), r.value_count());
                    prop_assert_eq!(store.index_of(&r.id), Some(i));
                    for (property, values) in &r.attributes {
                        let id = store.property(property).unwrap();
                        let stored: Vec<&str> = store.values(i, id).collect();
                        let original: Vec<&str> =
                            values.iter().map(String::as_str).collect();
                        prop_assert_eq!(stored, original);
                    }
                }
            }
        }
    }
}
