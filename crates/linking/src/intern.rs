//! Property-IRI interning.
//!
//! Records in this workspace are keyed by full property IRIs such as
//! `http://provider.example.org/vocab#partNumber`. Hashing and comparing
//! those strings in the per-pair comparison hot path is pure overhead:
//! the set of distinct properties is tiny (a handful per source) while
//! the number of lookups grows with `|SE| × |SL|`. The
//! [`PropertyInterner`] maps each distinct IRI to a dense [`PropertyId`]
//! exactly once, so every later lookup is an array index.
//!
//! Interned ids are **local to one interner** (and therefore to one
//! [`RecordStore`](crate::store::RecordStore)): stores built standalone
//! intern independently, so ids must never be mixed across such stores.
//! APIs that work across two stores (blocking keys, attribute rules)
//! resolve their IRIs against each store once at construction — see
//! [`RecordComparator::compile`](crate::comparator::RecordComparator::compile).
//!
//! The exception is the [`SchemaInterner`]: a **shared** symbol table
//! that several store builders (the per-shard stores of a
//! [`ShardedStore`](crate::shard::ShardedStore), or the external and
//! local stores of one scenario batch) intern into. Every store built on
//! the same `SchemaInterner` assigns the same [`PropertyId`] to the same
//! IRI, so blocking keys and
//! [`CompiledComparator`](crate::comparator::CompiledComparator)s are
//! resolved **once** and reused across all store pairs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A dense identifier for an interned property IRI.
///
/// Valid only for the [`PropertyInterner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropertyId(pub u32);

impl PropertyId {
    /// The id as a column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbol table assigning dense [`PropertyId`]s to property IRIs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyInterner {
    names: Vec<String>,
    ids: HashMap<String, PropertyId>,
}

impl PropertyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> PropertyId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id =
            PropertyId(u32::try_from(self.names.len()).expect("more than u32::MAX properties"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<PropertyId> {
        self.ids.get(name).copied()
    }

    /// The IRI behind an id.
    ///
    /// # Panics
    /// Panics when `id` did not come from this interner.
    pub fn resolve(&self, id: PropertyId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned properties.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuild an interner from its serialized name list — the inverse
    /// of [`iter`](Self::iter): interning the names in order reproduces
    /// the original ids exactly, so a restored interner compares equal
    /// to the one that was persisted. Duplicate names mean the snapshot
    /// is corrupt (an interner never holds two ids for one IRI).
    pub(crate) fn from_names(names: Vec<String>) -> Result<PropertyInterner, String> {
        let mut interner = PropertyInterner::new();
        for name in &names {
            interner.intern(name);
        }
        if interner.len() != names.len() {
            return Err("schema snapshot repeats a property name".to_string());
        }
        Ok(interner)
    }

    /// `(id, IRI)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PropertyId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PropertyId(i as u32), n.as_str()))
    }
}

/// A property symbol table **shared between several store builders**.
///
/// Cloning a `SchemaInterner` clones a *handle*: all clones intern into
/// the same underlying table (guarded by a mutex, so shards may even be
/// built concurrently). Ids handed out by any handle are valid for every
/// store built on the same schema, which is what lets a
/// [`CompiledComparator`](crate::comparator::CompiledComparator) or a
/// resolved [`KeySide`](crate::blocking::KeySide) be compiled once and
/// reused across shard/store pairs.
///
/// A builder takes an immutable [`snapshot`](SchemaInterner::snapshot)
/// when it freezes its store; properties interned *after* that snapshot
/// simply resolve to empty columns on the already-built store.
#[derive(Debug, Clone, Default)]
pub struct SchemaInterner {
    inner: Arc<Mutex<PropertyInterner>>,
}

impl SchemaInterner {
    /// An empty shared schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared schema **continuing** an existing snapshot: every
    /// already-interned IRI keeps exactly the id the snapshot gave it,
    /// and new IRIs extend the dense sequence from there. This is how a
    /// delta batch (see
    /// [`ShardedStore::delta_builder`](crate::shard::ShardedStore::delta_builder))
    /// columnarises against a frozen catalog without re-resolving a
    /// single compiled id.
    pub fn seeded(snapshot: &PropertyInterner) -> Self {
        SchemaInterner {
            inner: Arc::new(Mutex::new(snapshot.clone())),
        }
    }

    /// Lock the shared table, recovering from poisoning: the critical
    /// sections below never unwind mid-mutation (`PropertyInterner`
    /// pushes the name before publishing the id, and the remaining ops
    /// are reads), so a poisoned mutex only means *some other* code
    /// panicked while holding it — the table itself is still a valid
    /// append-only interner and must keep serving rather than cascade
    /// the failure into every schema user.
    fn table(&self) -> std::sync::MutexGuard<'_, PropertyInterner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The id of `name`, interning it on first sight (in any handle).
    pub fn intern(&self, name: &str) -> PropertyId {
        self.table().intern(name)
    }

    /// The id of `name`, if any handle has interned it.
    pub fn get(&self, name: &str) -> Option<PropertyId> {
        self.table().get(name)
    }

    /// Number of interned properties.
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table().is_empty()
    }

    /// An immutable copy of the current table (what a freezing store
    /// builder embeds into its [`RecordStore`](crate::store::RecordStore)).
    pub fn snapshot(&self) -> PropertyInterner {
        self.table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = PropertyInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("http://e.org/v#a");
        let b = interner.intern("http://e.org/v#b");
        assert_eq!(interner.intern("http://e.org/v#a"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_and_resolution_round_trip() {
        let mut interner = PropertyInterner::new();
        let id = interner.intern("http://e.org/v#pn");
        assert_eq!(interner.get("http://e.org/v#pn"), Some(id));
        assert_eq!(interner.get("http://e.org/v#missing"), None);
        assert_eq!(interner.resolve(id), "http://e.org/v#pn");
    }

    #[test]
    fn schema_handles_share_one_table() {
        let schema = SchemaInterner::new();
        assert!(schema.is_empty());
        let handle = schema.clone();
        let a = schema.intern("http://e.org/v#a");
        // The clone sees the id and continues the same dense sequence.
        assert_eq!(handle.get("http://e.org/v#a"), Some(a));
        let b = handle.intern("http://e.org/v#b");
        assert_eq!(b.index(), 1);
        assert_eq!(schema.len(), 2);
        // A snapshot is a point-in-time copy: later interns don't show up.
        let snapshot = schema.snapshot();
        schema.intern("http://e.org/v#c");
        assert_eq!(snapshot.len(), 2);
        assert_eq!(schema.len(), 3);
    }

    #[test]
    fn seeded_schema_continues_the_snapshot() {
        let schema = SchemaInterner::new();
        let a = schema.intern("http://e.org/v#a");
        let b = schema.intern("http://e.org/v#b");
        let snapshot = schema.snapshot();
        let delta = SchemaInterner::seeded(&snapshot);
        assert_eq!(delta.get("http://e.org/v#a"), Some(a));
        assert_eq!(delta.intern("http://e.org/v#b"), b);
        assert_eq!(delta.intern("http://e.org/v#c").index(), 2);
        // The base snapshot and its source schema are untouched.
        assert_eq!(snapshot.len(), 2);
        assert_eq!(schema.len(), 2);
    }

    #[test]
    fn iteration_preserves_interning_order() {
        let mut interner = PropertyInterner::new();
        interner.intern("b");
        interner.intern("a");
        let names: Vec<&str> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        let ids: Vec<usize> = interner.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
